"""Quickstart: stabbing partitions, hotspot tracking, and an SSI band join.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    HotspotTracker,
    Interval,
    LazyStabbingPartition,
    canonical_stabbing_partition,
    stabbing_number,
)
from repro.engine import BandJoinQuery, TableR, TableS
from repro.operators import BJSSI


def main() -> None:
    rng = random.Random(42)

    # --- 1. Stabbing partitions ------------------------------------------
    # Query ranges that cluster around two hotspots plus some stragglers.
    intervals = (
        [Interval(10 - rng.random() * 3, 10 + rng.random() * 3) for __ in range(40)]
        + [Interval(50 - rng.random() * 2, 50 + rng.random() * 2) for __ in range(25)]
        + [Interval(x, x + 1) for x in (70, 80, 90)]
    )
    partition = canonical_stabbing_partition(intervals)
    print(f"{len(intervals)} intervals -> tau = {partition.size} stabbing groups")
    print(f"top-2 groups cover {partition.coverage_of_top(2):.0%} of all intervals")

    # --- 2. Dynamic maintenance -------------------------------------------
    dynamic = LazyStabbingPartition(epsilon=1.0)
    for interval in intervals:
        dynamic.insert(interval)
    print(
        f"dynamic partition keeps {len(dynamic)} groups "
        f"(within (1+eps) * tau = {2 * stabbing_number(intervals)})"
    )

    # --- 3. Hotspot tracking ----------------------------------------------
    tracker = HotspotTracker(alpha=0.2)
    for interval in intervals:
        tracker.insert(interval)
    print(
        f"alpha=0.2 hotspots: {len(tracker.hotspot_groups)} groups covering "
        f"{tracker.hotspot_coverage:.0%} of intervals"
    )

    # --- 4. Continuous band joins via the SSI -----------------------------
    table_s = TableS()
    for __ in range(2_000):
        table_s.add(rng.uniform(0, 100), rng.uniform(0, 1))
    table_r = TableR()
    engine = BJSSI(table_s, table_r)
    queries = [
        BandJoinQuery(Interval(delta - 0.05, delta + 0.05))
        for delta in (-5.0, 0.0, 5.0)
        for __ in range(10)
    ]
    for query in queries:
        engine.add_query(query)
    print(
        f"\n{engine.query_count} band joins indexed in "
        f"{engine.group_count} stabbing groups"
    )
    r = table_r.new_row(a=0.0, b=rng.uniform(0, 100))
    results = engine.process_r(r)
    print(f"incoming R-tuple b={r.b:.2f} affects {len(results)} queries:")
    for query, matches in sorted(results.items(), key=lambda kv: kv[0].qid)[:5]:
        print(f"  query {query.qid} (band {query.band}): {len(matches)} new result(s)")


if __name__ == "__main__":
    main()
