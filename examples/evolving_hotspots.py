"""Tracking evolving hotspots (Section 2.2's seasonal example).

"People tend to pay more attention to high temperatures in summer, but
more to low temperatures when winter comes."  Subscribers register
temperature-alert ranges; the popular range drifts with the season, and
the hotspot tracker promotes and demotes groups as interest shifts ---
with the amortized boundary-move bound (invariant I3) holding throughout.

Run:  python examples/evolving_hotspots.py
"""

import random

from repro.core.hotspot_tracker import HotspotTracker
from repro.core.intervals import Interval

SEASONS = [
    ("summer", 33.0),
    ("autumn", 15.0),
    ("winter", -8.0),
    ("spring", 18.0),
]
SUBSCRIBERS_PER_SEASON = 600
ALPHA = 0.15


def seasonal_query(rng: random.Random, focus: float) -> Interval:
    if rng.random() < 0.75:
        center = rng.normalvariate(focus, 1.2)
        spread = abs(rng.normalvariate(3.0, 1.0)) + 0.5
    else:  # background interest anywhere on the thermometer
        center = rng.uniform(-20, 40)
        spread = abs(rng.normalvariate(2.0, 1.0)) + 0.5
    return Interval(center - spread, center + spread)


def main() -> None:
    rng = random.Random(365)
    tracker: HotspotTracker[Interval] = HotspotTracker(alpha=ALPHA)
    live: list[Interval] = []

    print(f"alpha = {ALPHA}: a group is promoted at {ALPHA:.0%} of all queries\n")
    for season, focus in SEASONS:
        # New seasonal subscribers arrive; an equal number of stale ones
        # (mostly last season's) cancel.
        for __ in range(SUBSCRIBERS_PER_SEASON):
            query = seasonal_query(rng, focus)
            tracker.insert(query)
            live.append(query)
        if len(live) > SUBSCRIBERS_PER_SEASON:
            for __ in range(SUBSCRIBERS_PER_SEASON):
                victim = live.pop(rng.randrange(len(live) // 2))  # bias to old
                tracker.delete(victim)

        tracker.validate()
        points = sorted(
            (group.size, group.stabbing_point) for group in tracker.hotspot_groups
        )
        described = ", ".join(
            f"{point:+.1f}C ({size} queries)" for size, point in reversed(points)
        ) or "none"
        print(
            f"{season:>7}: {len(live):4d} live subscriptions | "
            f"hotspots: {described}"
        )
        print(
            f"         coverage {tracker.hotspot_coverage:5.0%}, "
            f"boundary moves so far {tracker.boundary_moves()} "
            f"(bound {5 * tracker.update_count})"
        )

    assert tracker.boundary_moves() <= 5 * tracker.update_count
    print("\ninvariant I3 held: amortized boundary moves <= 5 per update")


if __name__ == "__main__":
    main()
