"""Supply/demand monitoring (the paper's Example 1).

Merchants subscribe to continuous queries matching supply against demand
for the same product, each restricted to the quantity ranges they care
about:

    sigma_{quantity in rangeS_i} Supply
        JOIN_{prodId} sigma_{quantity in rangeD_i} Demand

Wholesalers watch high quantities, small retailers low ones --- quantity
interests cluster, which is exactly what the SSI exploits.  The demo
registers thousands of merchant queries, streams new supply listings, and
compares SJ-SSI against the NAIVE evaluator on identical events.

Run:  python examples/stock_monitoring.py
"""

import random
import time

from repro.core.intervals import Interval
from repro.engine import SelectJoinQuery, TableR, TableS
from repro.operators import SJNaive, SJSSI

PRODUCTS = 50
DEMAND_ROWS = 8_000
MERCHANTS = 4_000
EVENTS = 40


def make_merchant_query(rng: random.Random) -> SelectJoinQuery:
    """Quantity interests cluster: retail (~10), mid-market (~200),
    wholesale (~5000)."""
    segment = rng.random()
    if segment < 0.5:
        center, spread = 10.0, 6.0
    elif segment < 0.8:
        center, spread = 200.0, 60.0
    else:
        center, spread = 5_000.0, 900.0
    supply_lo = max(0.0, rng.normalvariate(center, spread / 2))
    demand_lo = max(0.0, rng.normalvariate(center, spread / 2))
    return SelectJoinQuery(
        range_a=Interval(supply_lo, supply_lo + spread),   # supply quantity
        range_c=Interval(demand_lo, demand_lo + spread),   # demand quantity
    )


def main() -> None:
    rng = random.Random(7)

    # Demand(custId, prodId, quantity): S(B=prodId, C=quantity).
    demand = TableS()
    for __ in range(DEMAND_ROWS):
        product = float(rng.randrange(PRODUCTS))
        segment = rng.random()
        quantity = (
            abs(rng.normalvariate(10, 8)) if segment < 0.5
            else abs(rng.normalvariate(200, 80)) if segment < 0.8
            else abs(rng.normalvariate(5_000, 1_200))
        )
        demand.add(product, quantity)
    supply = TableR()

    ssi_engine = SJSSI(demand, supply, symmetric=False)
    naive_engine = SJNaive(demand, supply)
    queries = [make_merchant_query(rng) for __ in range(MERCHANTS)]
    for query in queries:
        ssi_engine.add_query(query)
        naive_engine.add_query(query)
    print(
        f"{MERCHANTS} merchant subscriptions over {PRODUCTS} products; "
        f"demand quantities form {ssi_engine.group_count} stabbing groups"
    )

    # New supply listings arrive: Supply(suppId, prodId, quantity)
    # = R(A=quantity, B=prodId).
    events = []
    for __ in range(EVENTS):
        product = float(rng.randrange(PRODUCTS))
        quantity = abs(rng.normalvariate(200, 300))
        events.append(supply.new_row(a=quantity, b=product))

    for name, engine in (("SJ-SSI", ssi_engine), ("NAIVE", naive_engine)):
        start = time.perf_counter()
        matched = sum(len(engine.process_r(event)) for event in events)
        elapsed = time.perf_counter() - start
        print(
            f"{name:>7}: {len(events) / elapsed:>10,.0f} listings/s "
            f"({matched} merchant notifications total)"
        )

    # The engines agree on every event.
    for event in events:
        a = {q.qid: len(v) for q, v in ssi_engine.process_r(event).items()}
        b = {q.qid: len(v) for q, v in naive_engine.process_r(event).items()}
        assert a == b, "engines disagree"
    print("both engines produced identical notifications")

    event = events[0]
    hits = ssi_engine.process_r(event)
    print(
        f"\nexample: supply listing (product {event.b:.0f}, qty {event.a:.0f}) "
        f"matched {len(hits)} merchants"
    )
    for query, rows in list(hits.items())[:3]:
        print(
            f"  merchant {query.qid}: wants supply {query.range_a}, demand "
            f"{query.range_c} -> {len(rows)} matching demand row(s)"
        )


if __name__ == "__main__":
    main()
