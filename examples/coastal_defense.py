"""Coastal-defense monitoring (the paper's Example 2).

Units (gun batteries, missile sites, ...) sit on a one-dimensional coast
line; surface targets move along it.  For each unit class a continuous
band join alerts when a target enters the class's effective range:

    sigma_{model=M} Unit JOIN_{Unit.pos - Target.pos in range_M} Target

Different classes have different firing ranges, so the join conditions are
genuine band joins with different windows --- the case NiagaraCQ-style
identical-join sharing cannot group, and BJ-SSI can.

Run:  python examples/coastal_defense.py
"""

import random
import time

from repro.core.intervals import Interval
from repro.engine import BandJoinQuery, TableR, TableS
from repro.operators import BJQOuter, BJSSI

COAST_KM = 500.0
UNIT_CLASSES = {
    # class: (symmetric effective range in km, number of deployed batteries)
    "gun-battery": (15.0, 40),
    "missile-site": (60.0, 25),
    "mortar-post": (5.0, 60),
    "radar-guided": (90.0, 10),
}
TARGETS = 120


def main() -> None:
    rng = random.Random(1914)

    # Target(id, type, pos) plays S; Unit positions arrive as R updates.
    targets = TableS()
    for __ in range(TARGETS):
        targets.add(b=rng.uniform(0, COAST_KM), c=0.0)  # b = position
    units = TableR()

    ssi = BJSSI(targets, units)
    baseline = BJQOuter(targets, units)
    class_of = {}
    for model, (effective_range, count) in UNIT_CLASSES.items():
        for __ in range(count):
            # Alert when unit.pos - target.pos lies within +-range: the
            # band window is symmetric around zero with the class's reach.
            query = BandJoinQuery(Interval(-effective_range, effective_range))
            class_of[query.qid] = model
            ssi.add_query(query)
            baseline.add_query(query)
    print(
        f"{ssi.query_count} unit-class subscriptions in "
        f"{ssi.group_count} stabbing group(s) along a {COAST_KM:.0f} km coast"
    )

    # Units report their positions; each report must be matched against
    # every class's band join.
    reports = [units.new_row(a=0.0, b=rng.uniform(0, COAST_KM)) for __ in range(200)]
    for name, engine in (("BJ-SSI", ssi), ("BJ-QOuter", baseline)):
        start = time.perf_counter()
        alerts = sum(
            sum(len(hits) for hits in engine.process_r(report).values())
            for report in reports
        )
        elapsed = time.perf_counter() - start
        print(f"{name:>10}: {len(reports) / elapsed:>9,.0f} reports/s, {alerts} alerts")

    report = reports[0]
    hits = ssi.process_r(report)
    print(f"\nunit at km {report.b:.1f}:")
    for query, in_range in sorted(hits.items(), key=lambda kv: kv[0].qid)[:4]:
        nearest = min(abs(t.b - report.b) for t in in_range)
        print(
            f"  {class_of[query.qid]:>13}: {len(in_range)} target(s) in range, "
            f"nearest {nearest:.1f} km"
        )

    # A new target appears: the symmetric S-side probe finds which unit
    # classes (at which positions) must be alerted.
    intruder = targets.new_row(b=rng.uniform(0, COAST_KM), c=0.0)
    for report in reports[:40]:
        units.insert(report)
    s_side = ssi.process_s(intruder)
    print(
        f"\nnew target at km {intruder.b:.1f} alerts "
        f"{sum(len(v) for v in s_side.values())} deployed units "
        f"across {len(s_side)} class subscriptions"
    )


if __name__ == "__main__":
    main()
