"""Selectivity estimation with SSI-HIST (Section 3.3).

A continuous-query engine wants to estimate, for an incoming tuple value
x, how many query ranges x stabs --- e.g. to choose between SJ-SelectFirst
and SJ-SSI per event.  This demo builds the three histograms over a
clustered range workload, compares their estimates against exact counts,
and reports construction cost.

Run:  python examples/selectivity_histogram.py
"""

import random
import time

from repro.core.intervals import Interval
from repro.core.stabbing import canonical_stabbing_partition
from repro.histogram import (
    IntervalFrequency,
    average_relative_error,
    equal_width_histogram,
    optimal_histogram,
    ssi_histogram,
)

INTERVALS = 15_000
BUCKETS = 30


def main() -> None:
    rng = random.Random(99)

    # Subscriber price-alert ranges: heavy clusters at psychologically
    # round price points, a scattered remainder.
    hotspots = [25.0, 50.0, 100.0, 250.0, 500.0]
    weights = [0.35, 0.25, 0.2, 0.1, 0.1]
    intervals = []
    for __ in range(INTERVALS):
        anchor = rng.choices(hotspots, weights)[0]
        spread = anchor * 0.10
        lo = anchor - abs(rng.normalvariate(spread, spread / 2)) - 0.01
        hi = anchor + abs(rng.normalvariate(spread, spread / 2)) + 0.01
        intervals.append(Interval(lo, hi))

    partition = canonical_stabbing_partition(intervals)
    print(
        f"{INTERVALS} price-alert ranges form {partition.size} stabbing groups; "
        f"top-5 cover {partition.coverage_of_top(5):.0%}"
    )

    frequency = IntervalFrequency(intervals)
    lo, hi = frequency.domain
    probes = [rng.uniform(lo, hi) for __ in range(4_000)]

    builders = {
        "EQW-HIST": lambda: equal_width_histogram(frequency, BUCKETS),
        "SSI-HIST": lambda: ssi_histogram(intervals, BUCKETS).histogram,
        "OPTIMAL": lambda: optimal_histogram(frequency, BUCKETS),
    }
    print(f"\n{BUCKETS}-bucket histograms over [{lo:.0f}, {hi:.0f}]:")
    histograms = {}
    for name, build in builders.items():
        start = time.perf_counter()
        histograms[name] = build()
        build_ms = 1e3 * (time.perf_counter() - start)
        error = average_relative_error(histograms[name], frequency, probes)
        print(f"  {name:>8}: avg relative error {error:6.1%}, built in {build_ms:7.1f} ms")

    print("\nspot checks (price -> true vs estimated matching alerts):")
    for price in (24.0, 52.0, 97.0, 180.0, 490.0):
        true = frequency.count(price)
        row = "  ".join(
            f"{name} {histograms[name](price):7.0f}" for name in builders
        )
        print(f"  price {price:6.1f}: true {true:6d} | {row}")


if __name__ == "__main__":
    main()
