"""The full continuous-query system, end to end.

A market-surveillance scenario: R is a stream of buy orders (price limit,
venue), S is a stream of sell quotes (venue, price).  Traders hold band
joins ("alert when a sell quote lands within delta of my reference level
at the same time") and select-joins ("match my buy-price window against
sell quotes in my price window on the same venue"); results are delivered
through callbacks as events arrive on both sides.

Run:  python examples/full_system.py
"""

import random

from repro.core.intervals import Interval
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.system import ContinuousQuerySystem

VENUES = 12
TRADERS = 600
EVENTS = 400


def main() -> None:
    rng = random.Random(2006)
    system = ContinuousQuerySystem(alpha=0.02)

    alerts: list = []

    def on_alert(query, row, matches):
        alerts.append((query.qid, len(matches)))

    # Traders subscribe; interest clusters around two popular price bands.
    for __ in range(TRADERS):
        if rng.random() < 0.5:
            # Band join: sell-quote venue-key within +-delta of the buy key.
            delta = abs(rng.normalvariate(0.4, 0.15)) + 0.05
            system.subscribe(BandJoinQuery(Interval(-delta, delta)), on_alert)
        else:
            hot = rng.random() < 0.7
            center = rng.normalvariate(100.0 if hot else 400.0, 6.0)
            width = abs(rng.normalvariate(4.0, 1.5)) + 0.5
            system.subscribe(
                SelectJoinQuery(
                    range_a=Interval(center - width, center + width),
                    range_c=Interval(center - width, center + width),
                ),
                on_alert,
            )
    print(f"{system.subscription_count} trader subscriptions registered")

    # Interleaved order/quote stream.
    for step in range(EVENTS):
        venue = float(rng.randrange(VENUES))
        price = rng.normalvariate(100.0 if rng.random() < 0.7 else 400.0, 8.0)
        if step % 2 == 0:
            system.insert_s(b=venue, c=price)       # sell quote
        else:
            system.insert_r(a=price, b=venue)       # buy order
    print(
        f"processed {system.events_processed} events, "
        f"{system.results_produced} result tuples, "
        f"{len(alerts)} callback notifications"
    )

    top = {}
    for qid, count in alerts:
        top[qid] = top.get(qid, 0) + count
    busiest = sorted(top.items(), key=lambda kv: -kv[1])[:3]
    for qid, count in busiest:
        print(f"  subscription {qid}: {count} matches")

    assert system.events_processed == EVENTS
    assert len(alerts) > 0
    print("system example OK")


if __name__ == "__main__":
    main()
