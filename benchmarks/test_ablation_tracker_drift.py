"""Ablation (Theorem 1 / invariant I3): hotspot tracking under interest
drift.

The tracker's promise is that even when hotspots *move* (the paper's
summer-to-winter example), the amortized number of items crossing the
hotspot/scattered boundary stays <= 5 per update.  This benchmark drives
the tracker through an adversarial drifting-interest stream --- the popular
anchor migrates every epoch, repeatedly promoting fresh groups and
demoting stale ones --- and checks the credit bound plus the end-state
invariants at scale.
"""

import random

from repro.bench.harness import measure_amortized_update_ns
from repro.core.hotspot_tracker import HotspotTracker
from repro.core.intervals import Interval

EPOCHS = 12
UPDATES_PER_EPOCH = 2_000
ALPHA = 0.02


def test_tracker_under_interest_drift(benchmark):
    rng = random.Random(42)
    tracker: HotspotTracker[Interval] = HotspotTracker(alpha=ALPHA)
    live = []
    anchors = [500.0 * i for i in range(1, 19)]

    updates = []
    for epoch in range(EPOCHS):
        hot_anchor = anchors[epoch % len(anchors)]
        for __ in range(UPDATES_PER_EPOCH):
            if live and rng.random() < 0.5:
                updates.append(("delete", live.pop(rng.randrange(len(live) // 4 + 1))))
            else:
                if rng.random() < 0.7:
                    # Tight cluster: every interval contains the anchor.
                    center = rng.normalvariate(hot_anchor, 2.0)
                    spread = abs(rng.normalvariate(12.0, 3.0)) + 8.0
                else:
                    center = rng.uniform(0, 10_000)
                    spread = abs(rng.normalvariate(10.0, 4.0)) + 0.5
                interval = Interval(center - spread, center + spread)
                live.append(interval)
                updates.append(("insert", interval))

    def apply(update):
        kind, interval = update
        if kind == "insert":
            tracker.insert(interval)
        else:
            tracker.delete(interval)

    ns = measure_amortized_update_ns(apply, updates)
    moves = tracker.boundary_moves()
    per_update = moves / tracker.update_count
    print("\n=== Ablation: hotspot tracking under interest drift ===")
    print(f"  updates:            {tracker.update_count:,}")
    print(f"  boundary moves:     {moves:,} ({per_update:.2f}/update; bound 5)")
    print(f"  amortized cost:     {ns:,.0f} ns/update")
    print(f"  final coverage:     {tracker.hotspot_coverage:.0%} "
          f"({len(tracker.hotspot_groups)} hotspot groups)")

    tracker.validate()
    # (I3): the credit bound holds even under adversarial drift.
    assert moves <= 5 * tracker.update_count
    # Drift really exercised the machinery: promotions and demotions both
    # happened many times over.
    assert tracker.moves_out_of_scattered > 1_500   # promotions happened
    assert tracker.moves_into_scattered > 20        # stale groups demoted
    # The current hot anchor dominates: coverage is substantial at the end.
    assert tracker.hotspot_coverage > 0.2

    sample = Interval(0.0, 1.0)

    def roundtrip():
        tracker.insert(sample)
        tracker.delete(sample)

    benchmark(roundtrip)
