"""Figure 7(i): select-join throughput vs number of continuous queries.

Paper setup: queries from 10 to 100,000, stabbing number ~30, each event
joining ~1% of S.  Reported shape: NAIVE and SJ-S degrade linearly and are
unscalable; SJ-J degrades more slowly but ends well below SJ-SSI at the top
size; SJ-SSI depends primarily on the number of stabbing groups and stays
within a small factor of its own peak across the sweep.
"""

from conftest import BASE, r_events, select_queries_with_tau

from repro.bench.harness import Series, assert_dominates, measure_throughput, print_figure
from repro.operators.select_join import make_select_strategies
from repro.workload import make_tables

TAU = 30
SWEEP = [100, 1_000, 10_000, 50_000]
EVENTS = 20


def test_fig7i_select_join_scaling(benchmark):
    params = BASE.scaled()
    table_r, table_s = make_tables(params)
    events = r_events(params, EVENTS, table_r)
    all_queries = select_queries_with_tau(params, max(SWEEP), TAU)

    strategies = make_select_strategies(table_s, table_r)
    series = {name: Series(name) for name in strategies}
    loaded = 0
    for count in SWEEP:
        for strategy in strategies.values():
            for query in all_queries[loaded:count]:
                strategy.add_query(query)
        loaded = count
        for name, strategy in strategies.items():
            series[name].add(count, measure_throughput(strategy.process_r, events))
    print_figure(
        "Figure 7(i): select-join throughput vs #queries (events/s)",
        "#queries",
        series.values(),
    )

    top = max(SWEEP)
    # SJ-SSI wins at scale over every baseline (the paper reports SJ-J at
    # <5% of SJ-SSI on a 100k-query Java run; our Python R-tree has a
    # relatively cheaper g(n), so the margin over SJ-J is smaller).
    assert_dominates(series["SJ-SSI"], series["NAIVE"], factor=2.0, at=[top])
    assert_dominates(series["SJ-SSI"], series["SJ-S"], factor=2.0, at=[top])
    assert_dominates(series["SJ-SSI"], series["SJ-J"], factor=1.5, at=[top])
    # NAIVE and SJ-S collapse by an order of magnitude across the sweep.
    for name in ("NAIVE", "SJ-S"):
        assert series[name].y_at(SWEEP[0]) > 10 * series[name].y_at(top)
    # SJ-SSI is far flatter than the linear strategies: its relative drop
    # across the sweep is a small fraction of NAIVE's.
    ssi_drop = series["SJ-SSI"].y_at(SWEEP[0]) / series["SJ-SSI"].y_at(top)
    naive_drop = series["NAIVE"].y_at(SWEEP[0]) / series["NAIVE"].y_at(top)
    assert ssi_drop < naive_drop / 3.0

    ssi = strategies["SJ-SSI"]
    benchmark(lambda: ssi.process_r(events[0]))
