"""Figure 7(ii): select-join throughput vs number of stabbing groups.

Fixed query count, clusteredness swept by the number of rangeC anchors.
Reported shape: NAIVE and SJ-S are indifferent to clusteredness; SJ-SSI
benefits from fewer groups and degrades as the group count grows (in the
paper SJ-S overtakes it once the group count exceeds the event selectivity,
~250 there); SJ-J improves slightly on less clustered queries.
"""

from conftest import BASE, load_queries, r_events, select_queries_with_tau

from repro.bench.harness import Series, measure_throughput, print_figure
from repro.operators.select_join import make_select_strategies
from repro.workload import make_tables

QUERIES = 10_000
SWEEP = [10, 30, 100, 300, 1_000]
EVENTS = 25


def test_fig7ii_select_join_group_sweep(benchmark):
    params = BASE.scaled()
    table_r, table_s = make_tables(params)
    events = r_events(params, EVENTS, table_r)

    series = {name: Series(name) for name in ("NAIVE", "SJ-J", "SJ-S", "SJ-SSI")}
    ssi_top = None
    for tau in SWEEP:
        queries = select_queries_with_tau(params, QUERIES, tau, seed=20 + tau)
        strategies = make_select_strategies(table_s, table_r)
        for name, strategy in strategies.items():
            load_queries(strategy, queries)
            series[name].add(tau, measure_throughput(strategy.process_r, events))
        if tau == SWEEP[0]:
            ssi_top = strategies["SJ-SSI"]
    print_figure(
        "Figure 7(ii): select-join throughput vs #stabbing groups (events/s)",
        "#groups",
        series.values(),
    )

    # SJ-SSI degrades as the number of groups grows...
    ssi = series["SJ-SSI"]
    assert ssi.y_at(SWEEP[0]) > 2.0 * ssi.y_at(SWEEP[-1])
    # ...while the group-oblivious strategies stay comparatively flat.
    for name in ("NAIVE", "SJ-S"):
        ys = series[name].ys
        assert max(ys) < 4.0 * min(ys), f"{name} should be insensitive to tau"
    # SJ-SSI's edge over SJ-S shrinks with the group count (the crossover
    # direction of the paper's figure).
    lead_clustered = ssi.y_at(SWEEP[0]) / series["SJ-S"].y_at(SWEEP[0])
    lead_scattered = ssi.y_at(SWEEP[-1]) / series["SJ-S"].y_at(SWEEP[-1])
    assert lead_scattered < lead_clustered / 2.0

    benchmark(lambda: ssi_top.process_r(events[0]))
