"""Transport: shared-memory frames vs pickle on the process data plane.

Two bars on the Figure 10(i) band-join workload:

* micro — one shard batch serialized through a loopback ring must beat
  pickle by >= 2x round-trip at some batch size >= 64 (no scheduling
  involved; isolates codec + ring cost);
* e2e — a full ``EventPipeline`` replay in ``mode="process-shm"`` must
  beat ``mode="process"`` by >= 1.5x events/second (fresh pipelines per
  repeat, modes interleaved, median repeat per mode).

The combined record is written to ``BENCH_transport.json`` at the repo
root so the number lands in CI artifacts (``docs/RUNTIME.md`` documents
the ``BENCH_*.json`` convention).
"""

import json
import os
from pathlib import Path

from repro.bench.batch_fastpath import write_bench_json
from repro.bench.harness import emit_json
from repro.bench.transport import format_record, run_transport_benchmark

OUT_PATH = os.environ.get(
    "REPRO_BENCH_TRANSPORT_OUT",
    str(Path(__file__).resolve().parents[1] / "BENCH_transport.json"),
)


def test_transport_speedups(benchmark):
    record = run_transport_benchmark()
    print()
    print(format_record(record))
    emit_json("transport", {k: v for k, v in record.items() if k != "env"})
    write_bench_json(OUT_PATH, record)

    with open(OUT_PATH) as handle:
        assert json.load(handle)["tag"] == "transport"

    # Micro bar: >= 2x over pickle at some batch size >= 64.
    micro = {
        int(size): row["speedup"]
        for size, row in record["micro"]["roundtrip"].items()
    }
    big = {size: ratio for size, ratio in micro.items() if size >= 64}
    assert big, "micro benchmark must include a batch size >= 64"
    best = max(big.values())
    assert best >= 2.0, f"frame codec speedup {best:.2f}x < 2x at batch >= 64: {micro}"
    # Every measured batch size must at least beat pickle outright.
    assert all(ratio > 1.0 for ratio in micro.values()), micro

    # E2E bar: the shm data plane must beat the pickle data plane by
    # >= 1.5x on the same pipeline workload.
    e2e = record["e2e"]
    assert e2e["speedup"] >= 1.5, (
        f"process-shm speedup {e2e['speedup']:.2f}x < 1.5x: "
        f"{e2e['events_per_second']}"
    )

    # Per-op number for pytest-benchmark's table: one 64-entry batch
    # frame round-tripped through a loopback ring.
    from repro.bench.transport import _fig10i_insert_events
    from repro.runtime.transport import frames
    from repro.runtime.transport.shm import ShmRing

    events = _fig10i_insert_events(64, seed=9)
    entries = [(seq, event, True, False) for seq, event in enumerate(events)]
    with ShmRing.create(1 << 20) as ring:

        def roundtrip():
            ring.send(frames.encode_batch_frame(entries))
            return frames.decode_frame(ring.recv())

        benchmark(roundtrip)
