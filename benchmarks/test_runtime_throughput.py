"""Runtime throughput: unsharded facade vs sharded+batched pipeline.

Sweeps shard counts K in {1, 4, 8} x batch sizes {1, 32, 256} over a Table 1
select-join workload (the paper benchmarks the two query templates
separately; Figures 7/8 are the select-join runs) with delete churn, and
compares events/second against the unsharded ``ContinuousQuerySystem``
replaying the same stream one event at a time.

Why sharding wins: the engine's S-arrival path scans every select-join
subscription (``process_s`` is O(m)), while the runtime's C-partitioned
select plane probes a single shard per S event — the router acts as a
coarse partition index over ``rangeC``.  The win therefore grows with the
subscription count while the per-event routing/broadcast overhead stays
O(K), so the sweep runs at a paper-like query population (Table 1 defaults
to 10k queries).  Micro-batching adds coalescing: with update churn,
insert+delete pairs cancel before touching any shard.  The acceptance bar
is the best sharded+batched configuration beating the unsharded baseline
by >= 2x.

Emits one BENCH-JSON line per grid cell via the bench harness
(``REPRO_BENCH_JSON=/path/file.jsonl`` additionally appends them there).
"""

from __future__ import annotations

import time

from conftest import BASE

from repro.bench.harness import Series, emit_json, print_figure
from repro.engine.events import DataEvent, QueryEvent
from repro.engine.system import ContinuousQuerySystem
from repro.engine.events import replay_data_events
from repro.runtime.pipeline import EventPipeline
from repro.runtime.replay import StreamProfile, generate_mixed_stream

SHARDS = [1, 4, 8]
BATCHES = [1, 32, 256]
ALPHA = 0.01
N_QUERIES = 8_000
N_EVENTS = 2_000


def build_workload():
    profile = StreamProfile(
        n_events=N_EVENTS,
        n_initial_queries=N_QUERIES,
        band_fraction=0.0,          # select-join runs, as in Figures 7/8
        query_event_fraction=0.0,   # measure the data path only
        delete_fraction=0.3,
        churn=0.5,                  # half the deletes hit fresh rows -> coalescing
        min_delete_age=64,
        recent_window=32,
        seed=1106,
    )
    stream = generate_mixed_stream(profile, BASE.scaled())
    queries = [e.query for e in stream if isinstance(e, QueryEvent)]
    data_events = [e for e in stream if isinstance(e, DataEvent)]
    return queries, data_events


def test_runtime_throughput_grid():
    queries, data_events = build_workload()

    system = ContinuousQuerySystem(alpha=ALPHA)
    for query in queries:
        system.subscribe(query)
    start = time.perf_counter()
    replay_data_events(data_events, system)
    baseline = len(data_events) / (time.perf_counter() - start)
    emit_json(
        "runtime_throughput",
        {"config": "unsharded", "shards": 0, "batch_size": 1,
         "events": len(data_events), "events_per_sec": baseline},
    )

    series = []
    best = 0.0
    best_config = None
    for num_shards in SHARDS:
        line = Series(f"K={num_shards}")
        for batch_size in BATCHES:
            pipeline = EventPipeline(
                num_shards=num_shards,
                alpha=ALPHA,
                batch_size=batch_size,
                queue_capacity=max(batch_size, 1024),
                mode="inline",
            )
            for query in queries:
                pipeline.subscribe(query)
            start = time.perf_counter()
            pipeline.run(data_events)
            rate = len(data_events) / (time.perf_counter() - start)
            coalesced = len(pipeline.cancelled_pairs)
            pipeline.close()
            line.add(batch_size, rate)
            emit_json(
                "runtime_throughput",
                {"config": f"sharded-K{num_shards}-B{batch_size}",
                 "shards": num_shards, "batch_size": batch_size,
                 "events": len(data_events), "events_per_sec": rate,
                 "coalesced_pairs": coalesced},
            )
            if rate > best:
                best, best_config = rate, (num_shards, batch_size)
        series.append(line)

    unsharded = Series("unsharded")
    for batch_size in BATCHES:
        unsharded.add(batch_size, baseline)
    print_figure(
        "Runtime throughput: events/sec vs batch size (inline execution)",
        "batch",
        [unsharded, *series],
    )
    print(
        f"best sharded+batched config K={best_config[0]} B={best_config[1]}: "
        f"{best:,.0f} events/s = {best / baseline:.2f}x unsharded ({baseline:,.0f})"
    )
    # Acceptance: batched sharded mode >= 2x unsharded single-event replay.
    assert best >= 2.0 * baseline, (
        f"expected >=2x speedup, got {best / baseline:.2f}x "
        f"({best:,.0f} vs {baseline:,.0f} events/s)"
    )


def test_durable_wal_overhead(tmp_path):
    """Durability tax: the WAL-logged serve path (``fsync=batch``) must stay
    within 25% of the identical no-WAL configuration.

    The ``batch`` policy amortizes one fsync per drained micro-batch, so the
    cell runs at batch size 256 (~8 fsyncs for the whole stream); encoding
    and buffered appends are the remaining per-event cost.
    """
    from repro.durability import DurabilityManager

    queries, data_events = build_workload()
    batch_size = 256

    def run_once(durability):
        pipeline = EventPipeline(
            num_shards=4,
            alpha=ALPHA,
            batch_size=batch_size,
            queue_capacity=1024,
            mode="inline",
            durability=durability,
        )
        if durability is not None:
            durability.attach(pipeline)
        for query in queries:
            pipeline.subscribe(query)
        start = time.perf_counter()
        pipeline.run(data_events)
        rate = len(data_events) / (time.perf_counter() - start)
        pipeline.close()
        return rate

    plain = run_once(None)
    durable = run_once(DurabilityManager(tmp_path / "wal", fsync="batch"))
    for config, rate in (("no-wal", plain), ("wal-fsync-batch", durable)):
        emit_json(
            "durable_wal_overhead",
            {"config": config, "shards": 4, "batch_size": batch_size,
             "events": len(data_events), "events_per_sec": rate},
        )
    print(
        f"durability tax at B={batch_size}: {durable:,.0f} vs {plain:,.0f} "
        f"events/s ({durable / plain:.2f}x)"
    )
    assert durable >= 0.75 * plain, (
        f"WAL overhead exceeds 25%: {durable:,.0f} vs {plain:,.0f} events/s "
        f"({durable / plain:.2f}x)"
    )
