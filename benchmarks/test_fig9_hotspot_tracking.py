"""Figure 9: TRADITIONAL vs HOTSPOT-BASED processing time per event, over
workloads of increasing clusteredness.

The paper generates ten workloads whose hotspots cover 10%..100% of 500,000
queries (alpha ~ 0.1% so at most ~500 hotspot groups) and plots average
processing time per event.  Reported shape: TRADITIONAL (plain
SJ-SelectFirst) is flat across workloads; HOTSPOT-BASED improves roughly
linearly with hotspot coverage and wins decisively on clustered workloads.
"""

import random

from conftest import BASE, r_events

from repro.bench.harness import Series, measure_event_time_us, print_figure
from repro.core.intervals import Interval
from repro.engine.queries import SelectJoinQuery
from repro.operators.hotspot_processor import (
    HotspotSelectJoinProcessor,
    TraditionalSelectJoinProcessor,
)
from repro.workload import ZipfSampler, make_tables, spread_anchors

QUERIES = 20_000
HOT_ANCHORS = 20
ALPHA = 0.004  # at most 500 hotspot groups, as in the paper's "order of 0.1%"
COVERAGES = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0]
EVENTS = 20


def make_queries(params, hot_fraction, count, seed):
    """Queries whose rangeC clusters on anchors with probability
    ``hot_fraction`` and is scattered uniformly otherwise."""
    rng = random.Random(seed)
    anchors = spread_anchors(params, HOT_ANCHORS)
    sampler = ZipfSampler(HOT_ANCHORS, 1.0)
    queries = []
    for __ in range(count):
        a_lo = rng.uniform(params.domain_lo, params.domain_hi - 250)
        range_a = Interval(a_lo, a_lo + abs(rng.normalvariate(200, 50)) + 1)
        if rng.random() < hot_fraction:
            anchor = anchors[sampler.sample(rng)]
            lo = max(params.domain_lo, anchor - abs(rng.normalvariate(4, 1)) - 1)
            hi = min(params.domain_hi, anchor + abs(rng.normalvariate(4, 1)) + 1)
            range_c = Interval(lo, hi)
        else:
            c_lo = rng.uniform(params.domain_lo, params.domain_hi - 20)
            range_c = Interval(c_lo, c_lo + abs(rng.normalvariate(8, 2)) + 1)
        queries.append(SelectJoinQuery(range_a, range_c))
    return queries


def test_fig9_hotspot_based_processing(benchmark):
    params = BASE.scaled()
    table_r, table_s = make_tables(params)
    events = r_events(params, EVENTS, table_r)

    traditional = Series("TRADITIONAL")
    hotspot_based = Series("HOTSPOT-BASED")
    coverages_measured = []
    last_processor = None
    for target in COVERAGES:
        queries = make_queries(params, target, QUERIES, seed=900 + int(target * 100))
        trad = TraditionalSelectJoinProcessor(table_s, table_r)
        hot = HotspotSelectJoinProcessor(table_s, table_r, alpha=ALPHA)
        for query in queries:
            trad.add_query(query)
            hot.add_query(query)
        coverage = round(100 * hot.hotspot_coverage)
        coverages_measured.append(hot.hotspot_coverage)
        for event in events:  # warmup pass before timing
            trad.process_r(event)
            hot.process_r(event)
        traditional.add(coverage, measure_event_time_us(trad.process_r, events, repeats=2))
        hotspot_based.add(coverage, measure_event_time_us(hot.process_r, events, repeats=2))
        last_processor = hot
    print_figure(
        "Figure 9: processing time per event vs % intervals in hotspots (us)",
        "% hot",
        [traditional, hotspot_based],
        y_format="{:,.1f}",
    )

    # The workload sweep actually moved the hotspot coverage.
    assert coverages_measured[-1] > 0.9
    assert coverages_measured[0] < 0.45
    # TRADITIONAL is indifferent to clusteredness.
    assert max(traditional.ys) < 3.0 * min(traditional.ys)
    # HOTSPOT-BASED improves with coverage and wins clearly when clustered.
    assert hotspot_based.ys[-1] < 0.65 * hotspot_based.ys[0]
    assert hotspot_based.ys[-1] < 0.65 * traditional.ys[-1]

    benchmark(lambda: last_processor.process_r(events[0]))
