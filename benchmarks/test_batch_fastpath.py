"""Batch fast path: batched vs per-event band-join probe throughput.

The columnar batch fast path (``BJSSI.process_r_batch``) amortizes the
per-group B-tree probes and window enumerations of a micro-batch into
vectorized column scans.  On the Figure 10(i) workload's largest point
(20k band joins, tau ~ 60) it must beat the per-event probe by at least
3x for some batch size >= 64; the measured record is also written to
``BENCH_batch_fastpath.json`` so the number lands in CI artifacts.
"""

import json
import os

from repro.bench.batch_fastpath import (
    format_record,
    run_band_batch_benchmark,
    write_bench_json,
)
from repro.bench.harness import emit_json

OUT_PATH = os.environ.get("REPRO_BENCH_FASTPATH_OUT", "BENCH_batch_fastpath.json")


def test_batch_fastpath_speedup(benchmark):
    record = run_band_batch_benchmark(repeats=5, warmup=1)
    print()
    print(format_record(record))
    emit_json("batch_fastpath_band", {k: v for k, v in record.items() if k != "env"})
    write_bench_json(OUT_PATH, record)

    with open(OUT_PATH) as handle:
        assert json.load(handle)["tag"] == "batch_fastpath_band"

    # The acceptance bar: >= 3x over per-event at batch size >= 64.  The
    # benchmark measures best-of-3 with a warmup pass; taking the best
    # qualifying batch size damps scheduler noise on loaded machines.
    speedups = {int(size): ratio for size, ratio in record["speedup"].items()}
    big = {size: ratio for size, ratio in speedups.items() if size >= 64}
    assert big, "benchmark must include a batch size >= 64"
    best = max(big.values())
    assert best >= 3.0, f"batch fast path speedup {best:.2f}x < 3x at batch >= 64: {speedups}"
    # Every measured batch size must clear a basic sanity floor.
    assert all(ratio > 1.3 for ratio in speedups.values()), speedups

    # Per-op number for pytest-benchmark's table: one 64-event batch.
    import random

    from repro.bench.batch_fastpath import band_queries_with_tau, fig10i_band_params
    from repro.operators.band_join import BJSSI
    from repro.workload import make_tables, r_insert_events

    params = fig10i_band_params()
    table_r, table_s = make_tables(params)
    events = [
        table_r.new_row(a, b)
        for a, b in r_insert_events(params, 64, random.Random(9))
    ]
    strategy = BJSSI(table_s, table_r)
    for query in band_queries_with_tau(params, 20_000, 60, seed=50 + 20_000):
        strategy.add_query(query)
    benchmark(lambda: strategy.process_r_batch(events))
