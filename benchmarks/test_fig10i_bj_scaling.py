"""Figure 10(i): band-join throughput vs number of continuous queries.

Paper setup: 50 to 500,000 band joins, the stabbing number growing from ~10
to ~60 along the sweep.  Reported shape: BJ-Q collapses on large query
counts; BJ-MJ is stable while the sorted-table scan dominates, then decays
once the query count catches up; BJ-D is insensitive to the query count but
crushed by the base-table scan; BJ-SSI outperforms everything by orders of
magnitude and degrades only mildly.
"""

import dataclasses

from conftest import BASE, band_queries_with_tau, load_queries, r_events

from repro.bench.harness import Series, assert_dominates, measure_throughput, print_figure
from repro.operators.band_join import make_band_strategies
from repro.workload import make_tables

SWEEP = [(50, 10), (500, 20), (5_000, 40), (20_000, 60)]  # (#queries, tau)
EVENTS = 15


def band_params():
    """Band-join runs use real-valued keys (no equality-collision grid), a
    broad S.B spread, and narrow band windows so the per-event output stays
    moderate."""
    return dataclasses.replace(
        BASE.scaled(),
        integer_valued=False,
        join_key_grid=None,
        s_b_sigma=3_500.0,
        band_len_mean=0.02,
        band_len_sigma=0.005,
    )


def test_fig10i_band_join_scaling(benchmark):
    params = band_params()
    table_r, table_s = make_tables(params)
    events = r_events(params, EVENTS, table_r)

    series = {name: Series(name) for name in ("BJ-Q", "BJ-D", "BJ-MJ", "BJ-SSI")}
    last_ssi = None
    for count, tau in SWEEP:
        queries = band_queries_with_tau(params, count, tau, seed=50 + count)
        strategies = make_band_strategies(table_s, table_r)
        for name, strategy in strategies.items():
            load_queries(strategy, queries)
            series[name].add(count, measure_throughput(strategy.process_r, events))
        last_ssi = strategies["BJ-SSI"]
    print_figure(
        "Figure 10(i): band-join throughput vs #queries (events/s)",
        "#queries",
        series.values(),
    )

    top = SWEEP[-1][0]
    # BJ-SSI always outperforms the other approaches, by a wide margin at
    # scale ("orders of magnitude" in the paper).
    for name in ("BJ-Q", "BJ-D", "BJ-MJ"):
        assert_dominates(series["BJ-SSI"], series[name], factor=1.0)
        assert_dominates(series["BJ-SSI"], series[name], factor=8.0, at=[top])
    # BJ-Q completely breaks down on a large number of queries.
    assert series["BJ-Q"].y_at(SWEEP[0][0]) > 20 * series["BJ-Q"].y_at(top)
    # BJ-D is dominated by the base-table scan and hence roughly flat.
    bj_d = series["BJ-D"].ys
    assert max(bj_d) < 4.0 * min(bj_d)
    # BJ-MJ decays once the query count reaches the table size's order.
    assert series["BJ-MJ"].y_at(SWEEP[0][0]) > 3 * series["BJ-MJ"].y_at(top)

    benchmark(lambda: last_ssi.process_r(events[0]))
