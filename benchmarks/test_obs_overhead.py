"""Tracing tax: the instrumented runtime with a recording RingTracer must
stay within 10% of the identical NULL_TRACER configuration.

The null path is the contract the wiring depends on: every instrumented
method pays one attribute load, one ``span()`` call returning a shared
singleton, and an inert ``with`` block — no clock reads, no allocation.
The recording path adds two ``perf_counter_ns`` reads, one frozen
dataclass, and one lock acquisition per span; spans are per *batch* and
per shard-apply (not per event), so at batch size 64 the per-event cost
is a fraction of a span.  Runs interleave best-of-3 so ambient machine
noise hits both configurations equally.
"""

from __future__ import annotations

import time

from conftest import BASE

from repro.bench.harness import emit_json
from repro.engine.events import DataEvent, QueryEvent
from repro.obs.tracing import NULL_TRACER, RingTracer
from repro.runtime.pipeline import EventPipeline
from repro.runtime.replay import StreamProfile, generate_mixed_stream

ALPHA = 0.01
N_QUERIES = 8_000
N_EVENTS = 2_000
BATCH_SIZE = 64
REPEATS = 3


def build_workload():
    profile = StreamProfile(
        n_events=N_EVENTS,
        n_initial_queries=N_QUERIES,
        band_fraction=0.0,
        query_event_fraction=0.0,
        delete_fraction=0.3,
        churn=0.5,
        min_delete_age=64,
        recent_window=32,
        seed=1106,
    )
    stream = generate_mixed_stream(profile, BASE.scaled())
    queries = [e.query for e in stream if isinstance(e, QueryEvent)]
    data_events = [e for e in stream if isinstance(e, DataEvent)]
    return queries, data_events


def test_tracing_overhead_under_ten_percent():
    queries, data_events = build_workload()

    def run_once(tracer):
        pipeline = EventPipeline(
            num_shards=4,
            alpha=ALPHA,
            batch_size=BATCH_SIZE,
            queue_capacity=1024,
            mode="inline",
            tracer=tracer,
        )
        for query in queries:
            pipeline.subscribe(query)
        start = time.perf_counter()
        pipeline.run(data_events)
        rate = len(data_events) / (time.perf_counter() - start)
        pipeline.close()
        return rate

    # Warmup both paths once, then interleave timed repeats.
    run_once(NULL_TRACER)
    run_once(RingTracer())
    null_best = 0.0
    ring_best = 0.0
    spans = 0
    for _ in range(REPEATS):
        null_best = max(null_best, run_once(NULL_TRACER))
        tracer = RingTracer()
        ring_best = max(ring_best, run_once(tracer))
        spans = tracer.recorded
    for config, rate in (("null-tracer", null_best), ("ring-tracer", ring_best)):
        emit_json(
            "tracing_overhead",
            {"config": config, "shards": 4, "batch_size": BATCH_SIZE,
             "events": len(data_events), "events_per_sec": rate,
             "spans_per_run": spans},
        )
    print(
        f"tracing tax at B={BATCH_SIZE}: {ring_best:,.0f} vs {null_best:,.0f} "
        f"events/s ({ring_best / null_best:.2f}x, {spans} spans/run)"
    )
    assert spans > 0, "RingTracer run recorded no spans — wiring is dead"
    assert ring_best >= 0.9 * null_best, (
        f"tracing overhead exceeds 10%: {ring_best:,.0f} vs {null_best:,.0f} "
        f"events/s ({ring_best / null_best:.2f}x)"
    )
