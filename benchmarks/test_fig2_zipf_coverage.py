"""Figure 2: hotspot coverage under Zipf-distributed group sizes.

Paper series: percentage of queries covered by the top-k largest stabbing
groups out of 5000, for beta in {1.0, 1.1, 1.2}; the anchor data point in
the text is "top-500 largest stabbing groups (10% of all groups) cover
about 70% of all queries when beta = 1, and the coverage increases with a
larger beta".
"""

from repro.bench.harness import Series, print_figure
from repro.workload.zipf import coverage_curve

GROUPS = 5000
TOPS = [1, 10, 50, 100, 200, 500, 1000, 2000, 5000]
BETAS = [1.0, 1.1, 1.2]


def test_fig2_zipf_coverage(benchmark):
    series = []
    for beta in BETAS:
        curve = coverage_curve(GROUPS, beta, TOPS)
        s = Series(f"beta={beta}")
        for k, coverage in zip(TOPS, curve):
            s.add(k, 100.0 * coverage)
        series.append(s)
    print_figure(
        "Figure 2: % queries covered by top-k stabbing groups (Zipf sizes)",
        "top-k",
        series,
        y_format="{:.1f}",
    )

    by_beta = {s.label: s for s in series}
    # Anchor from the text: ~70% coverage at k=500 for beta=1.
    assert 65.0 <= by_beta["beta=1.0"].y_at(500) <= 80.0
    # Coverage increases with beta at every k.
    for k in TOPS:
        assert (
            by_beta["beta=1.0"].y_at(k)
            < by_beta["beta=1.1"].y_at(k)
            < by_beta["beta=1.2"].y_at(k)
        ) or k == GROUPS  # all betas hit 100% at k = group count
    # Coverage is monotone in k.
    for s in series:
        assert all(a <= b + 1e-9 for a, b in zip(s.ys, s.ys[1:]))

    benchmark(lambda: coverage_curve(GROUPS, 1.0, TOPS))
