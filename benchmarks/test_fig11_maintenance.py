"""Figure 11: amortized dynamic-maintenance cost of the band-join indexes.

Starting from the initial query set, a stream of query insertions and
deletions (each with probability 0.5) is replayed against every strategy's
index structures; the y-axis is amortized time per update.  Reported shape:
BJ-Q maintains nothing and costs ~0; BJ-SSI (dynamic stabbing partition
with eps = 3) stays within a modest factor of BJ-MJ's sorted-list
maintenance, with reconstructions rare because the subscriptions are
naturally clustered.
"""

import random

from conftest import band_queries_with_tau

from repro.bench.harness import Series, measure_amortized_update_ns, print_figure
from repro.core.lazy_partition import LazyStabbingPartition
from repro.engine.queries import band_interval
from repro.operators.band_join import BJDOuter, BJMergeJoin, BJQOuter, BJSSI
from repro.workload import make_tables, mixed_query_stream

from test_fig10i_bj_scaling import band_params

INITIAL = 10_000
UPDATES = 20_000
TAU = 40
EPSILON = 3.0  # the paper's choice for this experiment


def test_fig11_maintenance_cost(benchmark):
    params = band_params()
    table_r, table_s = make_tables(params)
    initial = band_queries_with_tau(params, INITIAL, TAU, seed=70)

    def make_query(rng):
        return band_queries_with_tau(params, 1, TAU, seed=rng.randrange(1 << 30))[0]

    def make_strategies():
        return {
            "BJ-D": BJDOuter(table_s, table_r),
            "BJ-Q": BJQOuter(table_s, table_r),
            "BJ-MJ": BJMergeJoin(table_s, table_r),
            "BJ-SSI": BJSSI(
                table_s,
                table_r,
                partition=LazyStabbingPartition(
                    epsilon=EPSILON, interval_of=band_interval
                ),
            ),
        }

    results = Series("amortized update (ns)")
    costs = {}
    ssi_strategy = None
    for name, strategy in make_strategies().items():
        for query in initial:
            strategy.add_query(query)
        updates = list(
            mixed_query_stream(initial, UPDATES, make_query, random.Random(71))
        )

        def apply(update, strategy=strategy):
            kind, query = update
            if kind == "insert":
                strategy.add_query(query)
            else:
                strategy.remove_query(query)

        costs[name] = measure_amortized_update_ns(apply, updates)
        results.add(len(costs), costs[name])
        if name == "BJ-SSI":
            ssi_strategy = strategy

    print("\n=== Figure 11: amortized maintenance cost per update (ns) ===")
    for name, cost in costs.items():
        print(f"  {name:>8}: {cost:>12,.0f}")
    partition = ssi_strategy.ssi.partition
    recon = partition.reconstruction_count
    print(
        f"  (BJ-SSI over {UPDATES} updates: {recon} reconstructions, "
        f"{partition.recalibration_count} recalibrations)"
    )

    # BJ-Q maintains no index: by far the cheapest.
    assert costs["BJ-Q"] < 0.25 * min(costs["BJ-D"], costs["BJ-MJ"], costs["BJ-SSI"])
    # BJ-SSI's maintenance stays within a modest factor of BJ-MJ's (the
    # paper measured +20% in Java; our partition bookkeeping --- epoch
    # recalibrations plus per-group endpoint lists --- is heavier, but the
    # same order of magnitude rather than the orders-of-magnitude gap the
    # processing benchmarks show in the other direction).
    assert costs["BJ-SSI"] < 20.0 * costs["BJ-MJ"]
    # Full reconstructions are rare on naturally clustered subscriptions.
    assert recon < UPDATES / 100

    sample = band_queries_with_tau(params, 1, TAU, seed=72)[0]

    def roundtrip():
        ssi_strategy.add_query(sample)
        ssi_strategy.remove_query(sample)

    benchmark(roundtrip)
