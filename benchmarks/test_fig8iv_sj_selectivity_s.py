"""Figure 8(iv): throughput vs event selectivity on the joining table S
(how many S-tuples join with each incoming event).

We sweep the join fan-out via the join-key grid (fewer distinct keys ->
each event joins more S-tuples).  Reported shape: SJ-J degrades linearly
as the intermediate join result grows; NAIVE, SJ-S and SJ-SSI are immune.
"""

import dataclasses

from conftest import BASE, load_queries, r_events, select_queries_with_tau

from repro.bench.harness import Series, measure_throughput, print_figure
from repro.operators.select_join import make_select_strategies
from repro.workload import make_tables

QUERIES = 10_000
TAU = 30
GRID_SWEEP = [2_000, 500, 100, 20]  # fan-out ~ table_size / grid
EVENTS = 25


def test_fig8iv_selectivity_on_joining_table(benchmark):
    series = {name: Series(name) for name in ("NAIVE", "SJ-J", "SJ-S", "SJ-SSI")}
    fanouts = []
    ssi_last = None
    last_events = None
    for grid in GRID_SWEEP:
        params = dataclasses.replace(BASE.scaled(), join_key_grid=grid)
        table_r, table_s = make_tables(params)
        events = r_events(params, EVENTS, table_r)
        fanout = sum(len(table_s.joining(r.b)) for r in events) / len(events)
        fanouts.append(fanout)
        x = max(round(fanout), 1)
        queries = select_queries_with_tau(params, QUERIES, TAU, seed=41)
        strategies = make_select_strategies(table_s, table_r)
        for name, strategy in strategies.items():
            load_queries(strategy, queries)
            series[name].add(x, measure_throughput(strategy.process_r, events))
        ssi_last = strategies["SJ-SSI"]
        last_events = events
    print_figure(
        "Figure 8(iv): throughput vs avg #joining S-tuples per event (events/s)",
        "fan-out",
        series.values(),
    )

    # The sweep actually moved the fan-out by orders of magnitude.
    assert fanouts[-1] > 20 * fanouts[0]
    # SJ-J collapses as the intermediate result grows.
    sj_j = series["SJ-J"]
    assert sj_j.ys[0] > 8.0 * sj_j.ys[-1]
    # SJ-SSI ends far ahead of SJ-J at high fan-out and degrades much less
    # itself (NAIVE/SJ-S pay only the shared output term too).
    assert series["SJ-SSI"].ys[-1] > 3.0 * sj_j.ys[-1]
    ssi_drop = series["SJ-SSI"].ys[0] / series["SJ-SSI"].ys[-1]
    sj_j_drop = sj_j.ys[0] / sj_j.ys[-1]
    assert ssi_drop < sj_j_drop / 2.0

    benchmark(lambda: ssi_last.process_r(last_events[0]))
