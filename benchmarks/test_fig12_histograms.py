"""Figure 12: quality of EQW-HIST vs SSI-HIST vs OPTIMAL for intervals.

Paper setup: 100,000 intervals forming 18 stabbing groups; histograms of
20..70 buckets evaluated by the average relative error of estimated vs
true stabbing counts over uniformly distributed query points.  (The paper's
OPTIMAL was run on a 10,000-interval sample because the full DP took 6.5
hours; our OPTIMAL coarsens the break-point set instead.)

Note on the workload: the literal Table 1 normal parameters do not produce
18 stabbing groups under the greedy partition, so we generate what the
paper *reports* --- a workload that forms exactly 18 groups, with
Zipf-distributed group sizes around spread anchors (see EXPERIMENTS.md).

Reported shape: OPTIMAL consistently wins; SSI-HIST beats EQW-HIST
everywhere and dramatically narrows the gap to OPTIMAL; EQW-HIST needs a
multiple of SSI-HIST's bucket budget to match its 20-bucket error.
"""

import random

from repro.bench.harness import Series, print_figure
from repro.core.intervals import Interval
from repro.core.stabbing import canonical_stabbing_partition
from repro.histogram import (
    IntervalFrequency,
    average_relative_error,
    equal_width_histogram,
    optimal_histogram,
    ssi_histogram,
)
from repro.workload import WorkloadParams, ZipfSampler, spread_anchors

INTERVALS = 20_000
GROUPS = 18
BUCKET_SWEEP = [20, 30, 40, 50, 60, 70]
QUERY_POINTS = 3_000


def make_intervals(seed=1200):
    rng = random.Random(seed)
    params = WorkloadParams()
    anchors = spread_anchors(params, GROUPS)
    sampler = ZipfSampler(GROUPS, beta=1.0)
    intervals = []
    for __ in range(INTERVALS):
        anchor = anchors[sampler.sample(rng)]
        left = abs(rng.normalvariate(60, 40)) + 2
        right = abs(rng.normalvariate(60, 40)) + 2
        intervals.append(Interval(anchor - left, anchor + right))
    return intervals


def test_fig12_histogram_quality(benchmark):
    intervals = make_intervals()
    assert canonical_stabbing_partition(intervals).size == GROUPS
    frequency = IntervalFrequency(intervals)
    rng = random.Random(7)
    lo, hi = frequency.domain
    points = [rng.uniform(lo, hi) for __ in range(QUERY_POINTS)]

    eqw = Series("EQW-HIST")
    ssi = Series("SSI-HIST")
    opt = Series("OPTIMAL")
    for buckets in BUCKET_SWEEP:
        eqw.add(buckets, 100 * average_relative_error(
            equal_width_histogram(frequency, buckets), frequency, points))
        ssi.add(buckets, 100 * average_relative_error(
            ssi_histogram(intervals, buckets).histogram, frequency, points))
        opt.add(buckets, 100 * average_relative_error(
            optimal_histogram(frequency, buckets), frequency, points))
    print_figure(
        "Figure 12: average relative error % vs #buckets",
        "#buckets",
        [eqw, ssi, opt],
        y_format="{:.1f}",
    )

    for buckets in BUCKET_SWEEP:
        # OPTIMAL consistently wins (tiny tolerance: it optimizes the
        # integral E^2 objective, the figure samples points).
        assert opt.y_at(buckets) <= ssi.y_at(buckets) * 1.10 + 0.5
        # SSI-HIST beats EQW-HIST at every bucket count.
        assert ssi.y_at(buckets) < eqw.y_at(buckets)
    # EQW-HIST needs a multiple of the bucket budget to reach SSI-HIST's
    # 20-bucket error (the paper measured 50 vs 20).
    assert eqw.y_at(50) > ssi.y_at(20)

    benchmark(lambda: ssi_histogram(intervals, 20))
