"""Ablation (Theorem 3): machine-independent operation counts for band
joins.

Wall-clock comparisons inherit Python's constant factors; this benchmark
verifies the *asymptotic* claims directly with the B-tree's probe counters:

* BJ-SSI performs exactly one ordered-index probe per stabbing group per
  event --- O(tau log m), independent of the number of queries;
* BJ-QOuter performs one probe per query --- O(n log m);
* BJ-SSI's leaf scans touch only contributing entries plus at most two
  terminators per group (output sensitivity).
"""

import dataclasses

from conftest import BASE, band_queries_with_tau, load_queries, r_events

from repro.operators.band_join import BJQOuter, BJSSI
from repro.workload import make_tables

from test_fig10i_bj_scaling import band_params

TAU = 25
EVENTS = 10


def test_theorem3_probe_counts(benchmark):
    params = band_params()
    table_r, table_s = make_tables(params)
    events = r_events(params, EVENTS, table_r)

    rows = []
    for count in (200, 2_000, 20_000):
        queries = band_queries_with_tau(params, count, TAU, seed=80)
        ssi = BJSSI(table_s, table_r)
        qouter = BJQOuter(table_s, table_r)
        load_queries(ssi, queries)
        load_queries(qouter, queries)

        table_s.by_b.reset_counters()
        total_output = 0
        for r in events:
            total_output += sum(len(v) for v in ssi.process_r(r).values())
        ssi_probes = table_s.by_b.probe_count / EVENTS
        ssi_steps = table_s.by_b.scan_steps / EVENTS

        table_s.by_b.reset_counters()
        for r in events:
            qouter.process_r(r)
        q_probes = table_s.by_b.probe_count / EVENTS

        groups = ssi.group_count
        rows.append((count, groups, ssi_probes, ssi_steps, total_output / EVENTS, q_probes))

    print("\n=== Ablation: Theorem 3 probe counts per event ===")
    print(f"{'#queries':>9} {'groups':>7} {'SSI probes':>11} {'SSI steps':>10} {'output k':>9} {'BJ-Q probes':>12}")
    for count, groups, sp, ss, k, qp in rows:
        print(f"{count:>9} {groups:>7} {sp:>11.1f} {ss:>10.1f} {k:>9.1f} {qp:>12.1f}")

    for count, groups, ssi_probes, ssi_steps, k, q_probes in rows:
        # One probe per group (single-descent surrounding), give or take the
        # edge-of-tree fallback descent.
        assert ssi_probes <= 2.1 * groups
        # BJ-Q probes once per query.
        assert q_probes >= count
        # Output sensitivity: each affected query (at most k of them) costs
        # its results plus two collector terminators; plus two per group.
        assert ssi_steps <= 4 * k + 2 * groups + 2

    # Probe count is tau-bound: the 100x query growth must not grow SSI
    # probes by more than the group-count growth.
    first, last = rows[0], rows[-1]
    assert last[2] <= first[2] * (last[1] / first[1]) * 1.5 + 2

    queries = band_queries_with_tau(params, 2_000, TAU, seed=80)
    ssi = BJSSI(table_s, table_r)
    load_queries(ssi, queries)
    benchmark(lambda: ssi.process_r(events[0]))
