"""Figure 10(ii): band-join throughput vs number of stabbing groups.

Fixed query count; clusteredness swept by the number of band anchors (BJ-Q
is omitted, as in the paper, "due to its extremely poor performance on a
large number of queries").  Reported shape: BJ-MJ and BJ-D are insensitive
to the group count; BJ-SSI deteriorates linearly with it but still wins
even at thousands of groups.
"""

from conftest import band_queries_with_tau, load_queries, r_events

from repro.bench.harness import Series, assert_dominates, measure_throughput, print_figure
from repro.operators.band_join import BJDOuter, BJMergeJoin, BJSSI
from repro.workload import make_tables

from test_fig10i_bj_scaling import band_params

QUERIES = 10_000
SWEEP = [10, 100, 1_000, 3_000]
EVENTS = 15


def test_fig10ii_band_join_group_sweep(benchmark):
    params = band_params()
    table_r, table_s = make_tables(params)
    events = r_events(params, EVENTS, table_r)

    series = {name: Series(name) for name in ("BJ-D", "BJ-MJ", "BJ-SSI")}
    first_ssi = None
    for tau in SWEEP:
        queries = band_queries_with_tau(params, QUERIES, tau, seed=60 + tau)
        strategies = {
            "BJ-D": BJDOuter(table_s, table_r),
            "BJ-MJ": BJMergeJoin(table_s, table_r),
            "BJ-SSI": BJSSI(table_s, table_r),
        }
        for name, strategy in strategies.items():
            load_queries(strategy, queries)
            series[name].add(tau, measure_throughput(strategy.process_r, events))
        if first_ssi is None:
            first_ssi = strategies["BJ-SSI"]
    print_figure(
        "Figure 10(ii): band-join throughput vs #stabbing groups (events/s)",
        "#groups",
        series.values(),
    )

    # BJ-MJ and BJ-D are insensitive to the number of groups.
    for name in ("BJ-D", "BJ-MJ"):
        ys = series[name].ys
        assert max(ys) < 4.0 * min(ys), f"{name} should be insensitive to tau"
    # BJ-SSI deteriorates as the group count grows...
    ssi = series["BJ-SSI"]
    assert ssi.y_at(SWEEP[0]) > 5.0 * ssi.y_at(SWEEP[-1])
    # ...but still outperforms both baselines even at thousands of groups.
    for name in ("BJ-D", "BJ-MJ"):
        assert_dominates(ssi, series[name], factor=1.0, at=[SWEEP[-1]])

    benchmark(lambda: first_ssi.process_r(events[0]))
