"""Ablation (Section 2.3 design choices): the epsilon tradeoff and the
lazy-vs-refined maintenance strategies.

The paper's design discussion: a smaller epsilon gives a better (smaller)
stabbing partition but reconstructs more often; the refined algorithm
bounds the per-update group churn to one group.  This benchmark sweeps
epsilon over a mixed update stream and reports partition size,
reconstruction counts, and amortized update time for both maintainers.
"""

import random
import time

from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.refined_partition import RefinedStabbingPartition
from repro.core.stabbing import stabbing_number
from repro.core.intervals import Interval

UPDATES = 6_000
EPSILONS = [0.25, 1.0, 3.0]


def interval_stream(seed: int):
    """Clustered interval workload with churn."""
    rng = random.Random(seed)
    anchors = [rng.uniform(0, 10_000) for __ in range(40)]
    live = []
    for __ in range(UPDATES):
        if live and rng.random() < 0.45:
            yield "delete", live.pop(rng.randrange(len(live)))
        else:
            anchor = rng.choice(anchors)
            interval = Interval(
                anchor - abs(rng.normalvariate(20, 10)) - 0.5,
                anchor + abs(rng.normalvariate(20, 10)) + 0.5,
            )
            live.append(interval)
            yield "insert", interval


def run(partition) -> dict:
    start = time.perf_counter()
    live = []
    for kind, interval in interval_stream(seed=77):
        if kind == "insert":
            partition.insert(interval)
            live.append(interval)
        else:
            partition.delete(interval)
            live.remove(interval)
    elapsed = time.perf_counter() - start
    return {
        "ns_per_update": 1e9 * elapsed / UPDATES,
        "groups": len(partition),
        "tau": stabbing_number(live),
        "reconstructions": partition.reconstruction_count,
    }


def test_partition_maintenance_ablation(benchmark):
    print("\n=== Ablation: dynamic stabbing-partition maintenance ===")
    print(f"{'maintainer':>10} {'eps':>5} {'groups':>7} {'tau':>5} {'recons':>7} {'ns/update':>11}")
    stats = {}
    for eps in EPSILONS:
        for name, partition in (
            ("lazy", LazyStabbingPartition(epsilon=eps)),
            ("refined", RefinedStabbingPartition(epsilon=eps, seed=5)),
        ):
            result = run(partition)
            stats[(name, eps)] = result
            print(
                f"{name:>10} {eps:>5} {result['groups']:>7} {result['tau']:>5} "
                f"{result['reconstructions']:>7} {result['ns_per_update']:>11,.0f}"
            )

    for (name, eps), result in stats.items():
        # The (1 + eps) tau bound holds at the end of the stream.
        assert result["groups"] <= (1 + eps) * result["tau"] + 1e-9, (name, eps)
    # Smaller epsilon -> at least as many reconstructions (tighter budget)
    # for the refined maintainer, which uses the simple update-count trigger.
    assert (
        stats[("refined", EPSILONS[0])]["reconstructions"]
        >= stats[("refined", EPSILONS[-1])]["reconstructions"]
    )

    partition = LazyStabbingPartition(epsilon=1.0)
    stream = list(interval_stream(seed=78))

    def replay():
        p = LazyStabbingPartition(epsilon=1.0)
        live = []
        for kind, interval in stream[:500]:
            if kind == "insert":
                p.insert(interval)
            else:
                p.delete(interval)

    benchmark(replay)
