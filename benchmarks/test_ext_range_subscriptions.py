"""Extension benchmark: range-subscription matching, SSI group processing
vs the classic stabbing indexes (interval tree, interval skip list).

On clustered subscriptions the SSI index answers events in O(tau + k) ---
whole groups reported through the common-intersection fast path --- and
should clearly beat both classic O(log n + k) structures; on scattered
subscriptions it degrades toward them.
"""

import random

from repro.bench.harness import Series, measure_throughput, print_figure
from repro.core.intervals import Interval
from repro.operators.range_select import (
    HotspotRangeIndex,
    IntervalSkipListRangeIndex,
    IntervalTreeRangeIndex,
    RangeSubscription,
    SSIRangeIndex,
)

SUBSCRIPTIONS = 20_000
EVENTS = 300
CLUSTERS = 12


def make_subscriptions(clustered_fraction, seed):
    rng = random.Random(seed)
    anchors = [1_000.0 * (i + 1) for i in range(CLUSTERS)]
    out = []
    for __ in range(SUBSCRIPTIONS):
        if rng.random() < clustered_fraction:
            anchor = rng.choice(anchors)
            lo = anchor - abs(rng.normalvariate(40, 25)) - 0.5
            hi = anchor + abs(rng.normalvariate(40, 25)) + 0.5
        else:
            lo = rng.uniform(0, 13_000)
            hi = lo + abs(rng.normalvariate(60, 40)) + 0.5
        out.append(RangeSubscription(Interval(lo, hi)))
    return out


def test_ext_range_subscription_matching(benchmark):
    rng = random.Random(1)
    events = [rng.uniform(0, 13_000) for __ in range(EVENTS)]

    series = {
        name: Series(name)
        for name in ("ITREE", "ISLIST", "SSI", "HOTSPOT", "SSI groups")
    }
    ssi_clustered = None
    for clustered in (0.2, 0.6, 1.0):
        subscriptions = make_subscriptions(clustered, seed=int(clustered * 100))
        indexes = {
            "ITREE": IntervalTreeRangeIndex(),
            "ISLIST": IntervalSkipListRangeIndex(),
            "SSI": SSIRangeIndex(),
            "HOTSPOT": HotspotRangeIndex(alpha=0.005),
        }
        for name, index in indexes.items():
            for subscription in subscriptions:
                index.add(subscription)
            series[name].add(
                round(clustered * 100), measure_throughput(index.match, events)
            )
        series["SSI groups"].add(round(clustered * 100), indexes["SSI"].group_count)
        if clustered == 1.0:
            ssi_clustered = indexes["SSI"]
    print_figure(
        "Extension: range-subscription matching (events/s) vs % clustered",
        "% clustered",
        series.values(),
    )

    # Fully clustered: SSI's O(tau + k) wins clearly.
    assert series["SSI"].y_at(100) > 1.5 * series["ITREE"].y_at(100)
    assert series["SSI"].y_at(100) > 1.5 * series["ISLIST"].y_at(100)
    # The group count is what drives it: far below the subscription count.
    assert series["SSI groups"].y_at(100) <= 2 * CLUSTERS
    # The classic indexes are indifferent to clusteredness.
    for name in ("ITREE", "ISLIST"):
        ys = series[name].ys
        assert max(ys) < 4.0 * min(ys)
    # Pure SSI loses badly on scattered subscriptions (tau ~ n); the
    # hotspot-filtered index stays competitive at both ends.
    assert series["SSI"].y_at(20) < 0.25 * series["ITREE"].y_at(20)
    assert series["HOTSPOT"].y_at(20) > 0.3 * series["ITREE"].y_at(20)
    assert series["HOTSPOT"].y_at(100) > series["ITREE"].y_at(100)

    benchmark(lambda: ssi_clustered.match(events[0]))
