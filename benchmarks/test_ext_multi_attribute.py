"""Extension benchmark: multi-attribute (2-D box) subscription matching.

The Section 6 extension: on clustered boxes the common-box fast path
reports whole groups without per-member tests, beating a single flat
R-tree; on scattered boxes it converges toward it.
"""

import random

from repro.bench.harness import Series, measure_throughput, print_figure
from repro.core.multidim import Box
from repro.operators.multi_attribute import BoxSubscription, RTreeBoxIndex, SSIBoxIndex

SUBSCRIPTIONS = 8_000
EVENTS = 200
ANCHORS = [(1_000.0, 1_000.0), (3_000.0, 500.0), (2_000.0, 3_000.0), (4_000.0, 4_000.0)]


def make_subscriptions(clustered_fraction, seed):
    rng = random.Random(seed)
    out = []
    for __ in range(SUBSCRIPTIONS):
        if rng.random() < clustered_fraction:
            # Similar-extent boxes around shared anchors: the regime where
            # the common box covers most of each cluster.
            cx, cy = rng.choice(ANCHORS)
            dx = abs(rng.normalvariate(80, 5)) + 1
            dy = abs(rng.normalvariate(80, 5)) + 1
            box = Box((cx - dx, cy - dy), (cx + dx, cy + dy))
        else:
            x, y = rng.uniform(0, 5_000), rng.uniform(0, 5_000)
            box = Box((x, y), (x + rng.uniform(1, 150), y + rng.uniform(1, 150)))
        out.append(BoxSubscription(box))
    return out


def test_ext_multi_attribute_matching(benchmark):
    rng = random.Random(2)
    # Event attributes concentrate where subscriber interest is (the
    # hotspot premise): most events land near the anchors.
    events = []
    for __ in range(EVENTS):
        if rng.random() < 0.7:
            cx, cy = rng.choice(ANCHORS)
            events.append((rng.normalvariate(cx, 40), rng.normalvariate(cy, 40)))
        else:
            events.append((rng.uniform(0, 5_000), rng.uniform(0, 5_000)))

    rtree_series = Series("RTREE")
    ssi_series = Series("SSI")
    groups_series = Series("SSI groups")
    ssi_clustered = None
    for clustered in (0.2, 0.6, 1.0):
        subscriptions = make_subscriptions(clustered, seed=int(clustered * 10))
        rtree = RTreeBoxIndex(2)
        ssi = SSIBoxIndex(2)
        for subscription in subscriptions:
            rtree.add(subscription)
            ssi.add(subscription)
        x = round(clustered * 100)
        rtree_series.add(x, measure_throughput(rtree.match, events))
        ssi_series.add(x, measure_throughput(ssi.match, events))
        groups_series.add(x, ssi.group_count)
        if clustered == 1.0:
            ssi_clustered = ssi
    print_figure(
        "Extension: 2-D box subscription matching (events/s) vs % clustered",
        "% clustered",
        [rtree_series, ssi_series, groups_series],
    )

    # Fully clustered: the common-box fast path wins.
    assert ssi_series.y_at(100) > 2.0 * rtree_series.y_at(100)
    # Scattered: per-group iteration doesn't pay off and the flat R-tree
    # wins --- the crossover that motivates hotspot filtering.
    assert rtree_series.y_at(20) > ssi_series.y_at(20)
    # SSI's advantage is driven by the collapse of the group count.
    assert groups_series.y_at(100) < 0.05 * groups_series.y_at(20)

    benchmark(lambda: ssi_clustered.match(events[0]))
