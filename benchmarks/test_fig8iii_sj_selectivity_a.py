"""Figure 8(iii): SJ-S vs SJ-SSI over event selectivity on the local R.A
selections.

The selectivity (fraction of queries whose rangeA contains an incoming
event's A value) is controlled by the rangeA length distribution.  Reported
shape: SJ-S deteriorates linearly with the selectivity (it drives n' in
Theorem 4); SJ-SSI is unaffected by it.
"""

import dataclasses

from conftest import BASE, load_queries, r_events, select_queries_with_tau

from repro.bench.harness import Series, assert_decreasing, measure_throughput, print_figure
from repro.operators.select_join import SJSelectFirst, SJSSI
from repro.workload import make_tables

QUERIES = 10_000
TAU = 30
# rangeA lengths giving selectivities from ~1% to ~25% of the domain.
LENGTH_SWEEP = [100.0, 400.0, 1_000.0, 2_500.0]
EVENTS = 25


def test_fig8iii_selectivity_on_range_a(benchmark):
    series_s = Series("SJ-S")
    series_ssi = Series("SJ-SSI")
    selectivities = []
    ssi_last = None
    last_events = None
    for length in LENGTH_SWEEP:
        params = dataclasses.replace(
            BASE.scaled(), range_a_len_mean=length, range_a_len_sigma=length / 4.0
        )
        table_r, table_s = make_tables(params)
        events = r_events(params, EVENTS, table_r)
        queries = select_queries_with_tau(params, QUERIES, TAU, seed=31)
        # Measured average event selectivity on the R.A selections.
        selectivity = sum(
            sum(1 for q in queries if q.range_a.contains(r.a)) for r in events
        ) / (len(events) * len(queries))
        selectivities.append(selectivity)
        x = round(selectivity * QUERIES)

        sj_s = SJSelectFirst(table_s, table_r)
        ssi = SJSSI(table_s, table_r, symmetric=False)
        load_queries(sj_s, queries)
        load_queries(ssi, queries)
        series_s.add(x, measure_throughput(sj_s.process_r, events))
        series_ssi.add(x, measure_throughput(ssi.process_r, events))
        ssi_last = ssi
        last_events = events
    print_figure(
        "Figure 8(iii): throughput vs event selectivity on R.A (x = avg #queries passing)",
        "selectivity",
        [series_s, series_ssi],
    )

    # The sweep actually moved the selectivity.
    assert selectivities[-1] > 5 * selectivities[0]
    # SJ-S deteriorates steadily as the selectivity grows.
    assert_decreasing(series_s, tolerance=0.10)
    assert series_s.ys[0] > 4.0 * series_s.ys[-1]
    # SJ-SSI is comparatively unaffected: its drop across the sweep is a
    # small fraction of SJ-S's (what residual drop it has is the shared
    # output term k, which also grows with this selectivity).
    ssi_drop = series_ssi.ys[0] / series_ssi.ys[-1]
    sj_s_drop = series_s.ys[0] / series_s.ys[-1]
    assert ssi_drop < sj_s_drop / 3.0
    # At high selectivity SJ-SSI wins clearly.
    assert series_ssi.ys[-1] > 2.0 * series_s.ys[-1]

    benchmark(lambda: ssi_last.process_r(last_events[0]))
