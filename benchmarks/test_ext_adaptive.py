"""Extension benchmark: cost-based per-event strategy selection.

Section 6's adaptive vision: on a stream mixing low-candidate events
(where SJ-SelectFirst wins) with high-candidate events (where SJ-SSI
wins), the adaptive processor should track the better of the two fixed
strategies on the *mixed* stream --- strictly better than whichever fixed
strategy loses on it.
"""

import random

from conftest import BASE

from repro.bench.harness import Series, measure_throughput, print_figure
from repro.core.intervals import Interval
from repro.engine.queries import SelectJoinQuery
from repro.operators.adaptive import AdaptiveSelectJoinProcessor
from repro.operators.select_join import SJSelectFirst, SJSSI
from repro.workload import make_tables

QUERIES = 15_000
EVENTS_PER_KIND = 15


def make_queries(rng, params):
    """rangeA bimodal (a hot region around A=2000 and a dead zone) so the
    per-event candidate count swings; rangeC clustered on 30 anchors so
    SJ-SSI's tau stays small and it is genuinely the right choice for
    high-candidate events."""
    anchors = [params.domain_lo + params.domain_width * (i + 1) / 31 for i in range(30)]
    queries = []
    for __ in range(QUERIES):
        if rng.random() < 0.8:
            a_lo = rng.normalvariate(2_000.0, 150.0)
        else:
            a_lo = rng.uniform(6_000.0, 9_500.0)
        anchor = rng.choice(anchors)
        c_lo = anchor - abs(rng.normalvariate(4, 1)) - 0.5
        c_hi = anchor + abs(rng.normalvariate(4, 1)) + 0.5
        queries.append(
            SelectJoinQuery(
                Interval(a_lo, a_lo + abs(rng.normalvariate(120, 30)) + 1),
                Interval(c_lo, c_hi),
            )
        )
    return queries


def test_ext_adaptive_strategy_selection(benchmark):
    params = BASE.scaled()
    rng = random.Random(3)
    table_r, table_s = make_tables(params)
    queries = make_queries(rng, params)

    processors = {
        "SJ-S": SJSelectFirst(table_s, table_r),
        "SJ-SSI": SJSSI(table_s, table_r, symmetric=False),
        "ADAPTIVE": AdaptiveSelectJoinProcessor(table_s, table_r),
    }
    for name, processor in processors.items():
        for query in queries:
            processor.add_query(query)

    hot_events = [
        table_r.new_row(rng.normalvariate(2_050.0, 120.0), float(rng.randrange(50)) * 200.0)
        for __ in range(EVENTS_PER_KIND)
    ]
    cold_events = [
        table_r.new_row(rng.uniform(4_000.0, 5_500.0), float(rng.randrange(50)) * 200.0)
        for __ in range(EVENTS_PER_KIND)
    ]
    mixed = [e for pair in zip(hot_events, cold_events) for e in pair]

    series = Series("events/s on mixed stream")
    rates = {}
    for name, processor in processors.items():
        rates[name] = measure_throughput(processor.process_r, mixed)
        series.add(len(rates), rates[name])
    print("\n=== Extension: adaptive per-event strategy selection ===")
    for name, rate in rates.items():
        print(f"  {name:>9}: {rate:>10,.0f} events/s")
    adaptive = processors["ADAPTIVE"]
    print(f"  (adaptive chose SJ-S {adaptive.chosen['SJ-S']}x, SJ-SSI {adaptive.chosen['SJ-SSI']}x)")

    # The adaptive processor used both strategies...
    assert adaptive.chosen["SJ-S"] > 0
    assert adaptive.chosen["SJ-SSI"] > 0
    # ...and beats the worse fixed strategy on the mixed stream, landing
    # within a modest factor of the better one (choice overhead aside).
    worse = min(rates["SJ-S"], rates["SJ-SSI"])
    better = max(rates["SJ-S"], rates["SJ-SSI"])
    assert rates["ADAPTIVE"] > worse
    assert rates["ADAPTIVE"] > 0.5 * better

    benchmark(lambda: adaptive.process_r(mixed[0]))
