"""Shared workload builders for the figure-reproduction benchmarks.

Sizes default to laptop scale (seconds per figure); set REPRO_BENCH_SCALE
to grow them toward the paper's (e.g. REPRO_BENCH_SCALE=10 uses 100k-tuple
tables).  Every benchmark prints the series its figure plots and asserts
the qualitative shape the paper reports.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import pytest

from repro.engine.table import TableR, TableS
from repro.workload import (
    WorkloadParams,
    ZipfSampler,
    make_band_join_queries,
    make_select_join_queries,
    make_tables,
    r_insert_events,
    spread_anchors,
)


BASE = WorkloadParams(
    seed=2006,
    table_size=10_000,
    query_count=10_000,
    # 50 distinct join keys -> each event joins ~2% of S (the paper's
    # events join ~1%; Figure 8(iv) sweeps this).
    join_key_grid=50,
    s_b_sigma=1_000.0,
    # rangeA spans ~2% of the domain so the per-event affected set (the
    # shared output term k) stays small; Figure 8(iii) sweeps this.
    range_a_mid_sigma=2_000.0,
    range_a_len_mean=200.0,
    range_a_len_sigma=50.0,
    # Narrow rangeC keeps the per-event affected set (and hence the shared
    # output term k) moderate, as in the paper's runs.
    range_c_len_mean=8.0,
    range_c_len_sigma=2.0,
    band_len_mean=120.0,
    band_len_sigma=40.0,
)


@pytest.fixture(scope="session")
def params() -> WorkloadParams:
    return BASE.scaled()


@pytest.fixture(scope="session")
def tables(params):
    return make_tables(params)


def select_queries_with_tau(
    params: WorkloadParams,
    count: int,
    tau: int,
    seed: int = 7,
    zipf_beta: Optional[float] = 1.0,
) -> List:
    """Select-join queries whose rangeC ranges form ~tau stabbing groups."""
    anchors = spread_anchors(params, tau)
    sampler = ZipfSampler(tau, zipf_beta) if zipf_beta else None
    return make_select_join_queries(
        params,
        count,
        rng=random.Random(seed),
        range_c_anchors=anchors,
        anchor_sampler=sampler,
    )


def band_queries_with_tau(
    params: WorkloadParams,
    count: int,
    tau: int,
    seed: int = 8,
    zipf_beta: Optional[float] = 1.0,
) -> List:
    """Band joins whose windows form ~tau stabbing groups (bands live on
    the centered difference domain)."""
    half = params.domain_width / 2.0
    span = half  # keep bands within +-half/1 so windows hit the table
    anchors = [-span / 2 + span * (i + 1) / (tau + 1) for i in range(tau)]
    sampler = ZipfSampler(tau, zipf_beta) if zipf_beta else None
    return make_band_join_queries(
        params,
        count,
        rng=random.Random(seed),
        band_anchors=anchors,
        anchor_sampler=sampler,
    )


def r_events(params: WorkloadParams, count: int, table_r: TableR, seed: int = 9) -> List:
    """Incoming R-tuples (not inserted; processing cost only, as the paper
    measures event processing throughput)."""
    rng = random.Random(seed)
    return [
        table_r.new_row(a, b)
        for a, b in r_insert_events(params, count, rng)
    ]


def load_queries(strategy, queries: Sequence) -> None:
    for query in queries:
        strategy.add_query(query)
