"""Ablation (Theorem 4): operation counts for select-joins.

Verifies with counters what Figure 7/8 show in wall-clock:

* SJ-SSI probes the composite B-tree once per stabbing group, independent
  of the query count, and touches R-tree nodes only for groups with join
  contact (tau * g(n) term);
* SJ-SelectFirst probes once per query passing the R.A selection (the n'
  term), which grows linearly with the query count.
"""

from conftest import BASE, load_queries, r_events, select_queries_with_tau

from repro.operators.select_join import SJSelectFirst, SJSSI
from repro.workload import make_tables

TAU = 30
EVENTS = 10


def test_theorem4_probe_counts(benchmark):
    params = BASE.scaled()
    table_r, table_s = make_tables(params)
    events = r_events(params, EVENTS, table_r)

    rows = []
    for count in (500, 5_000, 25_000):
        queries = select_queries_with_tau(params, count, TAU, seed=90)
        ssi = SJSSI(table_s, table_r, symmetric=False)
        select_first = SJSelectFirst(table_s, table_r)
        load_queries(ssi, queries)
        load_queries(select_first, queries)

        table_s.by_bc.reset_counters()
        for r in events:
            ssi.process_r(r)
        ssi_probes = table_s.by_bc.probe_count / EVENTS

        table_s.by_bc.reset_counters()
        n_prime = 0
        for r in events:
            select_first.process_r(r)
            n_prime += sum(1 for q in queries if q.range_a.contains(r.a))
        sf_probes = table_s.by_bc.probe_count / EVENTS

        rows.append((count, ssi.group_count, ssi_probes, sf_probes, n_prime / EVENTS))

    print("\n=== Ablation: Theorem 4 composite-index probes per event ===")
    print(f"{'#queries':>9} {'groups':>7} {'SSI probes':>11} {'SJ-S probes':>12} {'n_prime':>9}")
    for count, groups, sp, fp, np_ in rows:
        print(f"{count:>9} {groups:>7} {sp:>11.1f} {fp:>12.1f} {np_:>9.1f}")

    for count, groups, ssi_probes, sf_probes, n_prime in rows:
        # One descent per group (plus rare edge fallbacks).
        assert ssi_probes <= 2.1 * groups
        # SJ-S probes once per candidate query.
        assert sf_probes >= 0.9 * n_prime
    # SJ-S probe counts grow ~linearly with the query count; SJ-SSI's do
    # not grow beyond the group count.
    assert rows[-1][3] > 10 * rows[0][3]
    assert rows[-1][2] <= rows[0][2] * 2.0 + 2

    queries = select_queries_with_tau(params, 5_000, TAU, seed=90)
    ssi = SJSSI(table_s, table_r, symmetric=False)
    load_queries(ssi, queries)
    benchmark(lambda: ssi.process_r(events[0]))
