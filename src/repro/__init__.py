"""repro — a reproduction of *Scalable Continuous Query Processing by
Tracking Hotspots* (Agarwal, Xie, Yang, Yu; VLDB 2006).

The package implements the paper's full stack from scratch:

* ``repro.core`` — stabbing partitions, dynamic (1+eps)-approximate
  maintenance, hotspot tracking, and the stabbing set index framework;
* ``repro.dstruct`` — the index substrates (B+ tree, R-tree, interval tree,
  treap with split/join, sorted sequences);
* ``repro.engine`` — relations, update streams, and the continuous-query
  model;
* ``repro.operators`` — the band-join and select-join processing strategies
  (SSI-based and all paper baselines);
* ``repro.histogram`` — SSI-HIST, EQW-HIST and the DP-optimal histogram for
  interval stabbing counts;
* ``repro.workload`` — synthetic workload generators matching Table 1;
* ``repro.bench`` — the throughput/maintenance measurement harness used by
  the figure-reproduction benchmarks;
* ``repro.runtime`` — the sharded, micro-batched event-processing runtime
  (shard routing, backpressure, metrics, deterministic replay).
"""

from repro.core import (
    HotspotTracker,
    Interval,
    LazyStabbingPartition,
    RefinedStabbingPartition,
    StabbingSetIndex,
    canonical_stabbing_partition,
    stabbing_number,
)

__version__ = "1.0.0"

__all__ = [
    "HotspotTracker",
    "Interval",
    "LazyStabbingPartition",
    "RefinedStabbingPartition",
    "StabbingSetIndex",
    "canonical_stabbing_partition",
    "stabbing_number",
    "__version__",
]
