"""Relations, tuples, continuous-query objects and update streams."""

from repro.engine.events import (
    DataEvent,
    EventKind,
    QueryEvent,
    insertions,
    replay_data_events,
    replay_query_events,
)
from repro.engine.queries import (
    BandJoinQuery,
    SelectJoinQuery,
    band_interval,
    brute_force_band_join,
    brute_force_select_join,
    range_a_interval,
    range_c_interval,
)
from repro.engine.table import RTuple, STuple, TableR, TableS

__all__ = [
    "BandJoinQuery",
    "DataEvent",
    "EventKind",
    "QueryEvent",
    "RTuple",
    "STuple",
    "SelectJoinQuery",
    "TableR",
    "TableS",
    "band_interval",
    "brute_force_band_join",
    "brute_force_select_join",
    "insertions",
    "range_a_interval",
    "range_c_interval",
    "replay_data_events",
    "replay_query_events",
]
