"""A complete continuous-query system facade.

Ties the pieces into the interface a downstream application would adopt:
two base relations, subscription management for every supported query
type, and an event API that applies a data update and returns (and/or
dispatches) the per-subscription result deltas --- the contract from the
paper's introduction: "for each subsequent database update ... the query
needs to return the changes".

Processing uses the hotspot-based processors by default (SSI on hotspot
groups, traditional algorithms on the scattered remainder), so the system
gets faster as subscriptions cluster, degrading gracefully to the
traditional strategies when they do not.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.table import RTuple, STuple, TableR, TableS
from repro.operators.band_join import BJSSI
from repro.operators.hotspot_processor import (
    HotspotBandJoinProcessor,
    HotspotSelectJoinProcessor,
)
from repro.operators.select_join import SJSSI

ResultCallback = Callable[[object, RTuple | STuple, list], None]


class ContinuousQuerySystem:
    """Relations + subscriptions + event processing in one object.

    Parameters
    ----------
    alpha:
        Hotspot threshold for the hotspot-based processors.  ``None``
        disables hotspot tracking and applies the SSI to every group
        (the "purist" configuration of Section 4).
    """

    def __init__(self, *, alpha: Optional[float] = 0.01, epsilon: float = 1.0):
        self.table_r = TableR()
        self.table_s = TableS()
        if alpha is None:
            self._band = BJSSI(self.table_s, self.table_r, epsilon=epsilon)
            self._select = SJSSI(self.table_s, self.table_r, epsilon=epsilon)
        else:
            self._band = HotspotBandJoinProcessor(
                self.table_s, self.table_r, alpha=alpha, epsilon=epsilon
            )
            self._select = HotspotSelectJoinProcessor(
                self.table_s, self.table_r, alpha=alpha, epsilon=epsilon
            )
        self._callbacks: Dict[int, ResultCallback] = {}
        self.events_processed = 0
        self.results_produced = 0

    # -- subscriptions ------------------------------------------------------

    def subscribe(self, query, on_results: Optional[ResultCallback] = None):
        """Register a continuous query (band join or select-join).

        Returns the query, which acts as the subscription handle.
        """
        if isinstance(query, BandJoinQuery):
            self._band.add_query(query)
        elif isinstance(query, SelectJoinQuery):
            self._select.add_query(query)
        else:
            raise TypeError(f"unsupported query type: {type(query).__name__}")
        if on_results is not None:
            self._callbacks[query.qid] = on_results
        return query

    def unsubscribe(self, query) -> None:
        if isinstance(query, BandJoinQuery):
            self._band.remove_query(query)
        elif isinstance(query, SelectJoinQuery):
            self._select.remove_query(query)
        else:
            raise TypeError(f"unsupported query type: {type(query).__name__}")
        self._callbacks.pop(query.qid, None)

    @property
    def subscription_count(self) -> int:
        return self._band.query_count + self._select.query_count

    # -- data updates ---------------------------------------------------------

    def insert_r(self, a: float, b: float) -> Dict[object, List[STuple]]:
        """Apply an R-insertion: compute result deltas against the current
        S state, then install the tuple.  Returns {query: new S matches}
        and dispatches registered callbacks."""
        return self.insert_r_row(self.table_r.new_row(a, b))

    def insert_r_row(self, row: RTuple) -> Dict[object, List[STuple]]:
        """Apply an R-insertion for an already-materialized row (replayed
        streams carry rows with pre-assigned surrogate ids)."""
        deltas: Dict[object, List[STuple]] = {}
        deltas.update(self._band.process_r(row))
        deltas.update(self._select.process_r(row))
        self.table_r.insert(row)
        self._dispatch(row, deltas)
        return deltas

    def insert_s(self, b: float, c: float) -> Dict[object, List[RTuple]]:
        """Apply an S-insertion (the symmetric direction).

        The pure-SSI configuration mirrors the group probes on the
        S-side SSIs; the hotspot configuration falls back to traditional
        per-query probes for this direction (its tracker groups the R-side
        projections).
        """
        return self.insert_s_row(self.table_s.new_row(b, c))

    def insert_s_row(self, row: STuple) -> Dict[object, List[RTuple]]:
        """Apply an S-insertion for an already-materialized row."""
        deltas: Dict[object, List[RTuple]] = {}
        deltas.update(self._band.process_s(row))
        deltas.update(self._select.process_s(row))
        self.table_s.insert(row)
        self._dispatch(row, deltas)
        return deltas

    def delete_r(self, row: RTuple) -> None:
        """Remove an R-tuple (results referencing it become stale; delta
        semantics for deletions report nothing, matching monotone
        append-only result streams).  Deletions still count as applied
        events in ``events_processed``."""
        self.table_r.delete(row)
        self._dispatch(row, {})

    def delete_s(self, row: STuple) -> None:
        self.table_s.delete(row)
        self._dispatch(row, {})

    def _dispatch(self, row, deltas: Dict[object, list]) -> None:
        self.events_processed += 1
        for query, matches in deltas.items():
            self.results_produced += len(matches)
            callback = self._callbacks.get(query.qid)
            if callback is not None:
                callback(query, row, matches)
