"""Base relations R(A, B) and S(B, C) with B-tree indexes.

The paper's experimental setup keeps two synthetic tables, "each ... indexed
by standard B-trees": the join strategies probe ``S(B)`` (band joins) and the
composite ``S(B, C)`` (select-joins), and symmetric processing of incoming
S-tuples uses the mirrored indexes on R.  Rows are immutable value objects
with surrogate ids so that streams can delete specific tuples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.dstruct.btree import BPlusTree


@dataclass(frozen=True, slots=True)
class RTuple:
    """A row of R(A, B): ``a`` is the local-selection attribute, ``b`` the
    join attribute."""

    rid: int
    a: float
    b: float


@dataclass(frozen=True, slots=True)
class STuple:
    """A row of S(B, C): ``b`` is the join attribute, ``c`` the
    local-selection attribute."""

    sid: int
    b: float
    c: float


class TableS:
    """S(B, C) with a B-tree on B and a composite B-tree on (B, C)."""

    def __init__(self, order: int = 64):
        self.by_b: BPlusTree[STuple] = BPlusTree(order)
        self.by_bc: BPlusTree[STuple] = BPlusTree(order)
        self._rows: Dict[int, STuple] = {}
        self._ids = itertools.count()

    def new_row(self, b: float, c: float) -> STuple:
        """Create (but do not insert) a row with a fresh surrogate id."""
        return STuple(next(self._ids), b, c)

    def insert(self, row: STuple) -> None:
        if row.sid in self._rows:
            raise ValueError(f"duplicate sid {row.sid}")
        self._rows[row.sid] = row
        self.by_b.insert(row.b, row)
        self.by_bc.insert((row.b, row.c), row)

    def add(self, b: float, c: float) -> STuple:
        row = self.new_row(b, c)
        self.insert(row)
        return row

    def delete(self, row: STuple) -> None:
        del self._rows[row.sid]
        self.by_b.remove(row.b, row)
        self.by_bc.remove((row.b, row.c), row)

    def get(self, sid: int) -> Optional[STuple]:
        return self._rows.get(sid)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[STuple]:
        return iter(self._rows.values())

    def scan_by_b(self) -> Iterator[STuple]:
        """All rows in increasing B order (BJ-MJ's sorted scan)."""
        for __, row in self.by_b.items():
            yield row

    def joining(self, b: float) -> list:
        """All rows with exactly this join-attribute value."""
        return self.by_b.get_all(b)


class TableR:
    """R(A, B) with a B-tree on B and a composite B-tree on (B, A).

    Mirrors :class:`TableS` so that incoming S-tuples can be processed
    symmetrically ("the case in which a new S-tuple arrives is symmetric").
    """

    def __init__(self, order: int = 64):
        self.by_b: BPlusTree[RTuple] = BPlusTree(order)
        self.by_ba: BPlusTree[RTuple] = BPlusTree(order)
        self._rows: Dict[int, RTuple] = {}
        self._ids = itertools.count()

    def new_row(self, a: float, b: float) -> RTuple:
        return RTuple(next(self._ids), a, b)

    def insert(self, row: RTuple) -> None:
        if row.rid in self._rows:
            raise ValueError(f"duplicate rid {row.rid}")
        self._rows[row.rid] = row
        self.by_b.insert(row.b, row)
        self.by_ba.insert((row.b, row.a), row)

    def add(self, a: float, b: float) -> RTuple:
        row = self.new_row(a, b)
        self.insert(row)
        return row

    def delete(self, row: RTuple) -> None:
        del self._rows[row.rid]
        self.by_b.remove(row.b, row)
        self.by_ba.remove((row.b, row.a), row)

    def get(self, rid: int) -> Optional[RTuple]:
        return self._rows.get(rid)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[RTuple]:
        return iter(self._rows.values())

    def scan_by_b(self) -> Iterator[RTuple]:
        for __, row in self.by_b.items():
            yield row

    def joining(self, b: float) -> list:
        return self.by_b.get_all(b)
