"""Update-event model for the continuous query engine.

A continuous-query system consumes two kinds of streams: *data updates*
(tuples arriving at or leaving the base tables) and *query updates*
(subscriptions being added or cancelled).  Both are represented as small
event objects, so benchmarks can build reproducible mixed streams and replay
them against any processing strategy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator


class EventKind(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True, slots=True)
class DataEvent:
    """An update to a base table. ``relation`` is "R" or "S"."""

    kind: EventKind
    relation: str
    row: Any

    def __post_init__(self) -> None:
        if self.relation not in ("R", "S"):
            raise ValueError(f"unknown relation {self.relation!r}")


@dataclass(frozen=True, slots=True)
class QueryEvent:
    """A subscription change: a continuous query arriving or leaving."""

    kind: EventKind
    query: Any


def insertions(rows: Iterable[Any], relation: str) -> Iterator[DataEvent]:
    """Wrap plain rows as a stream of insertion events."""
    for row in rows:
        yield DataEvent(EventKind.INSERT, relation, row)


def replay_query_events(events: Iterable[QueryEvent], processor: Any) -> int:
    """Apply a stream of subscription changes to a processor that exposes
    ``add_query`` / ``remove_query``.  Returns the number of events applied
    (the Figure 11 maintenance benchmark divides elapsed time by this)."""
    count = 0
    for event in events:
        if event.kind is EventKind.INSERT:
            processor.add_query(event.query)
        else:
            processor.remove_query(event.query)
        count += 1
    return count
