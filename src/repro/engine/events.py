"""Update-event model for the continuous query engine.

A continuous-query system consumes two kinds of streams: *data updates*
(tuples arriving at or leaving the base tables) and *query updates*
(subscriptions being added or cancelled).  Both are represented as small
event objects, so benchmarks can build reproducible mixed streams and replay
them against any processing strategy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional


class EventKind(enum.Enum):
    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True, slots=True)
class DataEvent:
    """An update to a base table. ``relation`` is "R" or "S"."""

    kind: EventKind
    relation: str
    row: Any

    def __post_init__(self) -> None:
        if self.relation not in ("R", "S"):
            raise ValueError(f"unknown relation {self.relation!r}")


@dataclass(frozen=True, slots=True)
class QueryEvent:
    """A subscription change: a continuous query arriving or leaving."""

    kind: EventKind
    query: Any


def insertions(rows: Iterable[Any], relation: str) -> Iterator[DataEvent]:
    """Wrap plain rows as a stream of insertion events."""
    for row in rows:
        yield DataEvent(EventKind.INSERT, relation, row)


def replay_data_events(
    events: Iterable[DataEvent],
    system: Any,
    *,
    on_result: Optional[Callable[[DataEvent, dict], None]] = None,
) -> int:
    """Apply a stream of data updates to a system that exposes the row-level
    event API (``insert_r_row`` / ``insert_s_row`` / ``delete_r`` /
    ``delete_s``), symmetric to :func:`replay_query_events`.

    Handles both INSERT and DELETE events; ``on_result`` (if given) receives
    each event together with the per-query result deltas it produced
    (deletions produce none — the result stream is monotone append-only).
    Returns the number of events applied.
    """
    count = 0
    for event in events:
        if not isinstance(event, DataEvent):
            raise TypeError(f"expected DataEvent, got {type(event).__name__}")
        if event.kind is EventKind.INSERT:
            if event.relation == "R":
                deltas = system.insert_r_row(event.row)
            else:
                deltas = system.insert_s_row(event.row)
        else:
            if event.relation == "R":
                system.delete_r(event.row)
            else:
                system.delete_s(event.row)
            deltas = {}
        if on_result is not None:
            on_result(event, deltas)
        count += 1
    return count


def replay_query_events(events: Iterable[QueryEvent], processor: Any) -> int:
    """Apply a stream of subscription changes to a processor that exposes
    ``add_query`` / ``remove_query``.  Returns the number of events applied
    (the Figure 11 maintenance benchmark divides elapsed time by this)."""
    count = 0
    for event in events:
        if event.kind is EventKind.INSERT:
            processor.add_query(event.query)
        else:
            processor.remove_query(event.query)
        count += 1
    return count
