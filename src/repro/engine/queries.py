"""Continuous-query model: band joins and equality joins with selections.

The two query templates of Section 3, over R(A, B) and S(B, C):

* **band join** — ``R JOIN S ON S.B - R.B IN rangeB_i``: a new pair (r, s)
  matches query i iff ``s.b - r.b`` stabs the band window;
* **equality join with local selections** —
  ``sigma_{A in rangeA_i} R JOIN_{R.B=S.B} sigma_{C in rangeC_i} S``: a new
  pair matches iff the join keys are equal and both selection ranges are
  stabbed.

Query objects use identity semantics (two queries with equal ranges are
distinct subscriptions), so they can key result dictionaries directly.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional

from repro.core.intervals import Interval
from repro.dstruct.rtree import Rect
from repro.engine.table import RTuple, STuple

_query_ids = itertools.count()


class BandJoinQuery:
    """A continuous band join with window ``band`` = rangeB_i.

    The window is interpreted as a constraint on ``S.B - R.B``; for an
    incoming r-tuple the instantiated selection on S is ``band + r.b``.
    """

    __slots__ = ("qid", "band")

    def __init__(self, band: Interval, qid: Optional[int] = None):
        self.qid = qid if qid is not None else next(_query_ids)
        self.band = band

    def matches(self, r: RTuple, s: STuple) -> bool:
        return self.band.contains(s.b - r.b)

    def s_window(self, r: RTuple) -> Interval:
        """The instantiated selection range on S.B for this r-tuple."""
        return self.band.shift(r.b)

    def r_window(self, s: STuple) -> Interval:
        """The instantiated selection range on R.B for an incoming s-tuple
        (the symmetric case: r.b must lie in ``s.b - band``)."""
        return Interval(s.b - self.band.hi, s.b - self.band.lo)

    def __repr__(self) -> str:
        return f"BandJoinQuery(qid={self.qid}, band={self.band})"


class SelectJoinQuery:
    """A continuous equality join with local selections rangeA_i, rangeC_i."""

    __slots__ = ("qid", "range_a", "range_c")

    def __init__(self, range_a: Interval, range_c: Interval, qid: Optional[int] = None):
        self.qid = qid if qid is not None else next(_query_ids)
        self.range_a = range_a
        self.range_c = range_c

    def matches(self, r: RTuple, s: STuple) -> bool:
        return (
            r.b == s.b
            and self.range_a.contains(r.a)
            and self.range_c.contains(s.c)
        )

    @property
    def rect(self) -> Rect:
        """The query rectangle in the product space S.C x R.A (Figure 5)."""
        return Rect(self.range_c.lo, self.range_a.lo, self.range_c.hi, self.range_a.hi)

    def __repr__(self) -> str:
        return (
            f"SelectJoinQuery(qid={self.qid}, rangeA={self.range_a}, "
            f"rangeC={self.range_c})"
        )


def band_interval(query: BandJoinQuery) -> Interval:
    """``interval_of`` for SSIs built over band-join windows."""
    return query.band


def range_c_interval(query: SelectJoinQuery) -> Interval:
    """``interval_of`` for SSIs over the S.C selection ranges (R-side
    processing)."""
    return query.range_c


def range_a_interval(query: SelectJoinQuery) -> Interval:
    """``interval_of`` for SSIs over the R.A selection ranges (S-side
    processing)."""
    return query.range_a


def brute_force_band_join(
    queries: Iterable[BandJoinQuery], r: RTuple, table_s
) -> dict:
    """Oracle evaluator: scan everything.  Tests cross-validate every
    strategy against this."""
    results: dict = {}
    for query in queries:
        hits: List[STuple] = [s for s in table_s if query.matches(r, s)]
        if hits:
            results[query] = sorted(hits, key=lambda s: (s.b, s.c, s.sid))
    return results


def brute_force_select_join(
    queries: Iterable[SelectJoinQuery], r: RTuple, table_s
) -> dict:
    """Oracle evaluator for select-joins."""
    results: dict = {}
    for query in queries:
        hits: List[STuple] = [s for s in table_s if query.matches(r, s)]
        if hits:
            results[query] = sorted(hits, key=lambda s: (s.b, s.c, s.sid))
    return results
