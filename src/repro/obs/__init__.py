"""Observability: tracing spans, metric export, hotspot telemetry.

The paper's contribution is visibility into *structure* — which query
groups are hotspots, how much the maintained partition costs — and this
package makes that visibility operational:

* :mod:`repro.obs.tracing` — span context managers over a thread-safe
  ring buffer, exportable as Chrome ``trace_event`` JSON; the
  :data:`~repro.obs.tracing.NULL_TRACER` default makes instrumentation
  free when disabled;
* :mod:`repro.obs.export` — Prometheus text exposition, JSONL snapshot
  streams, interpolated p50/p95/p99 from the runtime's power-of-two
  histograms, and a background HTTP endpoint;
* :mod:`repro.obs.hotspot_telemetry` — tracker/partition listeners
  recording promotion/demotion churn, reconstruction durations, and the
  invariant I2 headroom ``(1 + eps) * tau + 2/alpha - |I|``;
* :mod:`repro.obs.remote` — cross-process telemetry for the shm
  transport: worker-side delta collection and parent-side merge into one
  registry and one trace (imported directly, not re-exported here — it
  sits above :mod:`repro.runtime.transport` in the import order);
* :mod:`repro.obs.top` — the ``repro top`` dashboard renderer and the
  ``stats --watch`` refresh loop (imported directly for the same reason
  ``remote`` is: it pulls in no transport code but is CLI-facing, not a
  library surface).

Wired through ``repro serve --trace-out/--metrics-port/--snapshot-out``
and read back by ``repro stats`` / ``repro top``; see
``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    EXPORT_QUANTILES,
    MetricsServer,
    SnapshotWriter,
    bucket_bounds,
    estimate_quantile,
    estimate_quantiles,
    latest_snapshot,
    metric_help,
    read_snapshots,
    render_prometheus,
    render_snapshot,
)
from repro.obs.hotspot_telemetry import (
    HeadroomSample,
    HotspotChurnTelemetry,
    HotspotTelemetry,
    ReconstructionTelemetry,
    hotspot_headroom,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    RingTracer,
    SpanRecord,
    Tracer,
    new_trace_id,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "EXPORT_QUANTILES",
    "MetricsServer",
    "SnapshotWriter",
    "bucket_bounds",
    "estimate_quantile",
    "estimate_quantiles",
    "latest_snapshot",
    "metric_help",
    "read_snapshots",
    "render_prometheus",
    "render_snapshot",
    "HeadroomSample",
    "HotspotChurnTelemetry",
    "HotspotTelemetry",
    "ReconstructionTelemetry",
    "hotspot_headroom",
    "NULL_TRACER",
    "NullTracer",
    "RingTracer",
    "SpanRecord",
    "Tracer",
    "new_trace_id",
    "to_chrome_trace",
    "write_chrome_trace",
]
