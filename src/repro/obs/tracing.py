"""Lightweight tracing spans for the runtime's phase breakdown.

The runtime wants per-phase timing (``batch`` -> ``shard.apply`` ->
``wal.append``) without paying for it when nobody is looking, so the API
is a two-implementation protocol:

* :data:`NULL_TRACER` — the disabled default.  ``span()`` returns one
  shared, stateless context manager; entering it allocates nothing and
  reads no clock, so instrumented code costs a method call and a ``with``
  block when tracing is off.
* :class:`RingTracer` — the enabled path.  Each closed span becomes one
  immutable :class:`SpanRecord` in a fixed-capacity ring buffer (bounded
  memory by construction: once full, the oldest record is overwritten and
  counted as dropped).  Timing uses ``time.perf_counter_ns`` — a
  *monotonic* clock, which the RA001 determinism rule permits in this
  package precisely because span durations never feed replay or recovery
  decisions (see ``repro.analysis.project.MONOTONIC_CLOCK_SCOPE``).

Lock discipline follows RA003/RA201: the ring state (``_spans``,
``_next``) declares ``guarded-by: _lock`` and is only ever touched under
``self._lock``; snapshot readers copy under the lock and format outside
it.  The lock comes from the project factory so ``repro racecheck`` can
witness its acquisition order.  Span *objects* are thread-local by usage
(created, entered and exited on one thread), so only the final
``_record`` call synchronizes.

Export is Chrome ``trace_event`` JSON ("X" complete events, microsecond
timestamps) — load the file at ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, ContextManager, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.analysis.racecheck import guarded, new_lock

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "RingTracer",
    "NULL_TRACER",
    "to_chrome_trace",
    "write_chrome_trace",
]

DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One closed span: name, start, duration, recording thread, tags.

    ``ts_ns`` is a ``perf_counter_ns`` reading — monotonic with an
    arbitrary origin, so only differences between records are meaningful
    (exactly what a trace viewer needs).
    """

    name: str
    ts_ns: int
    dur_ns: int
    tid: int
    args: Optional[Dict[str, Any]] = field(default=None)

    @property
    def end_ns(self) -> int:
        return self.ts_ns + self.dur_ns


class Tracer(Protocol):
    """What instrumented code needs: a context manager per named phase."""

    def span(self, name: str, **args: Any) -> ContextManager[Any]: ...


class _NullSpan:
    """The shared do-nothing span (no clock reads, no allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every ``span()`` is the same inert object."""

    __slots__ = ()

    def span(self, name: str, **args: Any) -> _NullSpan:
        return _NULL_SPAN


NULL_TRACER = NullTracer()


class _Span:
    """A live span: reads the clock on enter/exit, records on exit.

    Spans also work as *manual* start/stop pairs (``__enter__`` /
    ``__exit__(None, None, None)``) for callers whose start and end sites
    are separate callbacks — the partition-rebuild listener uses this.
    """

    __slots__ = ("_tracer", "_name", "_args", "_start_ns")

    def __init__(
        self, tracer: "RingTracer", name: str, args: Optional[Dict[str, Any]]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        end_ns = time.perf_counter_ns()
        self._tracer._record(
            SpanRecord(
                name=self._name,
                ts_ns=self._start_ns,
                dur_ns=end_ns - self._start_ns,
                tid=threading.get_ident(),
                args=self._args,
            )
        )


@guarded
class RingTracer:
    """Thread-safe ring buffer of closed spans with bounded memory.

    ``capacity`` bounds resident records; overflow overwrites the oldest
    span rather than blocking or growing, and the overwritten count is
    reported as :attr:`dropped` so exported traces are honest about
    truncation.
    """

    __slots__ = ("capacity", "_lock", "_spans", "_next")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = new_lock("RingTracer._lock")
        self._spans: List[Optional[SpanRecord]] = [None] * capacity  # guarded-by: _lock
        self._next = 0  # total spans ever recorded  # guarded-by: _lock

    def span(self, name: str, **args: Any) -> _Span:
        return _Span(self, name, args or None)

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans[self._next % self.capacity] = record
            self._next += 1

    @property
    def recorded(self) -> int:
        """Total spans ever closed (including any since overwritten)."""
        with self._lock:
            return self._next

    @property
    def dropped(self) -> int:
        """Spans lost to ring overflow."""
        with self._lock:
            return max(0, self._next - self.capacity)

    def snapshot(self) -> List[SpanRecord]:
        """The retained spans, oldest first (a consistent copy)."""
        records, _ = self._ring_copy()
        return records

    def _ring_copy(self) -> Tuple[List[SpanRecord], int]:
        """(retained spans oldest-first, total ever recorded) from *one*
        lock acquisition — exporters need both to agree, and reading them
        via two separate properties is exactly the torn-read hazard RA203
        exists to flag."""
        with self._lock:
            total = self._next
            if total <= self.capacity:
                head = self._spans[:total]
            else:
                start = total % self.capacity
                head = self._spans[start:] + self._spans[:start]
        return [record for record in head if record is not None], total

    def clear(self) -> None:
        with self._lock:
            self._spans = [None] * self.capacity
            self._next = 0

    def to_chrome_trace(self, *, pid: int = 1) -> Dict[str, Any]:
        records, total = self._ring_copy()
        trace = to_chrome_trace(records, pid=pid)
        trace["otherData"] = {"dropped_spans": max(0, total - self.capacity)}
        return trace


def to_chrome_trace(
    spans: Sequence[SpanRecord], *, pid: int = 1
) -> Dict[str, Any]:
    """Render spans as a Chrome ``trace_event`` document.

    Each span becomes one "X" (complete) event; timestamps and durations
    are microseconds, rebased so the earliest span starts at 0.
    """
    base_ns = min((record.ts_ns for record in spans), default=0)
    events: List[Dict[str, Any]] = []
    for record in spans:
        event: Dict[str, Any] = {
            "name": record.name,
            "ph": "X",
            "ts": (record.ts_ns - base_ns) / 1_000.0,
            "dur": record.dur_ns / 1_000.0,
            "pid": pid,
            "tid": record.tid,
        }
        if record.args:
            event["args"] = dict(record.args)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, source: "RingTracer | Sequence[SpanRecord]", *, pid: int = 1
) -> int:
    """Write a Chrome trace JSON file; returns the number of events."""
    if isinstance(source, RingTracer):
        trace = source.to_chrome_trace(pid=pid)
    else:
        trace = to_chrome_trace(source, pid=pid)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])
