"""Lightweight tracing spans for the runtime's phase breakdown.

The runtime wants per-phase timing (``batch`` -> ``shard.apply`` ->
``wal.append``) without paying for it when nobody is looking, so the API
is a two-implementation protocol:

* :data:`NULL_TRACER` — the disabled default.  ``span()`` returns one
  shared, stateless context manager; entering it allocates nothing and
  reads no clock, so instrumented code costs a method call and a ``with``
  block when tracing is off.
* :class:`RingTracer` — the enabled path.  Each closed span becomes one
  immutable :class:`SpanRecord` in a fixed-capacity ring buffer (bounded
  memory by construction: once full, the oldest record is overwritten and
  counted as dropped).  Timing uses ``time.perf_counter_ns`` — a
  *monotonic* clock, which the RA001 determinism rule permits in this
  package precisely because span durations never feed replay or recovery
  decisions (see ``repro.analysis.project.MONOTONIC_CLOCK_SCOPE``).

Lock discipline follows RA003/RA201: the ring state (``_spans``,
``_next``) declares ``guarded-by: _lock`` and is only ever touched under
``self._lock``; snapshot readers copy under the lock and format outside
it.  The lock comes from the project factory so ``repro racecheck`` can
witness its acquisition order.  Span *objects* are thread-local by usage
(created, entered and exited on one thread), so only the final
``_record`` call synchronizes.

Export is Chrome ``trace_event`` JSON ("X" complete events, microsecond
timestamps) — load the file at ``chrome://tracing`` or https://ui.perfetto.dev.

**Distributed traces** (PR 10): every :class:`RingTracer` carries a
``trace_id`` (derived from the monotonic clock and the pid — no RNG, so
the RA001 determinism plane stays clean) and allocates a ``span_id`` per
opened span.  A process boundary propagates the pair explicitly: the
shm-transport pipeline stamps each BATCH frame with its trace id and the
open ``transport.roundtrip`` span id, the worker's tracer *adopts* the
trace id and stamps the remote id as ``parent_id`` on every span it
records, and the worker ships its closed spans back as TELEMETRY frames.
:meth:`RingTracer.record` merges such foreign records — each carries its
own ``pid`` — and the Chrome export renders one lane per process via
``M`` (``process_name``/``thread_name``) metadata events, so a single
trace.json shows the parent and every worker on a shared clock
(``perf_counter_ns`` reads CLOCK_MONOTONIC, whose origin is per-host,
not per-process, on every platform CPython supports).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, ContextManager, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.analysis.racecheck import guarded, new_lock

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "RingTracer",
    "NULL_TRACER",
    "new_trace_id",
    "to_chrome_trace",
    "write_chrome_trace",
]

DEFAULT_CAPACITY = 65_536


def new_trace_id() -> int:
    """A fresh nonzero 63-bit trace id.

    Seeded from the monotonic clock and the pid rather than an RNG: unique
    enough to tell two runs (or two tracers) apart, and RA001-clean — the
    obs package sits on the replay-equivalence plane where entropy sources
    are banned but monotonic clock reads are carved out.
    """
    raw = (time.monotonic_ns() ^ (os.getpid() << 47)) & 0x7FFF_FFFF_FFFF_FFFF
    return raw or 1


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One closed span: name, start, duration, recording thread, tags.

    ``ts_ns`` is a ``perf_counter_ns`` reading — monotonic with an
    arbitrary origin, so only differences between records are meaningful
    (exactly what a trace viewer needs).

    The distributed-trace fields default to "not propagated": ``pid`` 0
    means "the exporting process" (the exporter substitutes its default
    lane), and a zero ``trace_id``/``span_id``/``parent_id`` is simply
    omitted from the exported event's args.
    """

    name: str
    ts_ns: int
    dur_ns: int
    tid: int
    args: Optional[Dict[str, Any]] = field(default=None)
    pid: int = 0
    trace_id: int = 0
    span_id: int = 0
    parent_id: int = 0

    @property
    def end_ns(self) -> int:
        return self.ts_ns + self.dur_ns


class Tracer(Protocol):
    """What instrumented code needs: a context manager per named phase."""

    def span(self, name: str, **args: Any) -> ContextManager[Any]: ...


class _NullSpan:
    """The shared do-nothing span (no clock reads, no allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every ``span()`` is the same inert object."""

    __slots__ = ()

    def span(self, name: str, **args: Any) -> _NullSpan:
        return _NULL_SPAN


NULL_TRACER = NullTracer()


class _Span:
    """A live span: reads the clock on enter/exit, records on exit.

    Spans also work as *manual* start/stop pairs (``__enter__`` /
    ``__exit__(None, None, None)``) for callers whose start and end sites
    are separate callbacks — the partition-rebuild listener uses this.
    """

    __slots__ = ("_tracer", "_name", "_args", "_start_ns", "span_id")

    def __init__(
        self, tracer: "RingTracer", name: str, args: Optional[Dict[str, Any]]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args
        self._start_ns = 0
        #: Allocated on ``__enter__`` — callers may read it while the span
        #: is open to propagate it across a process boundary (the shm
        #: transport stamps it on BATCH frames as the remote parent).
        self.span_id = 0

    def __enter__(self) -> "_Span":
        self._start_ns = time.perf_counter_ns()
        self.span_id = self._tracer._next_span_id()
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        end_ns = time.perf_counter_ns()
        self._tracer._record_closed(
            name=self._name,
            ts_ns=self._start_ns,
            dur_ns=end_ns - self._start_ns,
            tid=threading.get_ident(),
            args=self._args,
            span_id=self.span_id,
        )


@guarded
class RingTracer:
    """Thread-safe ring buffer of closed spans with bounded memory.

    ``capacity`` bounds resident records; overflow overwrites the oldest
    span rather than blocking or growing, and the overwritten count is
    reported as :attr:`dropped` so exported traces are honest about
    truncation.
    """

    __slots__ = (
        "capacity",
        "pid",
        "_lock",
        "_spans",
        "_next",
        "_trace_id",
        "_remote_parent",
        "_span_seq",
        "_process_names",
        "_thread_names",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.pid = os.getpid()
        self._lock = new_lock("RingTracer._lock")
        self._spans: List[Optional[SpanRecord]] = [None] * capacity  # guarded-by: _lock
        self._next = 0  # total spans ever recorded  # guarded-by: _lock
        self._trace_id = new_trace_id()  # guarded-by: _lock
        self._remote_parent = 0  # cross-process parent span id  # guarded-by: _lock
        self._span_seq = 0  # span ids allocated so far  # guarded-by: _lock
        self._process_names: Dict[int, str] = {}  # guarded-by: _lock
        self._thread_names: Dict[Tuple[int, int], str] = {}  # guarded-by: _lock

    def span(self, name: str, **args: Any) -> _Span:
        return _Span(self, name, args or None)

    @property
    def trace_id(self) -> int:
        with self._lock:
            return self._trace_id

    def adopt_trace_id(self, trace_id: int) -> None:
        """Join a trace started elsewhere (a worker adopting the parent's
        id from an incoming BATCH frame).  Zero is ignored — untraced
        callers must not reset an adopted id."""
        if trace_id:
            with self._lock:
                self._trace_id = trace_id

    def set_remote_parent(self, parent_span_id: int) -> None:
        """Parent span id for subsequently *opened* spans whose caller is
        in another process.  Stamped on every recorded span until changed;
        zero clears it."""
        with self._lock:
            self._remote_parent = parent_span_id

    def set_process_name(self, pid: int, name: str) -> None:
        """Label a process lane in the exported trace (``M`` metadata)."""
        with self._lock:
            self._process_names[pid] = name

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        """Label a thread lane in the exported trace (``M`` metadata)."""
        with self._lock:
            self._thread_names[(pid, tid)] = name

    def _next_span_id(self) -> int:
        """Span ids unique across cooperating processes: pid in the high
        bits, a per-tracer counter in the low 24 (wrap is harmless — by
        then the early spans have long been overwritten in the ring)."""
        with self._lock:
            self._span_seq += 1
            return (self.pid << 24) | (self._span_seq & 0xFF_FFFF)

    def _record_closed(
        self,
        *,
        name: str,
        ts_ns: int,
        dur_ns: int,
        tid: int,
        args: Optional[Dict[str, Any]],
        span_id: int,
    ) -> None:
        """Close a locally opened span: stamp identity fields and store,
        all under one lock acquisition (trace id / remote parent / ring
        write must agree — two lock trips could interleave with an
        ``adopt_trace_id`` and mix ids within one record)."""
        with self._lock:
            record = SpanRecord(
                name=name,
                ts_ns=ts_ns,
                dur_ns=dur_ns,
                tid=tid,
                args=args,
                pid=self.pid,
                trace_id=self._trace_id,
                span_id=span_id,
                parent_id=self._remote_parent,
            )
            self._spans[self._next % self.capacity] = record
            self._next += 1

    def record(self, record: SpanRecord) -> None:
        """Merge an already-built record (a worker span shipped over the
        telemetry frame) into the ring as-is."""
        with self._lock:
            self._spans[self._next % self.capacity] = record
            self._next += 1

    def since(self, seen: int) -> Tuple[List[SpanRecord], int]:
        """Records closed after the first ``seen`` ever recorded, plus the
        new total — the incremental read the worker-side telemetry
        collector uses.  Records that overflowed the ring before being
        read are silently absent (the ``dropped`` counter owns honesty
        about that)."""
        records, total = self._ring_copy()
        fresh = total - seen
        if fresh <= 0:
            return [], total
        return records[-fresh:] if fresh < len(records) else records, total

    @property
    def recorded(self) -> int:
        """Total spans ever closed (including any since overwritten)."""
        with self._lock:
            return self._next

    @property
    def dropped(self) -> int:
        """Spans lost to ring overflow."""
        with self._lock:
            return max(0, self._next - self.capacity)

    def snapshot(self) -> List[SpanRecord]:
        """The retained spans, oldest first (a consistent copy)."""
        records, _ = self._ring_copy()
        return records

    def _ring_copy(self) -> Tuple[List[SpanRecord], int]:
        """(retained spans oldest-first, total ever recorded) from *one*
        lock acquisition — exporters need both to agree, and reading them
        via two separate properties is exactly the torn-read hazard RA203
        exists to flag."""
        records, total, _names, _threads, _tid = self._export_copy()
        return records, total

    def _export_copy(
        self,
    ) -> Tuple[List[SpanRecord], int, Dict[int, str], Dict[Tuple[int, int], str], int]:
        """Everything an exporter reads, copied in one lock acquisition:
        (spans oldest-first, total recorded, process lanes, thread lanes,
        trace id)."""
        with self._lock:
            total = self._next
            if total <= self.capacity:
                head = self._spans[:total]
            else:
                start = total % self.capacity
                head = self._spans[start:] + self._spans[:start]
            process_names = dict(self._process_names)
            thread_names = dict(self._thread_names)
            trace_id = self._trace_id
        records = [record for record in head if record is not None]
        return records, total, process_names, thread_names, trace_id

    def clear(self) -> None:
        with self._lock:
            self._spans = [None] * self.capacity
            self._next = 0

    def to_chrome_trace(self, *, pid: int = 1) -> Dict[str, Any]:
        records, total, process_names, thread_names, trace_id = (
            self._export_copy()
        )
        trace = to_chrome_trace(
            records,
            pid=pid,
            process_names=process_names,
            thread_names=thread_names,
        )
        trace["otherData"] = {
            "dropped_spans": max(0, total - self.capacity),
            "trace_id": trace_id,
        }
        return trace


def to_chrome_trace(
    spans: Sequence[SpanRecord],
    *,
    pid: int = 1,
    process_names: Optional[Dict[int, str]] = None,
    thread_names: Optional[Dict[Tuple[int, int], str]] = None,
) -> Dict[str, Any]:
    """Render spans as a Chrome ``trace_event`` document.

    Each span becomes one "X" (complete) event; timestamps and durations
    are microseconds, rebased so the earliest span starts at 0.  Records
    with ``pid == 0`` fall back to the ``pid`` argument, so single-process
    traces keep their historical shape.  ``process_names`` /
    ``thread_names`` become ``M`` (metadata) events, which trace viewers
    use to label per-process/per-thread lanes.
    """
    base_ns = min((record.ts_ns for record in spans), default=0)
    events: List[Dict[str, Any]] = []
    for record_pid, name in sorted((process_names or {}).items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": record_pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for (record_pid, tid), name in sorted((thread_names or {}).items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": record_pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for record in spans:
        event: Dict[str, Any] = {
            "name": record.name,
            "ph": "X",
            "ts": (record.ts_ns - base_ns) / 1_000.0,
            "dur": record.dur_ns / 1_000.0,
            "pid": record.pid or pid,
            "tid": record.tid,
        }
        args: Dict[str, Any] = dict(record.args) if record.args else {}
        if record.trace_id:
            args["trace_id"] = record.trace_id
        if record.span_id:
            args["span_id"] = record.span_id
        if record.parent_id:
            args["parent_id"] = record.parent_id
        if args:
            event["args"] = args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, source: "RingTracer | Sequence[SpanRecord]", *, pid: int = 1
) -> int:
    """Write a Chrome trace JSON file; returns the number of events."""
    if isinstance(source, RingTracer):
        trace = source.to_chrome_trace(pid=pid)
    else:
        trace = to_chrome_trace(source, pid=pid)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])
