"""Cross-process telemetry: worker-side collection, parent-side merge.

The shm transport's shard workers each run their own
:class:`~repro.runtime.metrics.MetricsRegistry` and
:class:`~repro.obs.tracing.RingTracer` (PR 10) — instruments are
process-local by construction, so nothing here shares memory.  Instead
the worker periodically *ships a delta*: spans closed since the last
ship, counter increments, gauge absolutes, and bucket-wise histogram
deltas, packed as one TELEMETRY frame
(:mod:`repro.runtime.transport.frames`).  The parent folds each payload
into its own registry and tracer, so ``/metrics``, ``repro stats`` and
the exported Chrome trace show one unified view.

Naming on merge: worker metric names that already embed their shard
(``obs/shard/3/band/headroom``) merge verbatim — they are globally
unique by construction.  Names that do not (``runtime/hotspot_promotions``,
``worker/e2e/ingest_to_apply_us``) gain a ``shard<N>/`` prefix so two
workers never collide on one parent instrument.

Deltas, not absolutes, for counters and histograms: the parent may also
increment the same merged name (it never does today, but addition makes
the merge idempotent-by-construction against that future); gauges are
point-in-time and merge last-writer-wins.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.tracing import RingTracer
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.transport.frames import HistogramDelta, TelemetryPayload

__all__ = [
    "TelemetryCollector",
    "merged_metric_name",
    "merge_telemetry",
]


def merged_metric_name(name: str, shard: int) -> str:
    """The parent-registry name for a worker metric.

    Names already scoped to the shard (any ``shard/<N>/`` path component)
    pass through unchanged; everything else gains a ``shard<N>/`` prefix.
    """
    if f"/shard/{shard}/" in f"/{name}":
        return name
    return f"shard{shard}/{name}"


class TelemetryCollector:
    """Worker-side incremental snapshotter: registry + tracer → payload.

    Each :meth:`collect` returns what changed since the previous call
    (first call: everything), advancing the collector's cursors.  Not
    thread-safe — the worker loop is single-threaded and owns it.
    """

    __slots__ = (
        "shard",
        "registry",
        "tracer",
        "_seen_spans",
        "_counter_prev",
        "_hist_count_prev",
        "_hist_sum_prev",
        "_hist_buckets_prev",
    )

    def __init__(
        self, shard: int, registry: MetricsRegistry, tracer: RingTracer
    ) -> None:
        self.shard = shard
        self.registry = registry
        self.tracer = tracer
        self._seen_spans = 0
        self._counter_prev: Dict[str, int] = {}
        self._hist_count_prev: Dict[str, int] = {}
        self._hist_sum_prev: Dict[str, float] = {}
        self._hist_buckets_prev: Dict[str, Dict[int, int]] = {}

    def collect(self) -> TelemetryPayload:
        """Everything recorded since the last collect, as one payload."""
        spans, total = self.tracer.since(self._seen_spans)
        self._seen_spans = total
        snap = self.registry.snapshot()
        counters: Dict[str, int] = {}
        for name, value in snap["counters"].items():
            delta = int(value) - self._counter_prev.get(name, 0)
            self._counter_prev[name] = int(value)
            if delta:
                counters[name] = delta
        gauges: Dict[str, float] = {
            name: float(value) for name, value in snap["gauges"].items()
        }
        histograms: Dict[str, HistogramDelta] = {}
        for name, hist in snap["histograms"].items():
            count = int(hist["count"])
            total_sum = float(hist["sum"])
            buckets: Dict[int, int] = {
                int(index): int(n) for index, n in hist["buckets"]
            }
            count_delta = count - self._hist_count_prev.get(name, 0)
            sum_delta = total_sum - self._hist_sum_prev.get(name, 0.0)
            prev_buckets = self._hist_buckets_prev.get(name, {})
            self._hist_count_prev[name] = count
            self._hist_sum_prev[name] = total_sum
            self._hist_buckets_prev[name] = buckets
            if count_delta <= 0:
                continue
            bucket_deltas: list[Tuple[int, int]] = sorted(
                (index, added)
                for index, n in buckets.items()
                if (added := n - prev_buckets.get(index, 0)) > 0
            )
            histograms[name] = HistogramDelta(
                count=count_delta,
                total=sum_delta,
                min_value=float(hist["min"]),
                max_value=float(hist["max"]),
                buckets=bucket_deltas,
            )
        return TelemetryPayload(
            pid=self.tracer.pid,
            shard=self.shard,
            trace_id=self.tracer.trace_id,
            spans_dropped=self.tracer.dropped,
            spans=list(spans),
            counters=counters,
            gauges=gauges,
            histograms=histograms,
        )


def merge_telemetry(
    registry: MetricsRegistry,
    tracer: Optional[RingTracer],
    payload: TelemetryPayload,
    *,
    process_name: Optional[str] = None,
) -> None:
    """Fold one worker payload into the parent's registry and tracer.

    ``tracer`` may be ``None`` (metrics-only deployments) — spans are then
    dropped on the floor, matching what an untraced parent would export.
    """
    shard = payload.shard
    if tracer is not None:
        tracer.set_process_name(
            payload.pid, process_name or f"shard{shard} worker (pid {payload.pid})"
        )
        for span in payload.spans:
            tracer.record(span)
    for name, delta in payload.counters.items():
        registry.counter(merged_metric_name(name, shard)).inc(delta)
    for name, value in payload.gauges.items():
        registry.gauge(merged_metric_name(name, shard)).set(value)
    for name, hist in payload.histograms.items():
        registry.histogram(merged_metric_name(name, shard)).merge_delta(
            count=hist.count,
            total=hist.total,
            min_value=hist.min_value,
            max_value=hist.max_value,
            buckets=hist.buckets,
        )
    registry.gauge(f"shard{shard}/obs/spans_dropped").set(payload.spans_dropped)
