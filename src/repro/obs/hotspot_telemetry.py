"""Hotspot telemetry: live visibility into the paper's I1-I3 behavior.

Three views, one per question an operator asks of the tracker:

* **churn** — :class:`HotspotChurnTelemetry` counts promotions, demotions
  and hot-item boundary traffic per plane (a thrashing tracker means
  alpha is mis-tuned for the workload);
* **reconstruction cost** — :class:`ReconstructionTelemetry` pairs the
  partition's rebuild-started/rebuilt callbacks into a duration histogram
  and a ``partition.rebuild`` span, so lazy/refined reconstruction
  stalls show up in traces and percentiles;
* **headroom** — :func:`hotspot_headroom` samples the invariant I2 slack:
  how far the maintained group count sits below its
  ``(1 + eps) * tau + 2/alpha`` budget.  Sampling recomputes ``tau`` by a
  full greedy sweep (O(n log n)), so it runs on the reporting interval,
  never per event.

:class:`HotspotTelemetry` bundles all three behind one ``attach(tracker,
plane)`` call; the runtime attaches it per shard plane
(``shard/0/band``, ``shard/0/select``, ...).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, ContextManager, List, Optional, Tuple

from repro.core.hotspot_tracker import HotspotTracker
from repro.core.partition_base import DynamicStabbingPartitionBase, StabbingGroupView
from repro.core.stabbing import stabbing_number
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.runtime.metrics import MetricsRegistry

__all__ = [
    "HeadroomSample",
    "HotspotChurnTelemetry",
    "ReconstructionTelemetry",
    "HotspotTelemetry",
    "hotspot_headroom",
]


@dataclass(frozen=True, slots=True)
class HeadroomSample:
    """One point-in-time reading of the invariant I2 budget for a plane."""

    plane: str
    items: int
    groups: int
    hot_groups: int
    scattered_groups: int
    tau: int
    bound: float  # (1 + eps) * tau + 2 / alpha
    headroom: float  # bound - groups (>= 0 while I2 holds)
    coverage: float  # fraction of items in hotspot groups


class HotspotChurnTelemetry:
    """A :class:`HotspotListener` recording boundary churn per plane."""

    __slots__ = (
        "_promotions",
        "_demotions",
        "_hot_items_added",
        "_hot_items_removed",
        "_promoted_size",
    )

    def __init__(self, registry: MetricsRegistry, plane: str) -> None:
        prefix = f"obs/{plane}"
        self._promotions = registry.counter(f"{prefix}/promotions")
        self._demotions = registry.counter(f"{prefix}/demotions")
        self._hot_items_added = registry.counter(f"{prefix}/hot_items_added")
        self._hot_items_removed = registry.counter(f"{prefix}/hot_items_removed")
        self._promoted_size = registry.histogram(f"{prefix}/promoted_group_size")

    def on_promoted(self, group: Any) -> None:
        self._promotions.inc()
        self._promoted_size.observe(group.size)

    def on_demoted(self, group: Any) -> None:
        self._demotions.inc()

    def on_hot_item_added(self, group: Any, item: Any) -> None:
        self._hot_items_added.inc()

    def on_hot_item_removed(self, group: Any, item: Any) -> None:
        self._hot_items_removed.inc()


class ReconstructionTelemetry:
    """A :class:`PartitionListener` timing reconstruction stages.

    The partition fires ``on_rebuild_started`` just before it recomputes
    the canonical partition and ``on_rebuilt`` once the new groups are
    installed; the window between the two is the full reconstruction cost
    (sweep + install + listener resync happens after, by callback order).
    Durations land in an ``obs/<plane>/reconstruction_us`` histogram and,
    when a recording tracer is attached, a ``partition.rebuild`` span.
    """

    __slots__ = ("_durations", "_count", "_tracer", "_plane", "_started_ns", "_span")

    def __init__(
        self, registry: MetricsRegistry, plane: str, tracer: Tracer = NULL_TRACER
    ) -> None:
        prefix = f"obs/{plane}"
        self._durations = registry.histogram(f"{prefix}/reconstruction_us")
        self._count = registry.counter(f"{prefix}/reconstructions")
        self._tracer = tracer
        self._plane = plane
        self._started_ns: Optional[int] = None
        self._span: Optional[ContextManager[Any]] = None

    # Per-item callbacks are irrelevant here.

    def on_group_created(self, group: StabbingGroupView[Any]) -> None:
        pass

    def on_group_destroyed(self, group: StabbingGroupView[Any]) -> None:
        pass

    def on_item_added(self, group: StabbingGroupView[Any], item: Any) -> None:
        pass

    def on_item_removed(self, group: StabbingGroupView[Any], item: Any) -> None:
        pass

    def on_rebuild_started(self, partition: DynamicStabbingPartitionBase[Any]) -> None:
        # Monotonic clock; instrumentation only (see MONOTONIC_CLOCK_SCOPE).
        self._started_ns = time.perf_counter_ns()
        span = self._tracer.span(
            "partition.rebuild", plane=self._plane, items=partition.total_items()
        )
        span.__enter__()
        self._span = span

    def on_rebuilt(self, partition: DynamicStabbingPartitionBase[Any]) -> None:
        if self._span is not None:
            self._span.__exit__(None, None, None)
            self._span = None
        if self._started_ns is None:
            return  # rebuild without a start marker (e.g. initial install)
        elapsed_us = (time.perf_counter_ns() - self._started_ns) / 1_000.0
        self._started_ns = None
        self._durations.observe(elapsed_us)
        self._count.inc()


def hotspot_headroom(
    tracker: HotspotTracker[Any], *, plane: str = ""
) -> HeadroomSample:
    """Sample the I2 budget of one tracker (full tau sweep; O(n log n))."""
    hot = tracker.hotspot_groups
    scattered = tracker.scattered
    all_items: List[Any] = [item for group in hot for item in group]
    for group in scattered.groups:
        all_items.extend(group)
    tau = stabbing_number(all_items, tracker.interval_of)
    epsilon = getattr(scattered, "epsilon", 1.0)
    hot_groups = len(hot)
    scattered_groups = len(scattered)
    groups = hot_groups + scattered_groups
    bound = (1.0 + epsilon) * tau + 2.0 / tracker.alpha
    return HeadroomSample(
        plane=plane,
        items=len(all_items),
        groups=groups,
        hot_groups=hot_groups,
        scattered_groups=scattered_groups,
        tau=tau,
        bound=bound,
        headroom=bound - groups,
        coverage=tracker.hotspot_coverage,
    )


class HotspotTelemetry:
    """One attach point per shard: listeners plus on-demand headroom gauges.

    ``attach`` wires churn and reconstruction listeners into a tracker's
    planes; ``sample`` recomputes each attached plane's headroom and
    publishes it as ``obs/<plane>/{groups,tau,headroom,hotspot_coverage}``
    gauges (called on the reporting interval — the sweep is O(n log n)).
    """

    __slots__ = ("registry", "tracer", "_planes")

    def __init__(
        self, registry: MetricsRegistry, tracer: Tracer = NULL_TRACER
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self._planes: List[Tuple[str, HotspotTracker[Any]]] = []

    def attach(self, tracker: HotspotTracker[Any], plane: str) -> None:
        tracker.add_listener(HotspotChurnTelemetry(self.registry, plane))
        tracker.scattered.add_listener(
            ReconstructionTelemetry(self.registry, plane, self.tracer)
        )
        self._planes.append((plane, tracker))

    def sample(self) -> List[HeadroomSample]:
        samples: List[HeadroomSample] = []
        for plane, tracker in self._planes:
            sample = hotspot_headroom(tracker, plane=plane)
            prefix = f"obs/{plane}"
            self.registry.gauge(f"{prefix}/groups").set(sample.groups)
            self.registry.gauge(f"{prefix}/tau").set(sample.tau)
            self.registry.gauge(f"{prefix}/headroom").set(sample.headroom)
            self.registry.gauge(f"{prefix}/hotspot_coverage").set(sample.coverage)
            samples.append(sample)
        return samples
