"""`repro top`: a refreshing terminal dashboard over the metrics stream.

Pure functions over snapshot records plus one small refresh loop —
nothing here talks to a pipeline directly.  A *record* is one entry of
the JSONL snapshot stream (``{"seq", "uptime_us", "metrics": {...}}``);
the URL fetcher wraps a ``/metrics.json`` response in the same shape so
both sources feed the same renderer.  Rates (throughput, churn) come
from differencing two consecutive records, so the first frame of a
session shows absolutes only.

Shared with ``repro stats --watch``: both verbs loop
:func:`watch` over a fetcher; ``top`` renders :func:`render_dashboard`,
``stats --watch`` renders the classic full snapshot.

Clocking: the loop and the rate math use ``time.monotonic`` only (this
package is on the RA001 determinism plane — wall clocks are banned, and
a dashboard needs durations, not dates).
"""

from __future__ import annotations

import json
import re
import time
import urllib.request
from typing import Any, Callable, Dict, List, Optional

from repro.obs.export import estimate_quantiles, latest_snapshot

__all__ = [
    "fetch_record_from_jsonl",
    "fetch_record_from_url",
    "shard_indices",
    "render_dashboard",
    "watch",
    "CLEAR_SCREEN",
]

#: ANSI: clear screen + home cursor, the classic ``top`` refresh.
CLEAR_SCREEN = "\x1b[2J\x1b[H"

_SHARD_PATTERNS = (
    re.compile(r"^shard/(\d+)/"),
    re.compile(r"^shard(\d+)/"),
    re.compile(r"^obs/shard/(\d+)/"),
    re.compile(r"^transport/ring/(\d+)/"),
)


def fetch_record_from_jsonl(path: str) -> Dict[str, Any]:
    """The newest record of a snapshot stream (rotation-aware)."""
    return latest_snapshot(path)


def fetch_record_from_url(url: str, *, timeout: float = 5.0) -> Dict[str, Any]:
    """One live snapshot from a :class:`MetricsServer`, as a record.

    Accepts the server base URL or the ``/metrics.json`` route itself;
    ``seq``/``uptime_us`` are absent — the caller's monotonic fetch times
    drive rate math instead.
    """
    target = url.rstrip("/")
    if not target.endswith("/metrics.json"):
        target += "/metrics.json"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        snapshot = json.loads(response.read().decode("utf-8"))
    return {"metrics": snapshot}


def shard_indices(metrics: Dict[str, Any]) -> List[int]:
    """Every shard index any instrument name mentions, ascending."""
    found = set()
    for section in ("counters", "gauges", "histograms"):
        for name in metrics.get(section, {}):
            for pattern in _SHARD_PATTERNS:
                match = pattern.match(name)
                if match:
                    found.add(int(match.group(1)))
    return sorted(found)


def _counter(metrics: Dict[str, Any], name: str) -> int:
    return int(metrics.get("counters", {}).get(name, 0))


def _gauge(metrics: Dict[str, Any], name: str) -> Optional[float]:
    value = metrics.get("gauges", {}).get(name)
    return None if value is None else float(value)


def _histogram(metrics: Dict[str, Any], name: str) -> Optional[Dict[str, Any]]:
    hist = metrics.get("histograms", {}).get(name)
    return hist if hist and int(hist.get("count", 0)) > 0 else None


def _sum_counters(metrics: Dict[str, Any], suffix: str, prefix: str = "obs/") -> int:
    return sum(
        int(value)
        for name, value in metrics.get("counters", {}).items()
        if name.startswith(prefix) and name.endswith(suffix)
    )


def _rate(
    current: int, previous: Optional[int], elapsed_s: Optional[float]
) -> Optional[float]:
    if previous is None or elapsed_s is None or elapsed_s <= 0:
        return None
    return (current - previous) / elapsed_s


def _elapsed_seconds(
    record: Dict[str, Any], previous: Optional[Dict[str, Any]]
) -> Optional[float]:
    """Wall-free elapsed time between two records: prefer the stream's
    ``uptime_us``, fall back to fetch-time stamps the watch loop adds."""
    if previous is None:
        return None
    for key, scale in (("uptime_us", 1e6), ("_fetched_at_ns", 1e9)):
        now, then = record.get(key), previous.get(key)
        if now is not None and then is not None and now > then:
            return (float(now) - float(then)) / scale
    return None


def _fmt(value: Optional[float], *, digits: int = 1) -> str:
    if value is None:
        return "-"
    return f"{value:,.{digits}f}"


def _e2e_cell(metrics: Dict[str, Any], name: str) -> str:
    hist = _histogram(metrics, name)
    if hist is None:
        return "-"
    quantiles = estimate_quantiles(hist)
    return f"{quantiles['p95']:,.0f}"


def render_dashboard(
    record: Dict[str, Any], previous: Optional[Dict[str, Any]] = None
) -> str:
    """One dashboard frame: throughput, e2e latency, churn, shard table."""
    metrics: Dict[str, Any] = record.get("metrics", {})
    elapsed = _elapsed_seconds(record, previous)
    prev_metrics: Dict[str, Any] = (previous or {}).get("metrics", {})
    lines: List[str] = []

    header = "repro top"
    if "seq" in record:
        header += f" — snapshot #{record['seq']}"
    if "uptime_us" in record:
        header += f" — uptime {float(record['uptime_us']) / 1e6:,.1f}s"
    lines.append(header)

    applied = _counter(metrics, "pipeline/events_applied")
    results = _counter(metrics, "pipeline/results_produced")
    throughput = _rate(
        applied,
        _counter(prev_metrics, "pipeline/events_applied") if previous else None,
        elapsed,
    )
    lines.append(
        f"throughput: {_fmt(throughput)} ev/s   "
        f"applied {applied:,}   results {results:,}   "
        f"batches {_counter(metrics, 'pipeline/batches'):,}"
    )

    e2e = _histogram(metrics, "pipeline/e2e_us")
    if e2e is not None:
        quantiles = estimate_quantiles(e2e)
        lines.append(
            "e2e latency (us): "
            f"p50 {quantiles['p50']:,.1f}  p95 {quantiles['p95']:,.1f}  "
            f"p99 {quantiles['p99']:,.1f}  max {float(e2e['max']):,.0f}  "
            f"(n={int(e2e['count']):,})"
        )
    else:
        lines.append("e2e latency (us): (no samples yet)")

    promotions = _sum_counters(metrics, "/promotions")
    demotions = _sum_counters(metrics, "/demotions")
    churn_rate = _rate(
        promotions + demotions,
        (
            _sum_counters(prev_metrics, "/promotions")
            + _sum_counters(prev_metrics, "/demotions")
        )
        if previous
        else None,
        elapsed,
    )
    lines.append(
        f"hotspot churn: {promotions:,} promotions  {demotions:,} demotions"
        f"   rate {_fmt(churn_rate)}/s"
    )

    indices = shard_indices(metrics)
    if indices:
        lines.append("shards:")
        lines.append(
            "  shard  events      e2e p95    lag p95    ring rq/rs      "
            "headroom b/s"
        )
        for index in indices:
            events = _counter(metrics, f"shard/{index}/events")
            e2e_cell = _e2e_cell(metrics, f"shard/{index}/e2e_us")
            # Worker-side apply lag (merged over the shm telemetry path);
            # inline/thread modes have no worker registry, hence "-".
            lag_cell = _e2e_cell(
                metrics, f"shard{index}/worker/e2e/ingest_to_apply_us"
            )
            ring_rq = _gauge(metrics, f"transport/ring/{index}/request_bytes")
            ring_rs = _gauge(metrics, f"transport/ring/{index}/response_bytes")
            ring_cell = (
                f"{ring_rq:,.0f}/{ring_rs:,.0f}"
                if ring_rq is not None and ring_rs is not None
                else "-"
            )
            band = _gauge(metrics, f"obs/shard/{index}/band/headroom")
            select = _gauge(metrics, f"obs/shard/{index}/select/headroom")
            headroom_cell = (
                f"{_fmt(band)}/{_fmt(select)}"
                if band is not None or select is not None
                else "-"
            )
            lines.append(
                f"  {index:<5}  {events:<10,}  {e2e_cell:<9}  {lag_cell:<9}"
                f"  {ring_cell:<14}  {headroom_cell}"
            )
    dropped = record.get("spans_dropped")
    if dropped:
        lines.append(f"warning: {int(dropped):,} tracing spans dropped")
    return "\n".join(lines)


def watch(
    fetch: Callable[[], Dict[str, Any]],
    render: Callable[[Dict[str, Any], Optional[Dict[str, Any]]], str],
    *,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    out: Callable[[str], None] = print,
    clear: bool = True,
) -> int:
    """Fetch → render → sleep, until ``iterations`` frames (None = forever,
    stop with Ctrl-C).  Returns the number of frames rendered.  A fetch
    error renders as a one-line frame rather than killing the loop — the
    stream may simply not have its first record yet.
    """
    frames = 0
    previous: Optional[Dict[str, Any]] = None
    while iterations is None or frames < iterations:
        try:
            try:
                record = fetch()
                record["_fetched_at_ns"] = time.monotonic_ns()
            except (OSError, ValueError) as exc:
                out(f"(waiting for metrics: {exc})")
                record = None
            if record is not None:
                frame = render(record, previous)
                out(CLEAR_SCREEN + frame if clear else frame)
                previous = record
        except BrokenPipeError:  # downstream pager/head closed — clean stop
            break
        frames += 1
        if iterations is not None and frames >= iterations:
            break
        try:
            time.sleep(max(0.0, interval))
        except KeyboardInterrupt:  # pragma: no cover — interactive exit
            break
    return frames
