"""Metric exposition: Prometheus text, JSONL snapshots, HTTP endpoint.

Everything here consumes the plain-dict output of
:meth:`repro.runtime.metrics.MetricsRegistry.snapshot` — the exporters
never hold references to live instruments, so a snapshot taken under the
registry's locks can be rendered, written, or served without further
synchronization.

Quantiles: the runtime's histograms are power-of-two bucketed (bucket 0
is ``[0, 1)``, bucket ``i`` is ``[2**(i-1), 2**i)``).  The histogram's own
``p50``/``p99`` report the *upper* bucket bound (never underestimates —
the right bias for "did latency explode" alerts).  Exposition wants a
point estimate instead, so :func:`estimate_quantile` interpolates the
requested rank's position inside its bucket; the estimate always lands
strictly inside the true bucket's ``[lo, hi)`` range (property-tested in
``tests/test_metrics_properties.py``).

The JSONL snapshot stream (one JSON object per line, ``seq`` strictly
increasing) is what ``repro serve --snapshot-out`` appends and
``repro stats --jsonl`` reads back.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.tracing import RingTracer
from repro.runtime.metrics import MetricsRegistry, N_HISTOGRAM_BUCKETS

__all__ = [
    "EXPORT_QUANTILES",
    "bucket_bounds",
    "estimate_quantile",
    "estimate_quantiles",
    "metric_help",
    "render_prometheus",
    "render_snapshot",
    "SnapshotWriter",
    "read_snapshots",
    "latest_snapshot",
    "MetricsServer",
]

#: The quantiles every exposition surface reports for histograms.
EXPORT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def bucket_bounds(index: int) -> Tuple[float, float]:
    """The ``[lo, hi)`` range of log2 bucket ``index``.

    Bucket 0 holds ``[0, 1)``; bucket ``i >= 1`` holds ``[2**(i-1), 2**i)``.
    The last bucket saturates, so its upper bound is infinite.
    """
    if not 0 <= index < N_HISTOGRAM_BUCKETS:
        raise ValueError(f"bucket index out of range: {index}")
    lo = 0.0 if index == 0 else float(2 ** (index - 1))
    hi = float("inf") if index == N_HISTOGRAM_BUCKETS - 1 else float(2**index)
    return lo, hi


def estimate_quantile(
    buckets: Sequence[Sequence[int]], count: int, q: float
) -> float:
    """Interpolated ``q``-quantile from nonzero ``(index, count)`` pairs.

    ``buckets`` is the ``"buckets"`` entry of a histogram snapshot:
    ascending bucket indices with their counts.  The rank's offset within
    its bucket is placed at the midpoint of its within-bucket slot
    (``(rank - seen - 0.5) / n``), so the estimate is strictly inside the
    bucket's ``[lo, hi)`` range whenever the bucket is bounded.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if count <= 0:
        return 0.0
    rank = max(1, math.ceil(q * count))
    seen = 0
    for index, n in buckets:
        if n and seen + n >= rank:
            lo, hi = bucket_bounds(index)
            if math.isinf(hi):
                return lo  # saturated top bucket: no width to interpolate
            return lo + (hi - lo) * ((rank - seen - 0.5) / n)
        seen += n
    raise ValueError("bucket counts inconsistent with count")


def estimate_quantiles(histogram_snapshot: Dict[str, Any]) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for one histogram snapshot."""
    buckets = histogram_snapshot.get("buckets", [])
    count = int(histogram_snapshot.get("count", 0))
    return {
        f"p{int(q * 100)}": estimate_quantile(buckets, count, q)
        for q in EXPORT_QUANTILES
    }


# -- Prometheus text exposition ----------------------------------------------


def sanitize_metric_name(name: str, *, prefix: str = "repro") -> str:
    """Slash-path metric name -> Prometheus-legal ``prefix_a_b_c``."""
    cleaned = "".join(
        ch if ch.isascii() and (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    full = f"{prefix}_{cleaned}" if prefix else cleaned
    if full and full[0].isdigit():
        full = "_" + full
    return full


#: First matching substring wins; checked in order, so put the most
#: specific pattern first.  Fallback is a generic per-kind line — every
#: instrument gets *some* ``# HELP``, Prometheus hygiene over prose.
_HELP_RULES: Tuple[Tuple[str, str], ...] = (
    ("e2e_us", "End-to-end latency from ingress to delta emission, microseconds."),
    ("ingest_to_apply_us", "Latency from parent-side ingress to worker-side apply, microseconds."),
    ("batch_us", "Per-shard batch application time, microseconds."),
    ("encode_us", "Transport frame encode time per batch, microseconds."),
    ("decode_us", "Transport frame decode time per response, microseconds."),
    ("bytes_out", "Bytes sent to shard workers over the shm transport."),
    ("bytes_in", "Bytes received from shard workers over the shm transport."),
    ("request_bytes", "Request ring occupancy after the last send, bytes."),
    ("response_bytes", "Response ring occupancy after the last receive, bytes."),
    ("reconstruction_us", "Hotspot partition reconstruction duration, microseconds."),
    ("reconstructions", "Hotspot partition reconstructions completed."),
    ("promoted_group_size", "Size of groups at hotspot promotion."),
    ("promotions", "Groups promoted to hotspot status."),
    ("demotions", "Groups demoted from hotspot status."),
    ("hot_items_added", "Items added to hotspot groups."),
    ("hot_items_removed", "Items removed from hotspot groups."),
    ("hotspot_coverage", "Fraction of items covered by hotspot groups."),
    ("headroom", "Invariant I2 slack: (1+eps)*tau + 2/alpha minus live groups."),
    ("groups", "Live partition groups (hotspot + scattered)."),
    ("tau", "Current stabbing number tau of the plane's intervals."),
    ("spans_dropped", "Tracing spans lost to ring-buffer overflow."),
    ("queue_depth", "Pending events in the ingress micro-batcher."),
    ("batch_size", "Events per flushed micro-batch."),
    ("batches", "Micro-batches flushed."),
    ("backpressure_blocks", "Submissions that blocked on a full ingress queue."),
    ("events_submitted", "Events accepted by submit()."),
    ("events_applied", "Events applied to shards."),
    ("events_dropped", "Events evicted by the drop-oldest backpressure policy."),
    ("events_rejected", "Events refused by the reject backpressure policy."),
    ("results_produced", "Delta rows delivered to subscriptions."),
    ("query_events", "Subscription changes processed."),
    ("events", "Events routed to this shard."),
)


def metric_help(name: str, kind: str = "metric") -> str:
    """One-line ``# HELP`` text for a metric name (original slash-path
    form, not the sanitized one)."""
    for pattern, text in _HELP_RULES:
        if pattern in name:
            return text
    return f"Repro runtime {kind} {name}."


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    snapshot: Dict[str, Dict[str, Any]], *, prefix: str = "repro"
) -> str:
    """Registry snapshot -> Prometheus text exposition format.

    Counters become ``<name>_total``; histograms become summaries
    (``{quantile="0.5"}`` sample lines from the interpolated estimator,
    plus ``_sum``/``_count``).  Every instrument gets ``# HELP`` and
    ``# TYPE`` lines, in that order, as the exposition format specifies.
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = sanitize_metric_name(name, prefix=prefix)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# HELP {metric} {metric_help(name, 'counter')}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(float(value))}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = sanitize_metric_name(name, prefix=prefix)
        lines.append(f"# HELP {metric} {metric_help(name, 'gauge')}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(float(value))}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        metric = sanitize_metric_name(name, prefix=prefix)
        lines.append(f"# HELP {metric} {metric_help(name, 'histogram')}")
        lines.append(f"# TYPE {metric} summary")
        for label, estimate in sorted(estimate_quantiles(hist).items()):
            q = int(label[1:]) / 100.0
            lines.append(f'{metric}{{quantile="{q:g}"}} {_format_value(estimate)}')
        lines.append(f"{metric}_sum {_format_value(float(hist['sum']))}")
        lines.append(f"{metric}_count {_format_value(float(hist['count']))}")
    return "\n".join(lines) + "\n" if lines else ""


def render_snapshot(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Aligned human-readable rendering of a registry snapshot dict.

    Mirrors :meth:`MetricsRegistry.render` but works on exported data (a
    parsed JSONL record), adding the interpolated p95 the live renderer
    omits.
    """
    lines: List[str] = []
    counters = sorted(snapshot.get("counters", {}).items())
    gauges = sorted(snapshot.get("gauges", {}).items())
    histograms = sorted(snapshot.get("histograms", {}).items())
    if counters:
        lines.append("counters:")
        width = max(len(name) for name, __ in counters)
        for name, value in counters:
            lines.append(f"  {name:<{width}}  {int(value):>12,}")
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name, __ in gauges)
        for name, value in gauges:
            lines.append(f"  {name:<{width}}  {float(value):>12,.1f}")
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name, __ in histograms)
        for name, hist in histograms:
            quantiles = estimate_quantiles(hist)
            lines.append(
                f"  {name:<{width}}  count={hist['count']:<8,}"
                f" mean={hist['mean']:<10.1f}"
                f" p50={quantiles['p50']:<10.1f}"
                f" p95={quantiles['p95']:<10.1f}"
                f" p99={quantiles['p99']:<10.1f}"
                f" max={hist['max']:,.0f}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


# -- JSONL snapshot stream ---------------------------------------------------


class SnapshotWriter:
    """Appends periodic registry snapshots to a JSONL file.

    One JSON object per line: ``{"seq": k, "uptime_us": ..., "metrics":
    {...}}`` plus any extras the caller attaches (the serve loop adds
    hotspot headroom samples and span-drop counts).  ``uptime_us`` is
    monotonic-clock process uptime since the writer was created —
    forensics only, nothing replays from it.

    ``max_bytes`` bounds disk for long serve runs by size-based rotation:
    when an append pushes the file past the limit, it is renamed to
    ``<path>.1`` (replacing any previous rotation) and writing restarts
    on a fresh file — at most ``~2 * max_bytes`` on disk, with ``seq``
    still strictly increasing across the pair.  :func:`read_snapshots`
    reads the rotated file first, so consumers see one ordered stream.
    """

    __slots__ = ("path", "max_bytes", "rotations", "_seq", "_start_ns")

    def __init__(self, path: str, *, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.path = path
        self.max_bytes = max_bytes
        self.rotations = 0
        self._seq = 0
        self._start_ns = time.perf_counter_ns()
        # Truncate: a snapshot stream documents one serve run.
        with open(self.path, "w", encoding="utf-8"):
            pass

    def write(
        self,
        registry: MetricsRegistry,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "seq": self._seq,
            "uptime_us": (time.perf_counter_ns() - self._start_ns) // 1_000,
            "metrics": registry.snapshot(),
        }
        if extra:
            record.update(extra)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            size = handle.tell()
        self._seq += 1
        if self.max_bytes is not None and size > self.max_bytes:
            # Rotate whole records only — the freshly written line rolls
            # into ``.1`` with everything before it.
            os.replace(self.path, self.path + ".1")
            self.rotations += 1
            with open(self.path, "w", encoding="utf-8"):
                pass
        return record


def read_snapshots(path: str) -> List[Dict[str, Any]]:
    """Parse every record of a JSONL snapshot stream.

    Reads the writer's rotation pair: ``<path>.1`` (older records, if a
    rotation happened) followed by ``<path>`` itself, yielding one
    seq-ordered stream.
    """
    records: List[Dict[str, Any]] = []
    for candidate in (path + ".1", path):
        if candidate.endswith(".1") and not os.path.exists(candidate):
            continue
        with open(candidate, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{candidate}:{line_no}: invalid snapshot record: {exc}"
                    )
    return records


def latest_snapshot(path: str) -> Dict[str, Any]:
    """The last record of a JSONL snapshot stream (highest ``seq``)."""
    records = read_snapshots(path)
    if not records:
        raise ValueError(f"{path}: no snapshots recorded")
    return max(records, key=lambda record: int(record.get("seq", -1)))


# -- HTTP endpoint -----------------------------------------------------------


class MetricsServer:
    """Serves live metrics over HTTP on a background thread.

    Routes: ``/metrics`` (Prometheus text), ``/metrics.json`` (the raw
    snapshot dict), and — when a :class:`RingTracer` is attached —
    ``/trace.json`` (Chrome trace of the spans currently retained).
    Binding ``port=0`` picks an ephemeral port (see :attr:`port`).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        tracer: Optional[RingTracer] = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:
                if self.path in ("/", "/metrics"):
                    body = render_prometheus(server.registry.snapshot()).encode()
                    self._reply(body, "text/plain; version=0.0.4; charset=utf-8")
                elif self.path == "/metrics.json":
                    body = json.dumps(server.registry.snapshot(), sort_keys=True).encode()
                    self._reply(body, "application/json")
                elif self.path == "/trace.json" and server.tracer is not None:
                    body = json.dumps(server.tracer.to_chrome_trace()).encode()
                    self._reply(body, "application/json")
                else:
                    self.send_error(404)

            def _reply(self, body: bytes, content_type: str) -> None:
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: Any) -> None:
                pass  # keep the serve console clean

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
