"""Error metrics for interval histograms (Section 3.3 / Figure 12).

Two views of histogram quality:

* :func:`mean_squared_relative_error` — the analytic objective
  E^2(h, f) = integral of |h - f|^2 / |f|^2 * phi(x) dx that OPTIMAL
  minimizes and SSI-HIST approximates (denominators are clamped at 1 where
  f vanishes, matching the builders' weights);
* :func:`average_relative_error` — the empirical measurement of Figure 12:
  the mean relative error of estimated vs true stabbing counts over a set
  of query points.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.histogram.frequency import Density, IntervalFrequency
from repro.histogram.step import StepFunction


def mean_squared_relative_error(
    histogram: StepFunction,
    frequency: IntervalFrequency,
    phi: Optional[Density] = None,
) -> float:
    """E^2(h, f_I): phi-weighted mean squared relative error."""
    phi = phi if phi is not None else Density.uniform_over(frequency)
    f = frequency.step_function()
    points = sorted(
        set(f.boundaries)
        | set(histogram.boundaries)
        | {phi.lo, phi.hi}
    )
    total = 0.0
    for a, b in zip(points, points[1:]):
        mass = phi.mass(a, b)
        if mass == 0.0:
            continue
        mid = (a + b) / 2.0
        true = f(mid)
        est = histogram(mid)
        total += mass * (est - true) ** 2 / max(true, 1.0) ** 2
    return total


def average_relative_error(
    histogram: StepFunction,
    frequency: IntervalFrequency,
    points: Sequence[float],
) -> float:
    """Mean of |h(x) - f(x)| / f(x) over query points (Figure 12's metric);
    points where f vanishes are measured against a count of 1."""
    if not points:
        raise ValueError("need at least one query point")
    total = 0.0
    for x in points:
        true = frequency.count(x)
        est = histogram(x)
        total += abs(est - true) / max(true, 1.0)
    return total / len(points)
