"""Histogram construction for interval stabbing counts (Section 3.3).

Three builders over the same frequency function f_I and density phi:

* :func:`equal_width_histogram` (EQW-HIST) — the standard baseline: equal
  x-width buckets, each holding the phi-weighted mean of f over the bucket.
* :func:`optimal_histogram` (OPTIMAL) — dynamic program minimizing the
  mean-squared relative error with bucket boundaries on the break points of
  f (justified by Lemma 4).  Polynomial but slow --- the paper reports 6.5
  hours on a 10k-interval sample; ``max_segments`` coarsens the break-point
  set first so the DP stays tractable at benchmark scale.
* :func:`ssi_histogram` (SSI-HIST) — the paper's contribution: canonical
  stabbing partition, per-group monotone sides split at the stabbing point,
  weighted 1-D k-means per side (Lemma 5), buckets allocated to groups
  proportionally to their cardinality, final histogram the sum of the group
  histograms.  Near-linear time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.intervals import Interval
from repro.core.stabbing import StabbingGroup, canonical_stabbing_partition
from repro.histogram.frequency import Density, IntervalFrequency
from repro.histogram.kmeans import (
    KMeansResult,
    agglomerate_segments,
    contiguous_partition_dp,
    kmeans_1d_dp,
    kmeans_1d_lloyd,
)
from repro.histogram.step import StepFunction


def _relative_weight(phi_mass: float, y: float) -> float:
    """u_l = w_l / |y_l|^2, guarding y = 0 (relative error of an empty
    region is measured against a count of 1)."""
    return phi_mass / max(y, 1.0) ** 2


def _absolute_weight(phi_mass: float, y: float) -> float:
    """u_l = w_l: plain V-optimal weighting (absolute squared error)."""
    return phi_mass


def _weight_fn(objective: str):
    if objective == "relative":
        return _relative_weight
    if objective == "absolute":
        return _absolute_weight
    raise ValueError(f"unknown objective {objective!r}")


def _weighted_objective_mean(
    f: StepFunction, phi: Density, lo: float, hi: float, weight_fn=_relative_weight
) -> float:
    """argmin_c of sum u_l (y_l - c)^2 over the pieces of f in [lo, hi]
    under the chosen weighting --- the optimal single-bucket constant."""
    num = 0.0
    den = 0.0

    def piece(a: float, b: float, value: float) -> float:
        nonlocal num, den
        u = weight_fn(phi.mass(a, b), value)
        num += u * value
        den += u
        return 0.0

    f.integrate(piece, lo, hi)
    if den > 0.0:
        return num / den
    return _phi_weighted_mean(f, phi, lo, hi)


def _phi_weighted_mean(f: StepFunction, phi: Density, lo: float, hi: float) -> float:
    mass = 0.0
    acc = 0.0

    def piece(a: float, b: float, value: float) -> float:
        nonlocal mass, acc
        m = phi.mass(a, b)
        mass += m
        acc += m * value
        return 0.0

    f.integrate(piece, lo, hi)
    if mass > 0.0:
        return acc / mass
    # No phi mass in the bucket: fall back to the unweighted length average.
    length = 0.0
    acc = 0.0

    def piece2(a: float, b: float, value: float) -> float:
        nonlocal length, acc
        length += b - a
        acc += (b - a) * value
        return 0.0

    f.integrate(piece2, lo, hi)
    return acc / length if length > 0 else 0.0


def equal_width_histogram(
    frequency: IntervalFrequency,
    buckets: int,
    phi: Optional[Density] = None,
) -> StepFunction:
    """EQW-HIST: equal-width buckets over the domain of f_I."""
    if buckets < 1:
        raise ValueError("need at least one bucket")
    phi = phi if phi is not None else Density.uniform_over(frequency)
    lo, hi = frequency.domain
    f = frequency.step_function()
    edges = [lo + (hi - lo) * i / buckets for i in range(buckets + 1)]
    values = [
        _phi_weighted_mean(f, phi, a, b) for a, b in zip(edges, edges[1:])
    ]
    return StepFunction(tuple(edges), tuple(values))


def optimal_histogram(
    frequency: IntervalFrequency,
    buckets: int,
    phi: Optional[Density] = None,
    *,
    max_segments: int = 600,
) -> StepFunction:
    """OPTIMAL: DP-optimal relative-error histogram on f's break points.

    When f has more than ``max_segments`` pieces, adjacent pieces are first
    merged bottom-up by least objective-cost increase (value-aware, so
    spikes survive) --- the analogue of the sampling the paper had to apply
    to make its 6.5-hour DP runnable.  With enough segments the result is
    exactly optimal per Lemma 4.
    """
    if buckets < 1:
        raise ValueError("need at least one bucket")
    phi = phi if phi is not None else Density.uniform_over(frequency)
    f = frequency.step_function()
    bounds = list(f.boundaries)
    values = list(f.values)
    weights = [
        _relative_weight(phi.mass(a, b), y)
        for a, b, y in zip(bounds, bounds[1:], values)
    ]
    values, weights, cuts = agglomerate_segments(values, weights, max_segments)
    result = contiguous_partition_dp(values, weights, min(buckets, len(values)))
    out_bounds = [bounds[cuts[cut]] for cut in result.cuts]
    return StepFunction(tuple(out_bounds), result.centers)


@dataclass(frozen=True)
class SSIHistogramReport:
    """The SSI histogram plus construction metadata for the benchmarks."""

    histogram: StepFunction
    group_count: int
    allocations: Tuple[int, ...]

    @property
    def total_buckets(self) -> int:
        return sum(self.allocations)


def ssi_histogram(
    intervals: Sequence[Interval],
    buckets: int,
    phi: Optional[Density] = None,
    *,
    method: str = "dp",
    objective: str = "relative",
) -> SSIHistogramReport:
    """SSI-HIST: per-stabbing-group histograms summed together.

    ``method`` selects the per-side 1-D clustering: "dp" (exact weighted
    k-means; after value-aware coarsening this is near-linear and is the
    default) or "lloyd" (the iterative heuristic the paper recommends,
    cheaper but prone to local optima on heavy-tailed weights).

    ``objective`` selects the per-group error metric: "relative" (the
    paper's E^2, weights w/y^2 --- best when consumers care about relative
    estimation error) or "absolute" (plain V-optimal weights w --- best
    when consumers need absolute counts, e.g. cost-based optimizers; the
    relative objective deliberately sacrifices peak accuracy for tails).
    """
    if buckets < 1:
        raise ValueError("need at least one bucket")
    if method not in ("lloyd", "dp"):
        raise ValueError(f"unknown method {method!r}")
    weight_fn = _weight_fn(objective)
    partition = canonical_stabbing_partition(intervals)
    frequency = IntervalFrequency(intervals)
    phi = phi if phi is not None else Density.uniform_over(frequency)
    allocations = _allocate_buckets(
        [group.size for group in partition.groups], buckets
    )
    pieces: List[StepFunction] = []
    for group, k_i in zip(partition.groups, allocations):
        pieces.append(_group_histogram(group, k_i, phi, method, weight_fn))
    return SSIHistogramReport(
        histogram=StepFunction.sum_of(pieces),
        group_count=partition.size,
        allocations=tuple(allocations),
    )


def _allocate_buckets(sizes: Sequence[int], buckets: int) -> List[int]:
    """Largest-remainder allocation proportional to group cardinality, at
    least one bucket per group (the paper's heuristic)."""
    total = sum(sizes)
    if total == 0:
        raise ValueError("no intervals to allocate buckets for")
    raw = [buckets * size / total for size in sizes]
    alloc = [max(1, int(r)) for r in raw]
    # Spend any remaining budget on the largest fractional remainders.
    remaining = buckets - sum(alloc)
    if remaining > 0:
        order = sorted(
            range(len(sizes)), key=lambda i: raw[i] - int(raw[i]), reverse=True
        )
        for i in order[:remaining]:
            alloc[i] += 1
    return alloc


def _group_histogram(
    group: StabbingGroup[Interval],
    k: int,
    phi: Density,
    method: str,
    weight_fn=_relative_weight,
) -> StepFunction:
    """Histogram h_i = h^l_i + h^r_i for one stabbing group.

    Within the group f is unimodal around the stabbing point p_i (every
    member contains p_i): increasing on the left of p_i, decreasing on the
    right.  Each monotone side reduces to weighted 1-D k-means (Lemma 5).
    """
    members = group.items
    point = group.stabbing_point
    freq = IntervalFrequency(members)
    lo = min(interval.lo for interval in members)
    hi = max(interval.hi for interval in members)
    if lo == hi:
        # Degenerate group of identical points: represent as a sliver.
        return StepFunction((lo, lo + 1e-9), (float(len(members)),))
    if k <= 1:
        value = _weighted_objective_mean(freq.step_function(), phi, lo, hi, weight_fn)
        return StepFunction((lo, hi), (value,))
    sides: List[StepFunction] = []
    left = freq.step_function(lo, point) if lo < point else None
    right = freq.step_function(point, hi) if point < hi else None
    k_left, k_right = _split_side_budget(k, left, right)
    if left is not None:
        sides.append(
            _monotone_side_histogram(left, k_left, phi, method=method, weight_fn=weight_fn)
        )
    if right is not None:
        sides.append(
            _monotone_side_histogram(
                right, k_right, phi, reverse=True, method=method, weight_fn=weight_fn
            )
        )
    return StepFunction.sum_of(sides)


def _split_side_budget(
    k: int, left: Optional[StepFunction], right: Optional[StepFunction]
) -> Tuple[int, int]:
    """Split a group's bucket budget across its two monotone sides,
    proportionally to their piece counts and at least 1 each when present."""
    if left is None:
        return 0, k
    if right is None:
        return k, 0
    pieces_left = left.piece_count
    pieces_right = right.piece_count
    k_left = round(k * pieces_left / (pieces_left + pieces_right))
    k_left = min(max(k_left, 1), k - 1)
    return k_left, k - k_left


def _monotone_side_histogram(
    side: StepFunction,
    k: int,
    phi: Density,
    *,
    reverse: bool = False,
    method: str = "dp",
    max_side_segments: int = 256,
    weight_fn=_relative_weight,
) -> StepFunction:
    """Cluster one monotone side's piece values into k contiguous buckets.

    Sides with many break points are first coarsened bottom-up (value-aware,
    so the coarsening error is a tiny relative quantization), then clustered
    by exact DP or by the Lloyd heuristic.  For the decreasing (right) side
    the values are reversed so the k-means solvers see them ascending;
    monotonicity makes value-contiguity and x-contiguity coincide, so the
    cuts map straight back.
    """
    values = list(side.values)
    weights = [
        weight_fn(phi.mass(a, b), y)
        for a, b, y in zip(side.boundaries, side.boundaries[1:], values)
    ]
    values, weights, seg_cuts = agglomerate_segments(values, weights, max_side_segments)
    if reverse:
        values.reverse()
        weights.reverse()
    solver = kmeans_1d_dp if method == "dp" else kmeans_1d_lloyd
    result: KMeansResult = solver(values, weights, min(k, len(values)))
    # Drop empty clusters (Lloyd can produce them when k is generous).
    runs = [
        (a, b, center)
        for a, b, center in zip(result.cuts, result.cuts[1:], result.centers)
        if b > a
    ]
    if reverse:
        m = len(values)
        runs = [(m - b, m - a, center) for a, b, center in reversed(runs)]
    bounds = [side.boundaries[seg_cuts[runs[0][0]]]]
    vals: List[float] = []
    for a, b, center in runs:
        bounds.append(side.boundaries[seg_cuts[b]])
        vals.append(center)
    return StepFunction(tuple(bounds), tuple(vals))
