"""Piecewise-constant (step) functions.

Histograms and interval-frequency functions are both step functions; this
module provides the shared value type: a right-open piecewise-constant
function with value ``values[i]`` on ``[boundaries[i], boundaries[i+1])``
and 0 outside ``[boundaries[0], boundaries[-1])``.  Point values on the
measure-zero piece edges follow the right-open convention; all the error
functionals used in Section 3.3 are integrals against a density, so the
convention never affects a reported number.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class StepFunction:
    """An immutable step function.

    ``boundaries`` is strictly increasing with ``len(values) + 1`` entries.
    """

    boundaries: Tuple[float, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.values) + 1:
            raise ValueError("need len(values) + 1 boundaries")
        if len(self.values) == 0:
            raise ValueError("empty step function")
        for a, b in zip(self.boundaries, self.boundaries[1:]):
            if a >= b:
                raise ValueError("boundaries must be strictly increasing")

    @property
    def piece_count(self) -> int:
        return len(self.values)

    @property
    def support(self) -> Tuple[float, float]:
        return self.boundaries[0], self.boundaries[-1]

    def __call__(self, x: float) -> float:
        idx = bisect.bisect_right(self.boundaries, x) - 1
        if idx < 0 or idx >= len(self.values):
            return 0.0
        return self.values[idx]

    def simplified(self) -> "StepFunction":
        """Merge adjacent pieces with equal values."""
        bounds: List[float] = [self.boundaries[0]]
        vals: List[float] = [self.values[0]]
        for boundary, value in zip(self.boundaries[1:-1], self.values[1:]):
            if value == vals[-1]:
                continue
            bounds.append(boundary)
            vals.append(value)
        bounds.append(self.boundaries[-1])
        return StepFunction(tuple(bounds), tuple(vals))

    @staticmethod
    def from_lists(boundaries: Sequence[float], values: Sequence[float]) -> "StepFunction":
        return StepFunction(tuple(boundaries), tuple(values))

    @staticmethod
    def sum_of(functions: Iterable["StepFunction"]) -> "StepFunction":
        """Pointwise sum; boundaries are merged (k-way)."""
        functions = [f for f in functions]
        if not functions:
            raise ValueError("sum_of() needs at least one function")
        points = sorted({b for f in functions for b in f.boundaries})
        values: List[float] = []
        for left, right in zip(points, points[1:]):
            mid = (left + right) / 2.0
            values.append(sum(f(mid) for f in functions))
        return StepFunction(tuple(points), tuple(values)).simplified()

    def integrate(
        self,
        fn: Callable[[float, float, float], float],
        lo: float | None = None,
        hi: float | None = None,
    ) -> float:
        """Sum ``fn(left, right, value)`` over the pieces clipped to
        [lo, hi]; used to evaluate error integrals piece by piece."""
        lo = self.boundaries[0] if lo is None else lo
        hi = self.boundaries[-1] if hi is None else hi
        total = 0.0
        for i, value in enumerate(self.values):
            left = max(self.boundaries[i], lo)
            right = min(self.boundaries[i + 1], hi)
            if left < right:
                total += fn(left, right, value)
        return total
