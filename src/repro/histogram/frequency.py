"""The interval stabbing-count function f_I(x) (Section 3.3).

``f_I(x)`` is the number of intervals of ``I`` stabbed by ``x`` --- for a
continuous-query workload, the number of queries whose local selection is
satisfied by an incoming value.  Exact point evaluation is two binary
searches: ``f(x) = #{lo_i <= x} - #{hi_i < x}``.  The step-function view
(used by the histogram builders, whose error functionals integrate against
a density) is derived by evaluating the exact count at piece midpoints, so
no endpoint-convention bookkeeping can drift.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence, Tuple

from repro.core.intervals import Interval
from repro.histogram.step import StepFunction


class IntervalFrequency:
    """Exact stabbing counts for a fixed set of intervals."""

    def __init__(self, intervals: Iterable[Interval]):
        intervals = list(intervals)
        if not intervals:
            raise ValueError("need at least one interval")
        self._los = sorted(interval.lo for interval in intervals)
        self._his = sorted(interval.hi for interval in intervals)
        self._count = len(intervals)

    @property
    def interval_count(self) -> int:
        return self._count

    @property
    def domain(self) -> Tuple[float, float]:
        return self._los[0], self._his[-1]

    def count(self, x: float) -> int:
        """Exact number of intervals containing ``x`` (closed endpoints)."""
        return bisect.bisect_right(self._los, x) - bisect.bisect_left(self._his, x)

    def breakpoints(self, lo: float | None = None, hi: float | None = None) -> List[float]:
        """Sorted distinct endpoint values inside [lo, hi] --- the only
        places f can change, hence the candidate bucket boundaries
        (Lemma 4)."""
        points = sorted(set(self._los) | set(self._his))
        if lo is not None:
            points = [p for p in points if p >= lo]
        if hi is not None:
            points = [p for p in points if p <= hi]
        return points

    def step_function(
        self, lo: float | None = None, hi: float | None = None
    ) -> StepFunction:
        """f_I restricted to [lo, hi] as a step function.

        Piece values are exact counts at piece midpoints, so the result
        agrees with :meth:`count` everywhere except on the measure-zero set
        of endpoints themselves.
        """
        d_lo, d_hi = self.domain
        lo = d_lo if lo is None else lo
        hi = d_hi if hi is None else hi
        if lo >= hi:
            raise ValueError("empty restriction domain")
        bounds = [lo] + [p for p in self.breakpoints(lo, hi) if lo < p < hi] + [hi]
        values = [float(self.count((a + b) / 2.0)) for a, b in zip(bounds, bounds[1:])]
        return StepFunction(tuple(bounds), tuple(values)).simplified()


def segment_weights(
    boundaries: Sequence[float], phi: "Density"
) -> List[float]:
    """``w_l = integral of phi over segment l`` for each piece."""
    return [phi.mass(a, b) for a, b in zip(boundaries, boundaries[1:])]


class Density:
    """A probability density phi(x) for the incoming-tuple distribution.

    Only piecewise-uniform densities are supported; the paper acquires phi
    "by standard statistical methods at runtime" and its evaluation uses
    uniformly distributed stabbing queries, i.e. a uniform phi.
    """

    def __init__(self, lo: float, hi: float):
        if lo >= hi:
            raise ValueError("empty density support")
        self.lo = lo
        self.hi = hi

    def mass(self, a: float, b: float) -> float:
        """Probability mass of [a, b]."""
        a = max(a, self.lo)
        b = min(b, self.hi)
        if a >= b:
            return 0.0
        return (b - a) / (self.hi - self.lo)

    @staticmethod
    def uniform_over(frequency: IntervalFrequency) -> "Density":
        lo, hi = frequency.domain
        if lo == hi:
            # Degenerate domain (all intervals are the same point): pad so a
            # uniform density still exists.
            return Density(lo - 0.5, hi + 0.5)
        return Density(lo, hi)
