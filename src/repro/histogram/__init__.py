"""Histograms for interval stabbing counts (Section 3.3)."""

from repro.histogram.builders import (
    SSIHistogramReport,
    equal_width_histogram,
    optimal_histogram,
    ssi_histogram,
)
from repro.histogram.errors import average_relative_error, mean_squared_relative_error
from repro.histogram.frequency import Density, IntervalFrequency
from repro.histogram.kmeans import (
    KMeansResult,
    contiguous_partition_dp,
    kmeans_1d_dp,
    kmeans_1d_lloyd,
)
from repro.histogram.step import StepFunction

__all__ = [
    "Density",
    "IntervalFrequency",
    "KMeansResult",
    "SSIHistogramReport",
    "StepFunction",
    "average_relative_error",
    "contiguous_partition_dp",
    "equal_width_histogram",
    "kmeans_1d_dp",
    "kmeans_1d_lloyd",
    "mean_squared_relative_error",
    "optimal_histogram",
    "ssi_histogram",
]
