"""Weighted one-dimensional k-means clustering.

Lemma 5 reduces per-group histogram construction to weighted k-means on the
break-point values ``y_l`` with weights ``u_l = w_l / y_l^2``.  In one
dimension optimal clusters are contiguous runs of the sorted values, so two
solvers are provided:

* :func:`kmeans_1d_dp` — exact dynamic program over contiguous runs,
  O(m^2 k) with O(1) per-cell cost via prefix sums (used by tests and for
  small groups);
* :func:`kmeans_1d_lloyd` — the iterative Lloyd heuristic the paper
  recommends in practice, with quantile initialization, O(iters * m).

Both return cluster *cut indices* (the contiguous partition) plus centers
and total cost, so the histogram builder can translate clusters directly
into bucket boundaries.
"""

from __future__ import annotations

import bisect
import itertools
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class KMeansResult:
    """A contiguous clustering of sorted 1-D values.

    ``cuts`` has ``k + 1`` entries with ``cuts[0] == 0`` and
    ``cuts[-1] == m``; cluster j covers indices ``cuts[j]..cuts[j+1]-1``.
    """

    cuts: Tuple[int, ...]
    centers: Tuple[float, ...]
    cost: float

    @property
    def k(self) -> int:
        return len(self.centers)


class _PrefixCost:
    """O(1) weighted-SSE cost of any contiguous run via prefix sums."""

    def __init__(self, values: Sequence[float], weights: Sequence[float]):
        self.w = list(itertools.accumulate(weights, initial=0.0))
        self.wy = list(
            itertools.accumulate((w * y for y, w in zip(values, weights)), initial=0.0)
        )
        self.wyy = list(
            itertools.accumulate((w * y * y for y, w in zip(values, weights)), initial=0.0)
        )

    def center(self, i: int, j: int) -> float:
        """Weighted mean of values[i:j]."""
        w = self.w[j] - self.w[i]
        if w <= 0.0:
            return 0.0
        return (self.wy[j] - self.wy[i]) / w

    def cost(self, i: int, j: int) -> float:
        """min_c sum of w_l (y_l - c)^2 over values[i:j]."""
        w = self.w[j] - self.w[i]
        if w <= 0.0:
            return 0.0
        wy = self.wy[j] - self.wy[i]
        wyy = self.wyy[j] - self.wyy[i]
        return max(0.0, wyy - wy * wy / w)


def _validate(values: Sequence[float], weights: Sequence[float], k: int) -> None:
    if len(values) != len(weights):
        raise ValueError("values and weights must have equal length")
    if not values:
        raise ValueError("cannot cluster an empty sequence")
    if k < 1:
        raise ValueError("k must be >= 1")
    if any(values[i] > values[i + 1] for i in range(len(values) - 1)):
        raise ValueError("values must be sorted ascending")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be nonnegative")


def kmeans_1d_dp(
    values: Sequence[float], weights: Sequence[float], k: int
) -> KMeansResult:
    """Exact weighted 1-D k-means by dynamic programming.

    Optimal 1-D clusters are contiguous runs of the *sorted* values, so this
    validates sortedness and delegates to :func:`contiguous_partition_dp`.
    O(m^2 k) time, O(m k) space.
    """
    _validate(values, weights, k)
    return contiguous_partition_dp(values, weights, k)


def contiguous_partition_dp(
    values: Sequence[float], weights: Sequence[float], k: int
) -> KMeansResult:
    """Optimal partition of a sequence into k contiguous runs minimizing
    weighted within-run SSE.

    Unlike k-means this does *not* assume sorted values: it is also the
    inner engine of the OPTIMAL histogram, whose buckets must be contiguous
    in x-order even though the frequency values along x are not monotone.

    The O(m^2 k) table is filled with numpy-vectorized inner minimizations,
    which keeps histogram-scale inputs (hundreds of segments, tens of
    buckets) comfortably fast.
    """
    import numpy as np

    m = len(values)
    k = min(k, m)
    y = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    pw = np.concatenate(([0.0], np.cumsum(w)))
    pwy = np.concatenate(([0.0], np.cumsum(w * y)))
    pwyy = np.concatenate(([0.0], np.cumsum(w * y * y)))

    def run_cost(splits: "np.ndarray", i: int) -> "np.ndarray":
        """Cost of the run (split, i] for a vector of split positions."""
        dw = pw[i] - pw[splits]
        dwy = pwy[i] - pwy[splits]
        dwyy = pwyy[i] - pwyy[splits]
        with np.errstate(divide="ignore", invalid="ignore"):
            out = dwyy - np.where(dw > 0.0, dwy * dwy / np.where(dw > 0.0, dw, 1.0), 0.0)
        return np.maximum(out, 0.0)

    inf = math.inf
    dp_prev = np.full(m + 1, inf)
    dp_prev[0] = 0.0
    parents = []
    for j in range(1, k + 1):
        dp_cur = np.full(m + 1, inf)
        parent = np.zeros(m + 1, dtype=int)
        for i in range(j, m + 1):
            splits = np.arange(j - 1, i)
            cand = dp_prev[splits] + run_cost(splits, i)
            best = int(np.argmin(cand))
            dp_cur[i] = cand[best]
            parent[i] = splits[best]
        parents.append(parent)
        dp_prev = dp_cur
    cuts = [m]
    i = m
    for j in range(k, 0, -1):
        i = int(parents[j - 1][i])
        cuts.append(i)
    cuts.reverse()
    pc = _PrefixCost(values, weights)
    centers = tuple(pc.center(a, b) for a, b in zip(cuts, cuts[1:]))
    return KMeansResult(tuple(cuts), centers, float(dp_prev[m]))


def agglomerate_segments(
    values: Sequence[float], weights: Sequence[float], target: int
) -> Tuple[List[float], List[float], List[int]]:
    """Greedy bottom-up merging of adjacent segments down to ``target``.

    Repeatedly merges the adjacent pair whose merge increases the weighted
    SSE the least, so sharp value changes (histogram spikes) survive
    coarsening.  Returns merged values (weighted means), merged weights, and
    the cut indices into the original sequence.  Used to keep the DP solvers
    tractable on break-point sets with tens of thousands of segments.
    """
    m = len(values)
    if m != len(weights):
        raise ValueError("values and weights must have equal length")
    if target < 1:
        raise ValueError("target must be >= 1")
    if m <= target:
        return list(values), list(weights), list(range(m + 1))

    import heapq

    # Doubly-linked segments over original indices; seg i covers
    # [start[i], end[i]) with aggregated (w, wy, wyy).
    prev = list(range(-1, m - 1))
    nxt = list(range(1, m + 1))
    alive = [True] * m
    agg_w = [float(w) for w in weights]
    agg_wy = [w * y for y, w in zip(values, weights)]
    agg_wyy = [w * y * y for y, w in zip(values, weights)]
    start = list(range(m))
    end = list(range(1, m + 1))

    def seg_cost(i: int) -> float:
        if agg_w[i] <= 0.0:
            return 0.0
        return max(0.0, agg_wyy[i] - agg_wy[i] ** 2 / agg_w[i])

    def merge_penalty(i: int, j: int) -> float:
        w = agg_w[i] + agg_w[j]
        if w <= 0.0:
            return 0.0
        wy = agg_wy[i] + agg_wy[j]
        wyy = agg_wyy[i] + agg_wyy[j]
        merged = max(0.0, wyy - wy * wy / w)
        return merged - seg_cost(i) - seg_cost(j)

    version = [0] * m
    heap: List[Tuple[float, int, int, int, int]] = []

    def push(i: int, j: int) -> None:
        heapq.heappush(heap, (merge_penalty(i, j), version[i], version[j], i, j))

    for i in range(m - 1):
        push(i, i + 1)
    remaining = m
    while remaining > target and heap:
        __, vi, vj, i, j = heapq.heappop(heap)
        if not (alive[i] and alive[j]) or nxt[i] != j:
            continue  # stale pair
        if version[i] != vi or version[j] != vj:
            continue  # stale priority: one side changed since the push
        # Merge j into i.
        agg_w[i] += agg_w[j]
        agg_wy[i] += agg_wy[j]
        agg_wyy[i] += agg_wyy[j]
        end[i] = end[j]
        alive[j] = False
        nxt[i] = nxt[j]
        version[i] += 1
        if nxt[i] < m:
            prev[nxt[i]] = i
            push(i, nxt[i])
        if prev[i] >= 0:
            push(prev[i], i)
        remaining -= 1

    out_values: List[float] = []
    out_weights: List[float] = []
    cuts: List[int] = []
    i = 0
    while i < m:
        if alive[i]:
            cuts.append(start[i])
            if agg_w[i] > 0.0:
                out_values.append(agg_wy[i] / agg_w[i])
            else:
                out_values.append(values[start[i]])
            out_weights.append(agg_w[i])
            i = end[i]
        else:  # pragma: no cover - skipped segments are absorbed
            i += 1
    cuts.append(m)
    return out_values, out_weights, cuts


def kmeans_1d_lloyd(
    values: Sequence[float],
    weights: Sequence[float],
    k: int,
    *,
    max_iters: int = 60,
    tol: float = 1e-12,
) -> KMeansResult:
    """Weighted 1-D Lloyd iterations with quantile initialization.

    In one dimension the nearest-center assignment of sorted values is a
    contiguous partition cut at midpoints between adjacent centers, so each
    iteration is two linear passes.  Converges to a local optimum; the
    histogram tests check it never beats :func:`kmeans_1d_dp` and stays
    within a reasonable factor of it.
    """
    _validate(values, weights, k)
    m = len(values)
    k = min(k, m)
    pc = _PrefixCost(values, weights)
    # Quantile init: centers at the weighted quantiles of the values.
    total_w = pc.w[m]
    if total_w <= 0:
        # All weights zero: any clustering costs zero.
        cuts = tuple(round(i * m / k) for i in range(k + 1))
        centers = tuple(values[min(max(c, 0), m - 1)] for c in cuts[:-1])
        return KMeansResult(cuts, centers, 0.0)
    centers = []
    for j in range(k):
        target = total_w * (2 * j + 1) / (2 * k)
        idx = bisect.bisect_left(pc.w, target, 1, m)
        centers.append(values[idx - 1])
    centers.sort()

    cost = math.inf
    cuts: List[int] = []
    for __ in range(max_iters):
        # Assignment: cut sorted values at midpoints between centers.
        cuts = [0]
        for a, b in zip(centers, centers[1:]):
            midpoint = (a + b) / 2.0
            cuts.append(max(cuts[-1], bisect.bisect_right(values, midpoint, cuts[-1], m)))
        cuts.append(m)
        # Update step + new cost.
        new_centers = []
        new_cost = 0.0
        for a, b in zip(cuts, cuts[1:]):
            if a == b:
                new_centers.append(centers[len(new_centers)] if len(new_centers) < len(centers) else values[-1])
                continue
            new_centers.append(pc.center(a, b))
            new_cost += pc.cost(a, b)
        centers = new_centers
        if cost - new_cost <= tol:
            cost = new_cost
            break
        cost = new_cost
    centers_out = tuple(
        pc.center(a, b) if b > a else centers[i]
        for i, (a, b) in enumerate(zip(cuts, cuts[1:]))
    )
    return KMeansResult(tuple(cuts), centers_out, cost)
