"""Rendering lint results: human terminal output and machine JSON.

The JSON document is the CI artifact (uploaded by the ``lint`` job), so
its shape is part of the tool's contract: ``findings`` carries every
finding with its baselined flag, ``summary`` the counts the gate is
decided on, ``rules`` the catalog the run used.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.baseline import BaselineDelta
from repro.analysis.engine import Severity, rule_catalog

__all__ = ["render_human", "render_json", "render_catalog", "summarize"]


def summarize(delta: BaselineDelta) -> Dict[str, int]:
    new_errors = sum(1 for f in delta.new if f.severity is Severity.ERROR)
    return {
        "new": len(delta.new),
        "new_errors": new_errors,
        "new_warnings": len(delta.new) - new_errors,
        "baselined": len(delta.baselined),
        "stale_baseline_entries": len(delta.stale),
    }


def render_human(delta: BaselineDelta) -> str:
    """Compiler-style lines for new findings, then a one-line summary."""
    lines: List[str] = [f.render() for f in delta.new]
    summary = summarize(delta)
    if delta.baselined:
        lines.append(f"({summary['baselined']} pre-existing finding(s) baselined)")
    if delta.stale:
        total = sum(delta.stale.values())
        lines.append(
            f"baseline is stale: {total} finding(s) fixed — run "
            "`repro lint --update-baseline` to ratchet the debt down"
        )
    if delta.new:
        lines.append(
            f"{summary['new']} new finding(s) "
            f"({summary['new_errors']} error(s), {summary['new_warnings']} warning(s))"
        )
    else:
        lines.append("lint clean")
    return "\n".join(lines)


def render_json(delta: BaselineDelta, files_checked: int) -> str:
    findings: List[Dict[str, object]] = []
    for f in delta.new:
        entry = f.to_json()
        entry["baselined"] = False
        findings.append(entry)
    for f in delta.baselined:
        entry = f.to_json()
        entry["baselined"] = True
        findings.append(entry)
    # Total order on every key the entries can differ in — the JSON is a
    # CI artifact diffed across runs, so two runs over the same tree must
    # be byte-identical (dict iteration order of the merged new+baselined
    # lists is an implementation detail, never the output order).
    findings.sort(
        key=lambda e: (
            str(e["path"]),
            int(str(e["line"])),
            str(e["rule"]),
            int(str(e["col"])),
            str(e["message"]),
        )
    )
    payload: Dict[str, object] = {
        "tool": "repro lint",
        "version": 1,
        "files_checked": files_checked,
        "summary": summarize(delta),
        "stale_baseline": dict(sorted(delta.stale.items())),
        "rules": rule_catalog(),
        "findings": findings,
    }
    return json.dumps(payload, indent=2)


def render_catalog(fmt: str = "human") -> str:
    """The ``--list-rules`` output."""
    catalog = rule_catalog()
    if fmt == "json":
        return json.dumps({"rules": catalog}, indent=2)
    lines: List[str] = []
    for entry in catalog:
        lines.append(f"{entry['code']}  {entry['name']}  [{entry['severity']}]")
        lines.append(f"       {entry['description']}")
    return "\n".join(lines)
