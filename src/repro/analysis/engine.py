"""Core of the repro lint engine: findings, rules, contexts, suppression.

The engine is deliberately small: a rule is a class with a ``code``, a
``severity`` and a ``check(ctx)`` generator; the driver parses each file
once, hands every registered rule the same :class:`LintContext` (source,
AST, repo-relative path), filters findings through inline
``# repro: noqa[RULE]`` pragmas, and returns them sorted.  Everything
project-specific — which paths are replay-critical, where numpy may be
imported, which modules are hot — lives in :mod:`repro.analysis.project`,
so rules stay generic visitors over a declarative contract.
"""

from __future__ import annotations

import ast
import enum
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

__all__ = [
    "Severity",
    "Finding",
    "LintContext",
    "Rule",
    "register",
    "all_rules",
    "rule_catalog",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "PARSE_ERROR_RULE",
]

#: Pseudo-rule code attached to findings produced by unparseable files.
PARSE_ERROR_RULE = "RA000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_ ,]+)\])?", re.IGNORECASE
)


class Severity(enum.Enum):
    """Per-rule severity; both levels fail the lint gate, warnings exist so
    downstream tooling can triage machine-readable output."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule firing at a position in a file.

    ``path`` is repo-relative with forward slashes so fingerprints (and the
    baseline file keyed by them) are stable across checkouts and platforms.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR

    @property
    def fingerprint(self) -> str:
        """Identity used by the baseline ratchet.

        Line/column are deliberately excluded: unrelated edits move code
        around, and a baseline keyed on positions would rot instantly.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class LintContext:
    """Everything a rule may inspect about one file."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    _noqa: Optional[Dict[int, frozenset[str]]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def noqa_pragmas(self) -> Dict[int, frozenset[str]]:
        """Map of line number -> codes suppressed by a ``# repro: noqa``
        pragma on that line (empty frozenset = bare noqa, suppress all).

        Pragmas are recognized only inside real comment tokens, so a
        docstring *mentioning* the pragma syntax (as this module's does)
        neither suppresses findings nor counts as a suppression for RA104.
        """
        if self._noqa is None:
            self._noqa = _collect_noqa_pragmas(self.source)
        return self._noqa

    @property
    def module_path(self) -> str:
        """The path from the ``repro/`` package root down, e.g.
        ``repro/core/intervals.py`` — scope tables in
        :mod:`repro.analysis.project` are keyed on this form so rules work
        identically on checkouts, installed trees, and test fixtures."""
        parts = Path(self.path).as_posix().split("/")
        for i, part in enumerate(parts):
            if part == "repro":
                return "/".join(parts[i:])
        return Path(self.path).as_posix()

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        return Finding(
            rule=rule.code,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=rule.severity,
        )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``check`` receives one :class:`LintContext` per file and yields
    findings; rules that only apply to part of the tree should consult
    ``ctx.module_path`` against the scope tables in
    :mod:`repro.analysis.project` and return early when out of scope.
    """

    code: str = "RA999"
    name: str = "unnamed"
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Rules auditing the suppression mechanism itself (RA104) opt out of
    #: *bare* pragmas (ones without a ``[CODE]`` list) — otherwise a stale
    #: bare pragma could suppress the very finding that reports it.  An
    #: explicit ``noqa[CODE]`` naming the rule still works.
    bare_noqa_exempt: bool = False

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError

    @classmethod
    def summary(cls) -> Dict[str, str]:
        return {
            "code": cls.code,
            "name": cls.name,
            "severity": cls.severity.value,
            "description": cls.description,
        }


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry; codes are
    unique, re-registration of the same code is a programming error."""
    if rule_cls.code in _REGISTRY and _REGISTRY[rule_cls.code] is not rule_cls:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered rules, sorted by code.  ``select``
    restricts to the given codes (unknown codes raise, so typos in
    ``--select`` fail loudly instead of silently linting nothing)."""
    _ensure_rules_loaded()
    if select is not None:
        unknown = sorted(set(select) - set(_REGISTRY))
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(unknown)}")
        codes = sorted(set(select))
    else:
        codes = sorted(_REGISTRY)
    return [_REGISTRY[code]() for code in codes]


def rule_catalog() -> List[Dict[str, str]]:
    """Stable, JSON-friendly description of every registered rule."""
    _ensure_rules_loaded()
    return [_REGISTRY[code].summary() for code in sorted(_REGISTRY)]


def _ensure_rules_loaded() -> None:
    # Rule modules self-register on import; importing here (not at module
    # top) keeps engine importable from the rule modules themselves.
    from repro.analysis import concurrency as _concurrency  # noqa: F401
    from repro.analysis import rules as _rules  # noqa: F401

    del _concurrency, _rules


def _suppressed_codes(text: str) -> Optional[frozenset[str]]:
    """Return the codes suppressed by ``# repro: noqa`` pragmas in
    ``text`` — an empty frozenset means "suppress everything" (bare noqa),
    ``None`` means no pragma present.  Multiple pragmas on one line union
    their codes; any bare pragma wins."""
    matches = list(_NOQA_RE.finditer(text))
    if not matches:
        return None
    union: Set[str] = set()
    for match in matches:
        codes = match.group("codes")
        if codes is None:
            return frozenset()
        union.update(c.strip().upper() for c in codes.split(",") if c.strip())
    return frozenset(union)


def _collect_noqa_pragmas(source: str) -> Dict[int, frozenset[str]]:
    """Per-line suppression map, built from real comment tokens only.

    Falls back to raw-line scanning when the token stream is malformed
    (the AST parsed, so this is a backstop, not the normal path)."""
    pragmas: Dict[int, frozenset[str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                codes = _suppressed_codes(tok.string)
                if codes is not None:
                    pragmas[tok.start[0]] = codes
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pragmas = {}
        for lineno, line in enumerate(source.splitlines(), 1):
            codes = _suppressed_codes(line)
            if codes is not None:
                pragmas[lineno] = codes
    return pragmas


def _bare_noqa_exempt(rule_code: str) -> bool:
    rule_cls = _REGISTRY.get(rule_code)
    return rule_cls is not None and rule_cls.bare_noqa_exempt


def apply_noqa(ctx: LintContext, findings: Iterable[Finding]) -> List[Finding]:
    """Drop findings whose source line carries a matching noqa pragma."""
    pragmas = ctx.noqa_pragmas()
    kept: List[Finding] = []
    for f in findings:
        codes = pragmas.get(f.line)
        if codes is None:
            kept.append(f)
        elif not codes and _bare_noqa_exempt(f.rule):
            kept.append(f)  # bare noqa cannot silence the noqa auditor
        elif codes and f.rule not in codes:
            kept.append(f)
        # bare noqa (empty set) or a matching code suppresses the finding
    return kept


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory source blob under a virtual path.

    This is the core entry point — files, fixtures, and tests all route
    through it, so rule behaviour cannot differ between production runs
    and the fixture suite.
    """
    active = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = LintContext(path=path, source=source, tree=tree)
    findings: List[Finding] = []
    for rule in active:
        findings.extend(rule.check(ctx))
    findings = apply_noqa(ctx, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: Path,
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a file on disk, reporting it under its ``root``-relative path."""
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return lint_source(path.read_text(encoding="utf-8"), rel, rules)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: List[Path] = []
    for p in paths:
        if p.is_dir():
            seen.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            seen.append(p)
    deduped: List[Path] = []
    known: Set[Path] = set()
    for p in seen:
        key = p.resolve()
        if key not in known:
            known.add(key)
            deduped.append(p)
    return iter(deduped)


def lint_paths(
    paths: Sequence[Path],
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every python file under ``paths``; the workhorse behind
    ``repro lint``."""
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, root, active))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
