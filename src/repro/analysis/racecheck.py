"""Dynamic lock-order witness and guarded-state barrier (``REPRO_RACECHECK=1``).

The static rules in :mod:`repro.analysis.concurrency` prove what the AST
can see; this module is the runtime half of the same contract.  When the
``REPRO_RACECHECK`` environment variable is truthy:

* :func:`new_lock` / :func:`new_rlock` — the project lock factories used
  by every concurrent subsystem — return :class:`TrackedLock` wrappers
  instead of bare ``threading`` primitives.  Each acquisition is checked
  against a process-global held-lock DAG *before* blocking on the inner
  lock: if the new ``held -> wanted`` edge closes a cycle, the acquire
  raises :class:`LockOrderViolation` immediately — the witness reports the
  potential deadlock without needing the adversarial interleaving that
  would actually deadlock.
* :func:`guarded` (a class decorator) reads the class's own
  ``# guarded-by: <lock>`` annotations — the same ones the static RA201
  pass checks — and installs a ``__setattr__`` barrier: writing a guarded
  attribute after ``__init__`` without holding the declared lock raises
  :class:`GuardedStateViolation`.

When the variable is unset both factories return plain locks and
:func:`guarded` is an identity decorator, so production and the default
test tier pay nothing.
"""

from __future__ import annotations

import functools
import inspect
import os
import textwrap
import threading
from typing import Any, Dict, List, Optional, Protocol, Set, Type, TypeVar

__all__ = [
    "ENV_VAR",
    "enabled",
    "LockLike",
    "TrackedLock",
    "LockOrderWitness",
    "LockOrderViolation",
    "GuardedStateViolation",
    "RaceCheckError",
    "new_lock",
    "new_rlock",
    "guarded",
    "witness",
    "reset",
    "report",
]

ENV_VAR = "REPRO_RACECHECK"

_T = TypeVar("_T")


def enabled() -> bool:
    """True when the witness is active.  Read per call, not at import:
    ``repro racecheck`` flips the variable before building the pipeline,
    and tests toggle it with ``monkeypatch.setenv``."""
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0", "false", "False")


class RaceCheckError(RuntimeError):
    """Base class for witness failures — fail fast, never limp on."""


class LockOrderViolation(RaceCheckError):
    """Acquiring this lock here completes a cycle in the held-lock DAG
    (or re-acquires a non-reentrant lock already held by this thread)."""


class GuardedStateViolation(RaceCheckError):
    """A ``# guarded-by:`` attribute was written without its lock held."""


class LockLike(Protocol):
    """What the factories return: enough of the ``threading.Lock`` surface
    for ``with``-statement discipline plus explicit acquire/release."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(self, *exc: object) -> Any: ...


class _HeldStack(threading.local):
    """Per-thread stack of currently held :class:`TrackedLock` instances."""

    def __init__(self) -> None:
        self.stack: List["TrackedLock"] = []


class LockOrderWitness:
    """Process-global lock-order DAG and guarded-state bookkeeping.

    Edges are keyed by lock *name* (``"MetricsRegistry._lock"``), not
    instance, so the order discipline generalizes across instances of the
    same class — exactly the granularity a static lock-order rule uses.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._edges: Dict[str, Set[str]] = {}
        self._held = _HeldStack()
        self.locks_created = 0
        self.acquisitions = 0
        self.guard_checks = 0

    # -- lifecycle ---------------------------------------------------------

    def on_created(self, lock: "TrackedLock") -> None:
        with self._mu:
            self.locks_created += 1

    def before_acquire(self, lock: "TrackedLock") -> None:
        """Validate the pending acquisition against this thread's held set.

        Runs *before* the inner acquire so a would-be deadlock raises
        instead of blocking forever.
        """
        held = self._held.stack
        for h in held:
            if h is lock and lock.reentrant:
                return  # RLock re-entry: no new edge, no violation
            if h.name == lock.name and (h is not lock or not lock.reentrant):
                raise LockOrderViolation(
                    f"thread {threading.current_thread().name!r} acquiring "
                    f"{lock.name!r} while already holding {h.name!r} — "
                    "self-deadlock (non-reentrant re-acquisition)"
                )
        if not held:
            return
        with self._mu:
            for h in held:
                if self._reachable(lock.name, h.name):
                    cycle = " -> ".join(
                        [h.name, lock.name, "...", h.name]
                    )
                    raise LockOrderViolation(
                        f"lock-order cycle: thread "
                        f"{threading.current_thread().name!r} holds "
                        f"{h.name!r} and wants {lock.name!r}, but the witness "
                        f"has seen the reverse order ({cycle}); pick one "
                        "global acquisition order"
                    )
            for h in held:
                self._edges.setdefault(h.name, set()).add(lock.name)

    def on_acquired(self, lock: "TrackedLock") -> None:
        self._held.stack.append(lock)
        with self._mu:
            self.acquisitions += 1

    def on_released(self, lock: "TrackedLock") -> None:
        stack = self._held.stack
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is lock:
                del stack[i]
                return

    # -- queries -----------------------------------------------------------

    def holds(self, lock: object) -> bool:
        """Identity check: does the calling thread hold ``lock``?"""
        inner = lock._inner if isinstance(lock, TrackedLock) else lock
        for h in self._held.stack:
            if h is lock or h._inner is inner:
                return True
        return False

    def note_guard_check(self) -> None:
        with self._mu:
            self.guard_checks += 1

    def _reachable(self, src: str, dst: str) -> bool:
        """DFS over recorded edges: can ``src`` reach ``dst``?  Caller holds
        ``_mu``."""
        if src == dst:
            return True
        seen: Set[str] = set()
        todo = [src]
        while todo:
            node = todo.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            todo.extend(self._edges.get(node, ()))
        return False

    def report(self) -> Dict[str, Any]:
        """Stable, JSON-friendly summary for the CLI and tests."""
        with self._mu:
            edges = sorted(
                (src, dst)
                for src, dsts in self._edges.items()
                for dst in dsts
            )
            return {
                "locks_created": self.locks_created,
                "acquisitions": self.acquisitions,
                "guard_checks": self.guard_checks,
                "edges": [f"{src} -> {dst}" for src, dst in edges],
            }

    def reset(self) -> None:
        with self._mu:
            self._edges.clear()
            self.locks_created = 0
            self.acquisitions = 0
            self.guard_checks = 0
        self._held = _HeldStack()


_WITNESS = LockOrderWitness()


def witness() -> LockOrderWitness:
    return _WITNESS


def reset() -> None:
    """Clear the global witness (between CLI runs / tests)."""
    _WITNESS.reset()


def report() -> Dict[str, Any]:
    return _WITNESS.report()


class TrackedLock:
    """A named lock wrapper that reports every acquire/release to the
    witness.  Not re-exported to user code — :func:`new_lock` hands these
    out only under ``REPRO_RACECHECK=1``."""

    __slots__ = ("name", "reentrant", "_inner")

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = name
        self.reentrant = reentrant
        self._inner: Any = (
            threading.RLock() if reentrant else threading.Lock()
        )
        _WITNESS.on_created(self)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _WITNESS.before_acquire(self)
        got = bool(self._inner.acquire(blocking, timeout))
        if got:
            _WITNESS.on_acquired(self)
        return got

    def release(self) -> None:
        self._inner.release()
        _WITNESS.on_released(self)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r}, reentrant={self.reentrant})"


def new_lock(name: str) -> LockLike:
    """Project lock factory.  A plain ``threading.Lock`` normally; a
    witness-:class:`TrackedLock` under ``REPRO_RACECHECK=1``.  ``name``
    should be ``"Class._attr"`` so DAG edges read like the source."""
    if enabled():
        return TrackedLock(name)
    return threading.Lock()


def new_rlock(name: str) -> LockLike:
    """Re-entrant variant of :func:`new_lock`."""
    if enabled():
        return TrackedLock(name, reentrant=True)
    return threading.RLock()


# --------------------------------------------------------------------------
# guarded-state write barrier

#: Objects currently inside ``__init__`` — construction happens-before
#: publication, so writes there are exempt (mirrors RA201's exemption).
#: An id-set rather than an instance attribute so it works with __slots__.
_UNDER_CONSTRUCTION: Set[int] = set()


def _guard_table(cls: type) -> Dict[str, str]:
    """``{attr: lock_attr}`` from the class's own ``# guarded-by:`` comments
    (lock-form only; spsc single-writer discipline has no runtime hook)."""
    from repro.analysis.concurrency import guarded_specs_from_source

    try:
        source = textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError):
        return {}
    specs = guarded_specs_from_source(source, cls.__name__)
    return {attr: s.lock for attr, s in specs.items() if s.lock is not None}


def guarded(cls: Type[_T]) -> Type[_T]:
    """Class decorator enforcing ``# guarded-by:`` at runtime.

    A no-op unless :func:`enabled` at decoration time (class definition
    normally happens at import, after ``repro racecheck`` sets the env
    var) or the class has no lock-form annotations.
    """
    if not enabled():
        return cls
    guards = _guard_table(cls)
    if not guards:
        return cls

    original_init = cls.__init__
    original_setattr = cls.__setattr__

    @functools.wraps(original_init)
    def init(self: Any, *args: Any, **kwargs: Any) -> None:
        _UNDER_CONSTRUCTION.add(id(self))
        try:
            original_init(self, *args, **kwargs)
        finally:
            _UNDER_CONSTRUCTION.discard(id(self))

    @functools.wraps(original_setattr)
    def barrier(self: Any, attr: str, value: Any) -> None:
        lock_attr = guards.get(attr)
        if lock_attr is not None and id(self) not in _UNDER_CONSTRUCTION:
            _WITNESS.note_guard_check()
            lock: Optional[object] = getattr(self, lock_attr, None)
            if lock is not None and not _WITNESS.holds(lock):
                raise GuardedStateViolation(
                    f"{cls.__name__}.{attr} is `# guarded-by: {lock_attr}` "
                    f"but thread {threading.current_thread().name!r} wrote it "
                    f"without holding self.{lock_attr}"
                )
        original_setattr(self, attr, value)

    setattr(cls, "__init__", init)
    setattr(cls, "__setattr__", barrier)
    return cls
