"""Project contract tables consumed by the lint rules.

Rules in :mod:`repro.analysis.rules` are generic AST visitors; everything
that encodes *this* codebase's architecture — which planes must stay
deterministic for replay equivalence, where numpy may be touched, which
modules are allocation hot paths — is declared here, in one reviewable
place.  Paths are in ``module_path`` form (from the ``repro/`` package
root down, forward slashes), matching :attr:`LintContext.module_path`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

__all__ = [
    "DETERMINISM_SCOPE",
    "WALLCLOCK_METADATA_ALLOWLIST",
    "MONOTONIC_CLOCK_SCOPE",
    "MONOTONIC_CLOCK_CALLS",
    "NUMPY_IMPORT_ALLOWLIST",
    "KERNEL_HANDLE_MODULE",
    "LOCK_DISCIPLINE_SCOPE",
    "CONCURRENCY_SCOPE",
    "LOCK_FACTORY_NAMES",
    "THREAD_SPAWN_CALLEES",
    "SNAPSHOT_METHODS",
    "FLOAT_EQ_ALLOWLIST",
    "CANONICAL_COMPARATORS",
    "HOTPATH_MODULES",
    "in_scope",
]

#: RA001 — the replay-equivalence plane.  ``repro.check`` differential
#: fuzzing and ``runtime.replay`` both assume that feeding the same event
#: stream twice yields byte-identical deltas; any wall-clock read, shared
#: global RNG use, or set-order-dependent iteration here silently breaks
#: that.  Seeded ``random.Random(seed)`` instances are fine (the treap's
#: priorities are drawn from one).
DETERMINISM_SCOPE: Tuple[str, ...] = (
    "repro/core/",
    "repro/operators/",
    "repro/runtime/replay.py",
    "repro/durability/",
    "repro/obs/",
    # The shared-memory data plane: frames must encode/decode bit-stably
    # and ring traffic must never depend on RNG or set order, or the
    # process-shm backend silently diverges from the inline reference the
    # replay driver and the "transport" fuzz target compare it against.
    "repro/runtime/transport/",
)

#: RA001 carve-out — modules inside :data:`DETERMINISM_SCOPE` that may read
#: wall clocks for *metadata only*, each with the argument that justifies
#: it.  The carve-out silences only the wall-clock branch of RA001; RNG and
#: set-iteration findings still fire in these modules.  Any new entry must
#: reproduce the argument: the timestamp is written into an artifact that
#: nothing on the recovery/replay path ever reads back (recovery selects
#: checkpoints by sequence number and validates by CRC — see
#: ``repro/durability/recovery.py``).
WALLCLOCK_METADATA_ALLOWLIST: Dict[str, str] = {
    "repro/durability/checkpoint.py": (
        "checkpoint manifests record a created_at_unix timestamp for "
        "operator forensics only; recovery orders and selects checkpoints "
        "strictly by next_seq and never reads the timestamp"
    ),
}

#: RA001 carve-out for the observability package: ``repro/obs/`` is in
#: :data:`DETERMINISM_SCOPE` (span recorders and telemetry listeners run
#: inside replay-critical callbacks, so RNG and set-iteration findings
#: must fire there), but span timing needs a clock.  *Monotonic* clocks
#: only: durations are instrumentation that nothing on the replay or
#: recovery path ever reads back, while wall clocks (``time.time``,
#: ``datetime.now``) stay banned — an absolute timestamp invites exactly
#: the "compare to recorded time" logic that breaks replay equivalence.
#: ``repro/runtime/transport/`` earns the same carve-out for the opposite
#: reason: its monotonic reads implement *deadlines* (ring backpressure,
#: corruption grace windows, worker-response timeouts), not data.  No
#: clock value ever reaches a frame's bytes — timeouts only decide when
#: to raise — so replay equivalence is untouched; wall clocks stay banned.
#: ``repro/durability/manager.py`` rides the same argument as obs/: its
#: ``perf_counter`` reads time WAL appends and checkpoints purely for the
#: ``durability/*_seconds`` histograms — nothing on the recovery path ever
#: reads a duration back (recovery is driven by sequence numbers and CRCs).
MONOTONIC_CLOCK_SCOPE: Tuple[str, ...] = (
    "repro/obs/",
    "repro/runtime/transport/",
    "repro/durability/manager.py",
)

#: The clock calls :data:`MONOTONIC_CLOCK_SCOPE` exempts (a strict subset
#: of the RA001 wall-clock list).
MONOTONIC_CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)

#: RA002 — the only modules allowed to import numpy.  ``fastpath/kernels``
#: owns the import-once handle (gated by ``REPRO_FASTPATH_KERNEL``) and
#: ``histogram/kmeans`` vectorizes Lloyd iterations; everything else must
#: call through the public kernel API so the pure-python fallback stays a
#: one-switch decision.
NUMPY_IMPORT_ALLOWLIST: FrozenSet[str] = frozenset(
    {
        "repro/fastpath/kernels.py",
        "repro/histogram/kmeans.py",
    }
)

#: RA002 also bans importing the private ``_np`` handle out of this module;
#: consumers use :func:`repro.fastpath.kernels.get_numpy` instead.
KERNEL_HANDLE_MODULE = "repro.fastpath.kernels"

#: RA003 — packages whose classes are used across threads; attributes
#: written under ``with self._lock`` must never be touched outside one.
LOCK_DISCIPLINE_SCOPE: Tuple[str, ...] = ("repro/runtime/", "repro/obs/")

#: RA201–RA206 — the concurrency-safety plane: every package whose objects
#: are reachable from more than one thread or process (shard worker pools,
#: the metrics HTTP server thread, WAL/checkpoint state shared with the
#: serve loop, the SPSC shm rings).  The ``# guarded-by:`` annotation
#: convention and the escape/lock-order passes apply here; see
#: ``repro.analysis.concurrency``.  ``repro/runtime/transport/`` is covered
#: via the ``repro/runtime/`` prefix.
CONCURRENCY_SCOPE: Tuple[str, ...] = (
    "repro/runtime/",
    "repro/obs/",
    "repro/durability/",
)

#: Callables recognized as lock constructors when inferring a class's lock
#: attributes (RA003, RA201–RA206).  ``new_lock``/``new_rlock`` are the
#: project factories from :mod:`repro.analysis.racecheck` — they return a
#: plain lock normally and a witness-tracked lock under ``REPRO_RACECHECK=1``.
LOCK_FACTORY_NAMES: FrozenSet[str] = frozenset(
    {"Lock", "RLock", "Condition", "new_lock", "new_rlock"}
)

#: Callee names whose ``target=`` / first argument hands a bound method to
#: another thread of control (RA202 escape analysis).
THREAD_SPAWN_CALLEES: FrozenSet[str] = frozenset({"Thread", "Process", "Timer"})

#: RA004 — methods returning cached, shared snapshots.  Their return values
#: are reused across calls (``StabbingSetIndex.group_table`` until a
#: partition callback invalidates it, ``BPlusTree.flat_snapshot`` until the
#: tree mutates), so callers mutating them corrupt every later reader.
SNAPSHOT_METHODS: FrozenSet[str] = frozenset({"group_table", "flat_snapshot"})

#: RA005 — modules allowed to compare ``.lo``/``.hi`` with ``==``/``!=``,
#: each with the exactness argument that justifies it.  The rule points
#: everyone else at the canonical comparators in ``repro.core.intervals``
#: (``endpoints_equal`` / ``same_interval``).
#:
#: The argument that makes those comparators correct (and that any new
#: allowlist entry must reproduce): interval endpoints in this codebase are
#: only ever *copied*, never derived by arithmetic — ``Interval`` is frozen,
#: and values such as ``DynamicGroup._max_lo`` / ``_min_hi`` are assigned
#: verbatim from a member interval's ``lo``/``hi`` (see
#: ``core/partition_base.py``), so an ``==`` there compares bit-identical
#: IEEE doubles and is exact.  Derived quantities (``s.b - r.b``, shifted
#: windows) must never be equality-compared against endpoints.
FLOAT_EQ_ALLOWLIST: Dict[str, str] = {
    "repro/core/intervals.py": (
        "home of the canonical comparators; the helpers themselves must "
        "spell out the raw == they encapsulate"
    ),
}

#: Names of the canonical comparator helpers (for the RA005 message).
CANONICAL_COMPARATORS: Tuple[str, ...] = ("endpoints_equal", "same_interval")

#: RA006 — modules on the per-event/per-key hot path, where instances are
#: created in bulk or attribute access dominates; classes here must declare
#: ``__slots__`` (or be ``@dataclass(slots=True)``) so a stray attribute
#: typo fails loudly and per-instance dicts don't bloat resident memory.
HOTPATH_MODULES: FrozenSet[str] = frozenset(
    {
        "repro/core/intervals.py",
        "repro/core/partition_base.py",
        "repro/dstruct/btree.py",
        "repro/dstruct/treap.py",
        "repro/dstruct/sorted_list.py",
        "repro/dstruct/interval_tree.py",
        "repro/dstruct/interval_skip_list.py",
        "repro/dstruct/rtree.py",
        "repro/fastpath/kernels.py",
        "repro/fastpath/band.py",
        "repro/fastpath/select.py",
        "repro/runtime/batching.py",
        "repro/runtime/metrics.py",
        "repro/obs/tracing.py",
        # The shm transport sits on every process-mode batch round trip:
        # ring send/recv run per frame, the codec touches every row.
        "repro/runtime/transport/shm.py",
        "repro/runtime/transport/frames.py",
    }
)


def in_scope(module_path: str, scope: Tuple[str, ...]) -> bool:
    """True if ``module_path`` falls under any prefix (or exact file) in
    ``scope``."""
    for entry in scope:
        if entry.endswith("/"):
            if module_path.startswith(entry):
                return True
        elif module_path == entry:
            return True
    return False
