"""Concurrency-safety rules RA201–RA206: guarded-by lock discipline,
shared-state escape analysis, and static lock-order checking.

The convention: a shared attribute declares its synchronization on the
line that assigns it, as a trailing comment —

* ``self._value = 0  # guarded-by: _lock`` — every read or write outside
  ``__init__`` must happen under ``with self._lock:`` (RA201);
* ``self._next_tail = 0  # guarded-by: spsc:send`` — single-writer
  discipline for lock-free SPSC state: only the named method (plus
  ``__init__``) may write the attribute; reads are free (RA201).

The pass builds one access summary per class (every ``self.X`` read,
write, container mutation, with the set of ``self.<lock>`` regions held
at that point) and checks, within :data:`repro.analysis.project.CONCURRENCY_SCOPE`:

* RA201 — guarded attribute accessed without its declared lock (or
  spsc attribute written outside its declared writer);
* RA202 — an attribute that *escapes* to another thread of control
  (``threading.Thread(target=self.m)``, ``pool.submit(self.m, ...)``,
  ``ctx.Process(target=self.m)``) is written after construction with no
  lock held and no guarded-by declaration;
* RA203 — the same guarded attribute is touched in two *disjoint*
  acquisitions of its lock within one method (check-then-act across a
  lock release: the first observation may be stale by the second hold);
* RA204 — an externally supplied callable (a stored callable attribute,
  or a local pulled out of a ``self`` container) is invoked while a lock
  is held — re-entrant or slow callbacks deadlock or convoy the lock;
* RA205 — an attribute the class demonstrably guards (written under a
  lock region) carries no ``# guarded-by:`` declaration, or a
  declaration references an unknown lock/writer;
* RA206 — two locks of one class are acquired in both nesting orders in
  different methods (static deadlock potential; the dynamic witness in
  :mod:`repro.analysis.racecheck` covers cross-class orders).

This is the static half of the Eraser-style design: annotations make the
intended lock-set explicit, the checker compares every access against it.
The dynamic half (the ``REPRO_RACECHECK=1`` lock-order witness) lives in
:mod:`repro.analysis.racecheck`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis import project
from repro.analysis.engine import Finding, LintContext, Rule, Severity, register
from repro.analysis.rules import _is_self_attr, _lock_attrs, _MUTATORS

__all__ = [
    "GuardSpec",
    "GuardedAttrRule",
    "EscapeAnalysisRule",
    "LockReentryRule",
    "CallbackUnderLockRule",
    "MissingGuardDeclRule",
    "LockOrderRule",
    "CONCURRENCY_RULE_CODES",
    "guarded_specs",
    "guarded_specs_from_source",
]

#: The codes ``repro lint --concurrency`` selects.
CONCURRENCY_RULE_CODES: Tuple[str, ...] = (
    "RA201",
    "RA202",
    "RA203",
    "RA204",
    "RA205",
    "RA206",
)

GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?P<spec>[A-Za-z0-9_:.\-]+)")


@dataclass(frozen=True)
class GuardSpec:
    """One parsed ``# guarded-by:`` declaration."""

    raw: str
    lock: Optional[str] = None  # lock attribute name (lock discipline)
    writer: Optional[str] = None  # sole writer method (spsc discipline)

    @staticmethod
    def parse(raw: str) -> "GuardSpec":
        if raw.startswith("spsc:"):
            return GuardSpec(raw=raw, writer=raw[len("spsc:") :])
        return GuardSpec(raw=raw, lock=raw)


def guarded_specs(
    cls: ast.ClassDef, lines: Sequence[str]
) -> Dict[str, GuardSpec]:
    """Collect ``# guarded-by:`` declarations for a class.

    A declaration sits on any line that assigns ``self.X`` (usually in
    ``__init__``) or on a class-level annotated attribute.
    """
    specs: Dict[str, GuardSpec] = {}

    def line_spec(lineno: int) -> Optional[GuardSpec]:
        if 1 <= lineno <= len(lines):
            match = GUARDED_BY_RE.search(lines[lineno - 1])
            if match is not None:
                return GuardSpec.parse(match.group("spec"))
        return None

    for node in ast.walk(cls):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            attr: Optional[str] = None
            if _is_self_attr(target):
                assert isinstance(target, ast.Attribute)
                attr = target.attr
            elif isinstance(target, ast.Name) and node in cls.body:
                attr = target.id  # class-level declaration
            if attr is None:
                continue
            spec = line_spec(node.lineno)
            if spec is not None:
                specs.setdefault(attr, spec)
    return specs


def guarded_specs_from_source(
    source: str, class_name: str
) -> Dict[str, GuardSpec]:
    """Parse declarations out of raw source — the dynamic witness uses this
    (via ``inspect.getsource``) so the runtime barrier enforces exactly the
    annotations the static rules check."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return {}
    lines = source.splitlines()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return guarded_specs(node, lines)
    return {}


# --------------------------------------------------------------------------
# per-class access summaries


@dataclass(frozen=True)
class Access:
    """One ``self.X`` touch inside a method."""

    attr: str
    node: ast.AST
    is_write: bool
    locks_held: FrozenSet[str]
    #: Acquisition ids of each currently-held lock: ``{lock: region_id}``.
    #: Two accesses under the same lock but different ids sit in disjoint
    #: ``with`` regions — the lock was released in between (RA203).
    hold_ids: Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class LockEvent:
    """One nested lock acquisition: ``inner`` acquired while ``outer`` held."""

    outer: str
    inner: str
    node: ast.AST


class _MethodSummary:
    """Accesses, nested-acquisition events, and under-lock calls of one
    method, produced by a single region-tracking walk."""

    __slots__ = ("name", "accesses", "lock_events", "calls_under_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.accesses: List[Access] = []
        self.lock_events: List[LockEvent] = []
        #: (call node, locks held) for every Call evaluated under >=1 lock.
        self.calls_under_lock: List[Tuple[ast.Call, FrozenSet[str]]] = []


def _summarize_method(
    method: ast.FunctionDef | ast.AsyncFunctionDef, locks: Set[str]
) -> _MethodSummary:
    summary = _MethodSummary(method.name)
    consumed: Set[int] = set()  # id() of Attribute nodes folded into a write
    next_region = [0]

    def record(attr: str, node: ast.AST, is_write: bool, held: Dict[str, int]) -> None:
        summary.accesses.append(
            Access(
                attr=attr,
                node=node,
                is_write=is_write,
                locks_held=frozenset(held),
                hold_ids=tuple(sorted(held.items())),
            )
        )

    def classify(node: ast.AST, held: Dict[str, int]) -> None:
        # writes that subsume an inner Attribute load
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, (ast.Store, ast.Del))
            and isinstance(node.value, ast.Attribute)
            and _is_self_attr(node.value)
            and node.value.attr not in locks
        ):
            consumed.add(id(node.value))
            record(node.value.attr, node, True, held)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and isinstance(node.func.value, ast.Attribute)
            and _is_self_attr(node.func.value)
            and node.func.value.attr not in locks
        ):
            consumed.add(id(node.func.value))
            record(node.func.value.attr, node, True, held)
        elif (
            isinstance(node, ast.Attribute)
            and _is_self_attr(node)
            and node.attr not in locks
            and id(node) not in consumed
        ):
            record(node.attr, node, isinstance(node.ctx, (ast.Store, ast.Del)), held)
        if isinstance(node, ast.Call) and held:
            summary.calls_under_lock.append((node, frozenset(held)))

    def walk(nodes: Sequence[ast.AST], held: Dict[str, int]) -> None:
        for node in nodes:
            classify(node, held)
            if isinstance(node, (ast.With, ast.AsyncWith)):
                grabbed: List[str] = []
                for item in node.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and _is_self_attr(expr)
                        and expr.attr in locks
                    ):
                        grabbed.append(expr.attr)
                        for outer in held:
                            if outer != expr.attr:
                                summary.lock_events.append(
                                    LockEvent(outer=outer, inner=expr.attr, node=expr)
                                )
                # the acquire expressions themselves run outside the region
                walk(list(node.items), held)
                inner = dict(held)
                for name in grabbed:
                    next_region[0] += 1
                    inner[name] = next_region[0]
                walk(list(node.body), inner)
            else:
                walk(list(ast.iter_child_nodes(node)), held)

    walk(list(method.body), {})
    return summary


def _methods(cls: ast.ClassDef) -> List[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _entry_targets(cls: ast.ClassDef) -> Dict[str, str]:
    """Attributes/methods handed to another thread of control.

    Returns ``{name: how}`` where ``name`` is a method name (for
    ``target=self.m`` / ``pool.submit(self.m, ...)``) or an attribute root
    (for ``target=self.x.y`` — ``x`` escapes), and ``how`` is a short
    description for the finding message.
    """
    entries: Dict[str, str] = {}

    def note(expr: ast.expr, how: str) -> None:
        # self.m  -> m escapes;  self.x.y -> x escapes (root attribute)
        cur = expr
        while isinstance(cur, ast.Attribute) and not _is_self_attr(cur):
            cur = cur.value
        if _is_self_attr(cur):
            assert isinstance(cur, ast.Attribute)
            entries.setdefault(cur.attr, how)

    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if callee in project.THREAD_SPAWN_CALLEES:
            for kw in node.keywords:
                if kw.arg == "target":
                    note(kw.value, f"{callee}(target=...)")
        elif callee == "submit" and node.args:
            note(node.args[0], "executor submit()")
    return entries


# --------------------------------------------------------------------------
# shared rule plumbing


class _ConcurrencyRule(Rule):
    """Base: iterate classes in CONCURRENCY_SCOPE with their summaries."""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not project.in_scope(ctx.module_path, project.CONCURRENCY_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self.check_class(ctx, node)

    def check_class(
        self, ctx: LintContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        raise NotImplementedError


@register
class GuardedAttrRule(_ConcurrencyRule):
    code = "RA201"
    name = "guarded-by-discipline"
    severity = Severity.ERROR
    description = (
        "an attribute declared `# guarded-by: <lock>` accessed outside "
        "`with self.<lock>:` (or `# guarded-by: spsc:<m>` written outside "
        "its declared writer method)"
    )

    def check_class(
        self, ctx: LintContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        specs = guarded_specs(cls, ctx.lines)
        if not specs:
            return
        locks = _lock_attrs(cls)
        for method in _methods(cls):
            if method.name == "__init__":
                continue  # construction happens-before publication
            summary = _summarize_method(method, locks)
            for access in summary.accesses:
                spec = specs.get(access.attr)
                if spec is None:
                    continue
                if spec.lock is not None and spec.lock not in access.locks_held:
                    verb = "written" if access.is_write else "read"
                    yield ctx.finding(
                        self,
                        access.node,
                        f"{cls.name}.{access.attr} is declared `# guarded-by: "
                        f"{spec.lock}` but {verb} without holding "
                        f"self.{spec.lock} in {method.name}()",
                    )
                elif (
                    spec.writer is not None
                    and access.is_write
                    and method.name != spec.writer
                ):
                    yield ctx.finding(
                        self,
                        access.node,
                        f"{cls.name}.{access.attr} is declared `# guarded-by: "
                        f"spsc:{spec.writer}` (single writer) but written in "
                        f"{method.name}()",
                    )


@register
class EscapeAnalysisRule(_ConcurrencyRule):
    code = "RA202"
    name = "escaping-state"
    severity = Severity.ERROR
    description = (
        "an attribute reachable from another thread (Thread target, "
        "executor submit, worker spawn) is accessed after construction "
        "with no lock held and no `# guarded-by:` declaration"
    )

    def check_class(
        self, ctx: LintContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        entries = _entry_targets(cls)
        if not entries:
            return
        locks = _lock_attrs(cls)
        specs = guarded_specs(cls, ctx.lines)
        methods = _methods(cls)
        entry_methods = [m for m in methods if m.name in entries]
        if not entry_methods:
            # targets are attribute roots only (e.g. self._httpd.serve_forever):
            # the root attribute escapes, but has no body of its own to scan.
            entry_methods = []
        summaries = {m.name: _summarize_method(m, locks) for m in methods}
        escaping: Dict[str, str] = {}  # attr -> how it escaped
        for name, how in entries.items():
            if name in summaries:  # a method escaped: its accesses are remote
                for access in summaries[name].accesses:
                    escaping.setdefault(access.attr, f"via {how} -> {name}()")
            else:  # an attribute root escaped directly
                escaping.setdefault(name, f"via {how}")
        for attr in sorted(escaping):
            if attr in specs:
                continue  # declared: RA201 enforces its discipline
            post_init_writes = [
                (m, a)
                for m in methods
                if m.name != "__init__"
                for a in summaries[m.name].accesses
                if a.attr == attr and a.is_write
            ]
            if not post_init_writes:
                continue  # effectively immutable after publication
            for method in methods:
                if method.name == "__init__":
                    continue
                for access in summaries[method.name].accesses:
                    if access.attr != attr or access.locks_held:
                        continue
                    verb = "written" if access.is_write else "read"
                    yield ctx.finding(
                        self,
                        access.node,
                        f"{cls.name}.{attr} escapes to another thread "
                        f"({escaping[attr]}) but is {verb} without "
                        f"synchronization in {method.name}(); guard it with a "
                        "lock and declare `# guarded-by:`",
                    )


@register
class LockReentryRule(_ConcurrencyRule):
    code = "RA203"
    name = "lock-released-reentry"
    severity = Severity.ERROR
    description = (
        "a guarded attribute touched under two disjoint acquisitions of its "
        "lock in one method — state observed under the first hold may be "
        "stale after the release (check-then-act hazard)"
    )

    def check_class(
        self, ctx: LintContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        specs = guarded_specs(cls, ctx.lines)
        lock_specs = {a: s.lock for a, s in specs.items() if s.lock is not None}
        if not lock_specs:
            return
        locks = _lock_attrs(cls)
        for method in _methods(cls):
            if method.name == "__init__":
                continue
            summary = _summarize_method(method, locks)
            seen_region: Dict[str, int] = {}  # attr -> first acquisition id
            for access in summary.accesses:
                lock = lock_specs.get(access.attr)
                if lock is None:
                    continue
                hold = dict(access.hold_ids).get(lock)
                if hold is None:
                    continue  # unguarded access: RA201's finding, not ours
                first = seen_region.setdefault(access.attr, hold)
                if hold != first:
                    yield ctx.finding(
                        self,
                        access.node,
                        f"{cls.name}.{access.attr} is re-examined under a "
                        f"re-acquired self.{lock} in {method.name}(); the "
                        "value observed under the earlier hold may be stale — "
                        "merge the critical sections or re-validate",
                    )


@register
class CallbackUnderLockRule(_ConcurrencyRule):
    code = "RA204"
    name = "callback-under-lock"
    severity = Severity.ERROR
    description = (
        "an externally supplied callable (stored callable attribute, or a "
        "local pulled out of a self container) invoked while holding a lock; "
        "re-entrant or slow callbacks deadlock the lock — snapshot under the "
        "lock, call after release"
    )

    def check_class(
        self, ctx: LintContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        locks = _lock_attrs(cls)
        if not locks:
            return
        method_names = {m.name for m in _methods(cls)}
        stored_attrs = self._assigned_attrs(cls)
        for method in _methods(cls):
            from_self = self._locals_from_self(method, locks)
            summary = _summarize_method(method, locks)
            for call, held in summary.calls_under_lock:
                func = call.func
                if (
                    _is_self_attr(func)
                    and isinstance(func, ast.Attribute)
                    and func.attr not in method_names
                    and func.attr in stored_attrs
                ):
                    name = f"self.{func.attr}"
                elif isinstance(func, ast.Name) and func.id in from_self:
                    name = func.id
                else:
                    continue
                lock = sorted(held)[0]
                yield ctx.finding(
                    self,
                    call,
                    f"callback {name}() invoked while holding self.{lock} in "
                    f"{cls.name}.{method.name}(); copy it under the lock and "
                    "invoke after release",
                )

    @staticmethod
    def _assigned_attrs(cls: ast.ClassDef) -> Set[str]:
        attrs: Set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if _is_self_attr(target):
                        assert isinstance(target, ast.Attribute)
                        attrs.add(target.attr)
            elif isinstance(node, ast.AnnAssign) and _is_self_attr(node.target):
                assert isinstance(node.target, ast.Attribute)
                attrs.add(node.target.attr)
        return attrs

    @staticmethod
    def _locals_from_self(
        method: ast.FunctionDef | ast.AsyncFunctionDef, locks: Set[str]
    ) -> Set[str]:
        """Local names bound from a non-lock ``self`` attribute expression
        (``cb = self._callbacks[qid]``, ``for cb in self._callbacks:``)."""

        def roots_in_self(expr: ast.expr) -> bool:
            return any(
                _is_self_attr(sub) and sub.attr not in locks
                for sub in ast.walk(expr)
                if isinstance(sub, ast.Attribute)
            )

        names: Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and roots_in_self(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and roots_in_self(
                node.iter
            ):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
                elif isinstance(node.target, ast.Tuple):
                    names.update(
                        elt.id
                        for elt in node.target.elts
                        if isinstance(elt, ast.Name)
                    )
        return names


@register
class MissingGuardDeclRule(_ConcurrencyRule):
    code = "RA205"
    name = "missing-guarded-by"
    severity = Severity.ERROR
    description = (
        "an attribute written under a lock region has no `# guarded-by:` "
        "declaration (or a declaration names an unknown lock/writer); the "
        "convention must stay machine-checkable"
    )

    def check_class(
        self, ctx: LintContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        locks = _lock_attrs(cls)
        specs = guarded_specs(cls, ctx.lines)
        # declaration hygiene first — these fire with or without locks
        method_names = {m.name for m in _methods(cls)}
        for attr in sorted(specs):
            spec = specs[attr]
            if spec.lock is not None and spec.lock not in locks:
                yield ctx.finding(
                    self,
                    cls,
                    f"{cls.name}.{attr} declares `# guarded-by: {spec.lock}` "
                    f"but {cls.name} has no lock attribute {spec.lock!r}",
                )
            elif spec.writer is not None and spec.writer not in method_names:
                yield ctx.finding(
                    self,
                    cls,
                    f"{cls.name}.{attr} declares `# guarded-by: "
                    f"spsc:{spec.writer}` but {cls.name} has no method "
                    f"{spec.writer}()",
                )
        if not locks:
            return
        inferred: Dict[str, Tuple[str, ast.AST]] = {}
        for method in _methods(cls):
            summary = _summarize_method(method, locks)
            for access in summary.accesses:
                if access.is_write and access.locks_held:
                    inferred.setdefault(
                        access.attr, (sorted(access.locks_held)[0], access.node)
                    )
        for attr in sorted(set(inferred) - set(specs)):
            lock, node = inferred[attr]
            yield ctx.finding(
                self,
                node,
                f"{cls.name}.{attr} is written under self.{lock} but carries "
                f"no declaration; add `# guarded-by: {lock}` to its __init__ "
                "assignment",
            )


@register
class LockOrderRule(_ConcurrencyRule):
    code = "RA206"
    name = "lock-order"
    severity = Severity.ERROR
    description = (
        "two locks of one class acquired in both nesting orders in "
        "different code paths — a cross-thread deadlock waiting for the "
        "right interleaving; pick one global order"
    )

    def check_class(
        self, ctx: LintContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        locks = _lock_attrs(cls)
        if len(locks) < 2:
            return
        events: List[LockEvent] = []
        for method in _methods(cls):
            events.extend(_summarize_method(method, locks).lock_events)
        edges = {(e.outer, e.inner) for e in events}
        flagged: Set[int] = set()
        for event in events:
            if (event.inner, event.outer) in edges and id(event.node) not in flagged:
                flagged.add(id(event.node))
                yield ctx.finding(
                    self,
                    event.node,
                    f"inconsistent lock order in {cls.name}: self.{event.outer} "
                    f"and self.{event.inner} are acquired in both orders; pick "
                    "one global order to rule out deadlock",
                )
