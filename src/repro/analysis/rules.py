"""The rule catalog: project invariants RA001–RA006 + generic hygiene.

Each rule encodes a contract the fuzzer (`repro.check`) can only probe
dynamically; here the same contract is enforced structurally at review
time.  Scopes and allowlists live in :mod:`repro.analysis.project` — the
rules themselves are plain AST visitors and know nothing about the repo
layout beyond what that module declares.

Static analysis is approximate by design: these rules favour *no false
positives on idiomatic code* over completeness (e.g. RA001 flags direct
iteration over a set display, not iteration over a variable that happens
to hold a set).  Justified exceptions use ``# repro: noqa[CODE]``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis import project
from repro.analysis.engine import Finding, LintContext, Rule, Severity, register

__all__ = [
    "DeterminismRule",
    "KernelIsolationRule",
    "LockDisciplineRule",
    "SnapshotImmutabilityRule",
    "FloatEqualityRule",
    "SlotsRule",
    "MutableDefaultRule",
    "BareExceptRule",
    "ShadowedBuiltinRule",
    "StaleNoqaRule",
]


# --------------------------------------------------------------------------
# shared AST helpers


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local binding names to qualified import targets.

    ``import time as t`` -> ``{"t": "time"}``; ``from time import time``
    -> ``{"time": "time.time"}``.  Used to resolve call sites back to the
    module-level function they name regardless of aliasing.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                binding = name.asname or name.name.split(".")[0]
                aliases[binding] = name.name if name.asname else name.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def _qualname(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a call target to a dotted qualified name, or None for local
    names the import table doesn't know about."""
    parts: List[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    base = aliases.get(cur.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _is_self_attr(node: ast.expr, attr: Optional[str] = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def _decorator_name(dec: ast.expr) -> Optional[str]:
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


# --------------------------------------------------------------------------
# RA001 — determinism on the replay-equivalence plane


_WALLCLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

_GLOBAL_RANDOM_FUNCS: FrozenSet[str] = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "seed",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
        "vonmisesvariate",
        "triangular",
        "getrandbits",
        "randbytes",
    }
)


@register
class DeterminismRule(Rule):
    code = "RA001"
    name = "determinism"
    severity = Severity.ERROR
    description = (
        "replay-critical code (core/, operators/, runtime/replay.py, durability/, "
        "obs/) must not read wall clocks, use the shared global RNG or unseeded "
        "random.Random(), or iterate directly over sets (wall clocks only: "
        "modules in WALLCLOCK_METADATA_ALLOWLIST are exempt; monotonic clocks "
        "only: modules under MONOTONIC_CLOCK_SCOPE are exempt)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not project.in_scope(ctx.module_path, project.DETERMINISM_SCOPE):
            return
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                qual = _qualname(node.func, aliases)
                if qual is None:
                    continue
                if qual in _WALLCLOCK_CALLS or qual.startswith("secrets."):
                    if (
                        qual in _WALLCLOCK_CALLS
                        and ctx.module_path in project.WALLCLOCK_METADATA_ALLOWLIST
                    ):
                        # Metadata-only carve-out (see project.py): the
                        # timestamp never feeds recovery or replay decisions.
                        continue
                    if (
                        qual in project.MONOTONIC_CLOCK_CALLS
                        and project.in_scope(
                            ctx.module_path, project.MONOTONIC_CLOCK_SCOPE
                        )
                    ):
                        # Monotonic-only carve-out (see project.py): span
                        # durations are instrumentation, never replayed;
                        # wall clocks and RNG still fire here.
                        continue
                    yield ctx.finding(
                        self, node, f"non-deterministic call {qual}() in replay-critical code"
                    )
                elif qual.startswith("random.") and qual[len("random.") :] in _GLOBAL_RANDOM_FUNCS:
                    yield ctx.finding(
                        self,
                        node,
                        f"{qual}() uses the shared global RNG; draw from a seeded "
                        "random.Random(seed) instance instead",
                    )
                elif qual == "random.Random" and not node.args and not node.keywords:
                    yield ctx.finding(
                        self,
                        node,
                        "random.Random() without a seed is OS-entropy seeded; pass an "
                        "explicit seed in replay-critical code",
                    )
                elif qual == "random.SystemRandom":
                    yield ctx.finding(
                        self, node, "random.SystemRandom is inherently non-deterministic"
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iteration(ctx, gen.iter)

    def _check_iteration(self, ctx: LintContext, it: ast.expr) -> Iterator[Finding]:
        if isinstance(it, (ast.Set, ast.SetComp)):
            yield ctx.finding(
                self,
                it,
                "iteration over a set display is hash-order dependent; sort it or use "
                "an ordered container",
            )
        elif (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id in ("set", "frozenset")
        ):
            yield ctx.finding(
                self,
                it,
                f"iteration over {it.func.id}(...) is hash-order dependent; sort it or "
                "use an ordered container",
            )


# --------------------------------------------------------------------------
# RA002 — kernel isolation


@register
class KernelIsolationRule(Rule):
    code = "RA002"
    name = "kernel-isolation"
    severity = Severity.ERROR
    description = (
        "numpy may be imported only by the kernel allowlist "
        "(fastpath/kernels.py, histogram/kmeans.py); everyone else goes through "
        "repro.fastpath.kernels.get_numpy()"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        allowed = ctx.module_path in project.NUMPY_IMPORT_ALLOWLIST
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "numpy" or name.name.startswith("numpy."):
                        if not allowed:
                            yield ctx.finding(
                                self,
                                node,
                                f"import of {name.name} outside the kernel allowlist; "
                                "route numpy access through repro.fastpath.kernels",
                            )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module == "numpy" or node.module.startswith("numpy."):
                    if not allowed:
                        yield ctx.finding(
                            self,
                            node,
                            f"import from {node.module} outside the kernel allowlist; "
                            "route numpy access through repro.fastpath.kernels",
                        )
                elif node.module == project.KERNEL_HANDLE_MODULE and not allowed:
                    for name in node.names:
                        if name.name.startswith("_"):
                            yield ctx.finding(
                                self,
                                node,
                                f"private kernel handle {name.name} imported from "
                                f"{project.KERNEL_HANDLE_MODULE}; use the public "
                                "get_numpy()/MIN_VECTOR API",
                            )


# --------------------------------------------------------------------------
# RA003 — lock discipline


def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attribute names assigned a lock constructor in the class —
    ``*.Lock()``/``*.RLock()``/``*.Condition()`` or the racecheck
    factories ``new_lock()``/``new_rlock()`` (project.LOCK_FACTORY_NAMES)."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            name = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None
            )
            if name in project.LOCK_FACTORY_NAMES:
                for target in node.targets:
                    if _is_self_attr(target):
                        assert isinstance(target, ast.Attribute)
                        locks.add(target.attr)
    return locks


def _walk_lock_regions(
    nodes: Iterable[ast.AST], locks: Set[str], in_lock: bool
) -> Iterator[Tuple[ast.AST, bool]]:
    """Yield (node, holds_lock) for every node in ``nodes`` and their
    descendants, tracking ``with self.<lock>:`` regions.  Each node is
    yielded exactly once; the ``with`` header itself (the lock-acquire
    expression) counts as outside the region, its body as inside."""
    for node in nodes:
        yield (node, in_lock)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            grabs = any(
                isinstance(item.context_expr, ast.Attribute)
                and _is_self_attr(item.context_expr)
                and item.context_expr.attr in locks
                for item in node.items
            )
            yield from _walk_lock_regions(node.items, locks, in_lock)
            yield from _walk_lock_regions(node.body, locks, in_lock or grabs)
        else:
            yield from _walk_lock_regions(ast.iter_child_nodes(node), locks, in_lock)


@register
class LockDisciplineRule(Rule):
    code = "RA003"
    name = "lock-discipline"
    severity = Severity.ERROR
    description = (
        "in runtime/, attributes written under `with self._lock` must not be "
        "read or written outside a lock region (outside __init__)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not project.in_scope(ctx.module_path, project.LOCK_DISCIPLINE_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: LintContext, cls: ast.ClassDef) -> Iterator[Finding]:
        locks = _lock_attrs(cls)
        if not locks:
            return
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        guarded: Set[str] = set()
        for method in methods:
            for node, in_lock in self._iter_method(method, locks):
                if not in_lock:
                    continue
                # direct rebinds: `self.x = ...` under the lock
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, (ast.Store, ast.Del))
                    and _is_self_attr(node)
                    and node.attr not in locks
                ):
                    guarded.add(node.attr)
                # container mutations: `self.x[k] = ...`, `self.x.append(...)`
                elif (
                    isinstance(node, ast.Subscript)
                    and isinstance(node.ctx, (ast.Store, ast.Del))
                    and isinstance(node.value, ast.Attribute)
                    and _is_self_attr(node.value)
                    and node.value.attr not in locks
                ):
                    guarded.add(node.value.attr)
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                    and isinstance(node.func.value, ast.Attribute)
                    and _is_self_attr(node.func.value)
                    and node.func.value.attr not in locks
                ):
                    guarded.add(node.func.value.attr)
        if not guarded:
            return
        for method in methods:
            if method.name == "__init__":
                continue  # construction happens-before publication to other threads
            for node, in_lock in self._iter_method(method, locks):
                if (
                    not in_lock
                    and isinstance(node, ast.Attribute)
                    and _is_self_attr(node)
                    and node.attr in guarded
                ):
                    verb = "written" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
                    yield ctx.finding(
                        self,
                        node,
                        f"{cls.name}.{node.attr} is lock-guarded but {verb} outside "
                        f"`with self.{sorted(locks)[0]}` in {method.name}()",
                    )

    @staticmethod
    def _iter_method(
        method: ast.FunctionDef | ast.AsyncFunctionDef, locks: Set[str]
    ) -> Iterator[Tuple[ast.AST, bool]]:
        return _walk_lock_regions(method.body, locks, False)


# --------------------------------------------------------------------------
# RA004 — snapshot immutability


_MUTATORS: FrozenSet[str] = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "add",
        "discard",
    }
)


@register
class SnapshotImmutabilityRule(Rule):
    code = "RA004"
    name = "snapshot-immutability"
    severity = Severity.ERROR
    description = (
        "values returned by group_table()/flat_snapshot() are shared caches; "
        "mutating them (append/sort/item assignment/...) corrupts later readers"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        scopes: List[ast.AST] = [ctx.tree]
        scopes.extend(
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            yield from self._check_scope(ctx, scope)

    @staticmethod
    def _local_walk(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope's tree without descending into nested functions
        (each nested function is its own scope and checked separately)."""
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            yield from SnapshotImmutabilityRule._local_walk(child)

    def _check_scope(self, ctx: LintContext, scope: ast.AST) -> Iterator[Finding]:
        # pass 1: any name ever bound to a snapshot call in this scope is
        # tainted for the whole scope (conservative: no kill on rebind)
        tainted: Set[str] = set()
        for node in self._local_walk(scope):
            if isinstance(node, ast.Assign) and self._returns_snapshot(node.value):
                for target in node.targets:
                    self._taint_target(target, tainted)
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and self._returns_snapshot(node.value)
            ):
                self._taint_target(node.target, tainted)
        # pass 2: flag mutations of tainted names or of snapshot calls
        for node in self._local_walk(scope):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATORS and self._is_snapshot_expr(
                    node.func.value, tainted
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f".{node.func.attr}() mutates a shared snapshot returned by "
                        "group_table()/flat_snapshot(); copy it first",
                    )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                if self._is_snapshot_expr(node.value, tainted):
                    yield ctx.finding(
                        self,
                        node,
                        "item assignment into a shared snapshot returned by "
                        "group_table()/flat_snapshot(); copy it first",
                    )

    @staticmethod
    def _returns_snapshot(value: ast.expr) -> bool:
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            return value.func.attr in project.SNAPSHOT_METHODS
        return False

    @staticmethod
    def _taint_target(target: ast.expr, tainted: Set[str]) -> None:
        if isinstance(target, ast.Name):
            tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    tainted.add(elt.id)

    @classmethod
    def _is_snapshot_expr(cls, node: ast.expr, tainted: Set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Subscript):
            return cls._is_snapshot_expr(node.value, tainted)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            return node.func.attr in project.SNAPSHOT_METHODS
        return False


# --------------------------------------------------------------------------
# RA005 — float equality on interval endpoints


@register
class FloatEqualityRule(Rule):
    code = "RA005"
    name = "endpoint-float-equality"
    severity = Severity.ERROR
    description = (
        "== / != against interval endpoints (.lo/.hi) outside the canonical "
        "comparators in repro.core.intervals; exact equality is only sound for "
        "verbatim-copied endpoints"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.module_path in project.FLOAT_EQ_ALLOWLIST:
            return
        helpers = ", ".join(project.CANONICAL_COMPARATORS)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[i], operands[i + 1]):
                    if isinstance(side, ast.Attribute) and side.attr in ("lo", "hi"):
                        yield ctx.finding(
                            self,
                            node,
                            f"float equality against .{side.attr}; use the canonical "
                            f"comparators ({helpers}) from repro.core.intervals",
                        )
                        break


# --------------------------------------------------------------------------
# RA006 — __slots__ on hot-path classes


_SLOTS_EXEMPT_BASES: FrozenSet[str] = frozenset(
    {
        "Protocol",
        "Exception",
        "BaseException",
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "TypedDict",
        "NamedTuple",
    }
)


@register
class SlotsRule(Rule):
    code = "RA006"
    name = "hot-path-slots"
    severity = Severity.ERROR
    description = (
        "classes in hot-path modules must declare __slots__ (or be "
        "@dataclass(slots=True)): instances are allocated in bulk and attribute "
        "typos must fail loudly"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.module_path not in project.HOTPATH_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and not self._has_slots(node):
                yield ctx.finding(
                    self,
                    node,
                    f"hot-path class {node.name} does not declare __slots__",
                )

    @staticmethod
    def _has_slots(cls: ast.ClassDef) -> bool:
        for base in cls.bases:
            if isinstance(base, ast.Subscript):  # Protocol[T], Generic[T], ...
                base = base.value
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None
            )
            if name in _SLOTS_EXEMPT_BASES or (name and name.endswith("Error")):
                return True
        for dec in cls.decorator_list:
            if _decorator_name(dec) == "dataclass" and isinstance(dec, ast.Call):
                for kw in dec.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        return True
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                    return True
        return False


# --------------------------------------------------------------------------
# generic hygiene


@register
class MutableDefaultRule(Rule):
    code = "RA101"
    name = "mutable-default-arg"
    severity = Severity.WARNING
    description = "mutable default argument ([] / {} / set()) shared across calls"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                        yield ctx.finding(
                            self, default, f"mutable default argument in {node.name}()"
                        )
                    elif (
                        isinstance(default, ast.Call)
                        and isinstance(default.func, ast.Name)
                        and default.func.id in ("list", "dict", "set")
                    ):
                        yield ctx.finding(
                            self, default, f"mutable default argument in {node.name}()"
                        )


@register
class BareExceptRule(Rule):
    code = "RA102"
    name = "bare-except"
    severity = Severity.WARNING
    description = "bare `except:` swallows KeyboardInterrupt/SystemExit"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self, node, "bare except:; catch Exception (or narrower) instead"
                )


_SHADOWABLE_BUILTINS: FrozenSet[str] = frozenset(
    {
        "list",
        "dict",
        "set",
        "tuple",
        "id",
        "type",
        "input",
        "object",
        "filter",
        "map",
        "sum",
        "str",
        "int",
        "float",
        "bool",
        "bytes",
        "hash",
        "next",
        "iter",
        "vars",
        "zip",
        "open",
        "print",
    }
)


@register
class StaleNoqaRule(Rule):
    """RA104 — a ``# repro: noqa`` pragma that suppresses nothing.

    Stale suppressions are worse than none: they read as "a finding was
    judged acceptable here" when in fact the finding no longer exists (the
    code was fixed, the rule's scope changed, or the code never fired), and
    they silently swallow the *next* genuine finding on the line.  The rule
    re-runs every other registered rule on the file and flags each
    suppressed code that did not fire on its line.

    A bare pragma cannot silence this rule (``bare_noqa_exempt``); an
    explicit ``noqa[RA104]`` on the line still can, so deliberate
    placeholders remain expressible.
    """

    code = "RA104"
    name = "stale-noqa"
    severity = Severity.WARNING
    bare_noqa_exempt = True
    description = (
        "a # repro: noqa pragma whose suppressed rule(s) no longer fire on "
        "that line; remove the stale suppression"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        pragmas = ctx.noqa_pragmas()
        if not pragmas:
            return
        from repro.analysis.engine import all_rules

        fired: Dict[int, Set[str]] = {}
        for rule in all_rules():
            if rule.code == self.code:
                continue
            for f in rule.check(ctx):
                fired.setdefault(f.line, set()).add(f.rule)
        for lineno in sorted(pragmas):
            codes = pragmas[lineno]
            hit = fired.get(lineno, set())
            if not codes:  # bare noqa
                if not hit:
                    yield self._at(
                        ctx, lineno, "stale suppression: bare `# repro: noqa` "
                        "suppresses nothing on this line"
                    )
                continue
            for code in sorted(codes - {self.code}):
                if code not in hit:
                    yield self._at(
                        ctx,
                        lineno,
                        f"stale suppression: `# repro: noqa[{code}]` suppresses "
                        "nothing on this line",
                    )

    def _at(self, ctx: LintContext, lineno: int, message: str) -> Finding:
        text = ctx.line_text(lineno)
        col = text.find("#")
        return Finding(
            rule=self.code,
            path=ctx.path,
            line=lineno,
            col=col if col >= 0 else 0,
            message=message,
            severity=self.severity,
        )


@register
class ShadowedBuiltinRule(Rule):
    code = "RA103"
    name = "shadowed-builtin"
    severity = Severity.WARNING
    description = "binding a name that shadows a python builtin (list, dict, id, ...)"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id in _SHADOWABLE_BUILTINS:
                    yield ctx.finding(
                        self, node, f"assignment shadows builtin {node.id!r}"
                    )
            elif isinstance(node, ast.arg) and node.arg in _SHADOWABLE_BUILTINS:
                yield ctx.finding(
                    self, node, f"argument shadows builtin {node.arg!r}"
                )
