"""Baseline file with a ratchet: pre-existing debt is tolerated, growth is not.

The baseline maps finding *fingerprints* (rule + path + message, no line
numbers — see :attr:`Finding.fingerprint`) to occurrence counts.  A lint
run fails only on findings beyond the baselined count for their
fingerprint; when debt is paid down, ``--update-baseline`` shrinks the
file, and the ratchet makes the lower count the new ceiling.  The file is
committed next to the code so review sees debt changes as diffs.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from repro.analysis.engine import Finding

__all__ = ["Baseline", "BaselineDelta", "DEFAULT_BASELINE_NAME"]

#: Where ``repro lint`` looks for a baseline when ``--baseline`` is not given.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_VERSION = 1


@dataclass
class BaselineDelta:
    """Outcome of checking findings against a baseline."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    #: fingerprints whose baselined count exceeds the current count —
    #: paid-down debt the ratchet should reclaim via --update-baseline.
    stale: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.new


class Baseline:
    """A fingerprint -> allowed-count table with JSON persistence."""

    __slots__ = ("counts",)

    def __init__(self, counts: Dict[str, int] | None = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != _VERSION:
            raise ValueError(f"unsupported baseline file {path}")
        counts = data.get("findings", {})
        if not isinstance(counts, dict):
            raise ValueError(f"malformed baseline file {path}")
        return cls({str(k): int(v) for k, v in counts.items()})

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(dict(Counter(f.fingerprint for f in findings)))

    def save(self, path: Path) -> None:
        payload = {
            "version": _VERSION,
            "comment": (
                "repro lint baseline: existing debt, keyed by finding "
                "fingerprint. The ratchet only ever lets counts shrink; "
                "regenerate with `repro lint --update-baseline`."
            ),
            "findings": {k: self.counts[k] for k in sorted(self.counts)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def check(self, findings: Sequence[Finding]) -> BaselineDelta:
        """Split findings into baselined vs new, and report stale debt."""
        delta = BaselineDelta()
        seen: Counter[str] = Counter()
        for f in findings:
            seen[f.fingerprint] += 1
            if seen[f.fingerprint] <= self.counts.get(f.fingerprint, 0):
                delta.baselined.append(f)
            else:
                delta.new.append(f)
        for fingerprint, allowed in self.counts.items():
            if seen[fingerprint] < allowed:
                delta.stale[fingerprint] = allowed - seen[fingerprint]
        return delta

    def ratchet(self, findings: Sequence[Finding]) -> "Baseline":
        """The updated baseline after a run.  The ratchet: a fingerprint's
        count never grows (current > baselined keeps the baselined ceiling,
        so regressions stay failing even after an update); counts shrink to
        the current value when debt is paid down, and fingerprints no longer
        seen drop out.  Genuinely new fingerprints are absorbed only by this
        explicit update — never implicitly during a check run."""
        current = Counter(f.fingerprint for f in findings)
        merged: Dict[str, int] = {}
        for fingerprint, count in current.items():
            allowed = self.counts.get(fingerprint)
            merged[fingerprint] = count if allowed is None else min(count, allowed)
        return Baseline(merged)
