"""repro.analysis — project-aware static analysis for the repro codebase.

An AST-based lint engine whose rules encode the contracts the rest of the
system relies on but can only test dynamically: replay determinism
(RA001), numpy kernel isolation (RA002), runtime lock discipline (RA003),
snapshot immutability (RA004), exact-float endpoint comparison (RA005),
``__slots__`` on the hot paths (RA006), generic hygiene (RA1xx), and
concurrency safety (RA201–RA206: guarded-by lock discipline,
shared-state escape analysis, lock-order checking — see
``repro.analysis.concurrency``).  The dynamic counterpart is the
``REPRO_RACECHECK=1`` lock-order witness in ``repro.analysis.racecheck``.
Exposed as the ``repro lint`` and ``repro racecheck`` CLI verbs; see
``docs/ANALYSIS.md`` for the rule catalog and the suppression/baseline
workflow.
"""

from repro.analysis.baseline import Baseline, BaselineDelta, DEFAULT_BASELINE_NAME
from repro.analysis.engine import (
    Finding,
    LintContext,
    Rule,
    Severity,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    rule_catalog,
)
from repro.analysis.report import render_catalog, render_human, render_json

__all__ = [
    "Baseline",
    "BaselineDelta",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintContext",
    "Rule",
    "Severity",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule_catalog",
    "render_catalog",
    "render_human",
    "render_json",
]
