"""Seeded generation of randomized operation sequences for the fuzzer.

An :class:`Op` is a small, JSON-serializable record of one mutation in one
of two domains:

* the **interval domain** — insert/delete intervals, change epsilon/alpha —
  drives the stabbing-partition maintainers and the hotspot tracker;
* the **engine domain** — insert/delete R and S rows, subscribe/unsubscribe
  band and select-join queries — drives the micro-batcher, the sharded
  system and the unsharded reference.

:func:`generate_ops` produces a deterministic sequence per seed, reusing
the :mod:`repro.workload` generators (Table 1 distributions, anchored
clustering, Zipf popularity) so fuzzed inputs look like the paper's
workloads rather than uniform noise.  Churn (deletions targeting recently
inserted items) and live-set caps keep sequences in the regime where the
dynamic maintainers actually reconstruct and the batcher actually
coalesces.

Every generated sequence is *well-formed*: ids are never reused, deletes
only target live ids, unsubscribes only live subscriptions.  The shrinker
preserves well-formedness via :func:`repro.check.runner.normalize_ops`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Sequence, Tuple

from repro.workload.generator import (
    clustered_intervals,
    make_band_join_queries,
    make_select_join_queries,
    spread_anchors,
)
from repro.workload.params import WorkloadParams
from repro.workload.zipf import ZipfSampler

# -- op kinds ----------------------------------------------------------------

INSERT_INTERVAL = "insert_interval"
DELETE_INTERVAL = "delete_interval"
SET_EPSILON = "set_epsilon"
SET_ALPHA = "set_alpha"
INSERT_R = "insert_r"
DELETE_R = "delete_r"
INSERT_S = "insert_s"
DELETE_S = "delete_s"
SUB_BAND = "sub_band"
SUB_SELECT = "sub_select"
UNSUB = "unsub"

INTERVAL_KINDS = frozenset({INSERT_INTERVAL, DELETE_INTERVAL, SET_EPSILON, SET_ALPHA})
ENGINE_KINDS = frozenset(
    {INSERT_R, DELETE_R, INSERT_S, DELETE_S, SUB_BAND, SUB_SELECT, UNSUB}
)
ALL_KINDS = INTERVAL_KINDS | ENGINE_KINDS


@dataclass(frozen=True)
class Op:
    """One fuzz operation.

    ``key`` identifies the item the op refers to (interval id, row id, or
    query id, each in its own namespace); ``values`` carries the numeric
    payload per kind:

    ==================  =========================================
    insert_interval     (lo, hi)
    delete_interval     ()
    set_epsilon         (epsilon,)
    set_alpha           (alpha,)
    insert_r            (a, b)
    delete_r            ()
    insert_s            (b, c)
    delete_s            ()
    sub_band            (band_lo, band_hi)
    sub_select          (a_lo, a_hi, c_lo, c_hi)
    unsub               ()
    ==================  =========================================
    """

    kind: str
    key: int = 0
    values: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "key": self.key, "values": list(self.values)}

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "Op":
        return Op(data["kind"], int(data.get("key", 0)),
                  tuple(float(v) for v in data.get("values", ())))


def ops_to_json(ops: Sequence[Op]) -> str:
    return json.dumps([op.to_json() for op in ops], indent=None)


def ops_from_json(text: str) -> List[Op]:
    return [Op.from_json(entry) for entry in json.loads(text)]


# -- generation --------------------------------------------------------------


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for :func:`generate_ops` (all deterministic per seed).

    The live-set caps bound the cost of the O(n^2) oracles; once a live set
    reaches its cap, the generator forces deletions until it shrinks.
    ``churn`` is the fraction of deletions that target a recently inserted
    item (within ``recent_window`` ops of the same domain) — the knob that
    exercises partition reconstruction under turnover and gives the
    micro-batcher insert+delete pairs to cancel.
    """

    seed: int = 0
    n_ops: int = 1000
    engine_fraction: float = 0.45
    delete_fraction: float = 0.35
    churn: float = 0.3
    recent_window: int = 12
    query_fraction: float = 0.08
    param_change_fraction: float = 0.01
    zipf_beta: float = 1.0
    n_anchors: int = 8
    uniform_interval_fraction: float = 0.2
    max_live_intervals: int = 300
    max_live_rows: int = 120
    max_live_queries: int = 40
    epsilon_choices: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0)
    alpha_choices: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.5)
    join_key_grid: int = 50
    band_len_mean: float = 500.0

    def with_ops(self, n_ops: int) -> "FuzzConfig":
        return replace(self, n_ops=n_ops)


@dataclass
class _LiveSet:
    """Ids live in one namespace, with insertion positions for churn."""

    entries: List[Tuple[int, int]] = field(default_factory=list)  # (pos, id)

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, position: int, key: int) -> None:
        self.entries.append((position, key))

    def pick_victim(self, rng: random.Random, position: int,
                    churn: float, window: int) -> int | None:
        if not self.entries:
            return None
        if rng.random() < churn:
            eligible = [i for i, (at, __) in enumerate(self.entries)
                        if position - at <= window]
        else:
            eligible = list(range(len(self.entries)))
        if not eligible:
            eligible = list(range(len(self.entries)))
        index = eligible[rng.randrange(len(eligible))]
        self.entries[index], self.entries[-1] = self.entries[-1], self.entries[index]
        return self.entries.pop()[1]


def generate_ops(config: FuzzConfig) -> List[Op]:
    """A deterministic well-formed op sequence per the config."""
    rng = random.Random(config.seed)
    params = WorkloadParams(
        seed=config.seed,
        join_key_grid=config.join_key_grid,
        band_len_mean=config.band_len_mean,
    )
    anchors = spread_anchors(params, config.n_anchors)
    sampler = ZipfSampler(config.n_anchors, config.zipf_beta)

    ops: List[Op] = []
    next_id: Dict[str, int] = {"interval": 0, "r": 0, "s": 0, "query": 0}
    live_intervals = _LiveSet()
    live_r = _LiveSet()
    live_s = _LiveSet()
    live_queries = _LiveSet()

    def fresh(namespace: str) -> int:
        key = next_id[namespace]
        next_id[namespace] = key + 1
        return key

    def interval_values() -> Tuple[float, float]:
        if rng.random() < config.uniform_interval_fraction:
            lo = rng.uniform(params.domain_lo, params.domain_hi)
            hi = min(lo + rng.uniform(0.0, 2_000.0), params.domain_hi)
            return (round(lo, 3), round(max(lo, hi), 3))
        iv = clustered_intervals(params, 1, anchors, rng, sampler=sampler)[0]
        return (iv.lo, iv.hi)

    def join_key() -> float:
        x = rng.uniform(params.domain_lo, params.domain_hi)
        step = params.domain_width / config.join_key_grid
        return float(round(params.domain_lo + round((x - params.domain_lo) / step) * step))

    def interval_op(position: int) -> Op:
        if rng.random() < config.param_change_fraction:
            if rng.random() < 0.5:
                return Op(SET_EPSILON, 0, (rng.choice(config.epsilon_choices),))
            return Op(SET_ALPHA, 0, (rng.choice(config.alpha_choices),))
        over = len(live_intervals) >= config.max_live_intervals
        if live_intervals and (over or rng.random() < config.delete_fraction):
            victim = live_intervals.pick_victim(
                rng, position, config.churn, config.recent_window
            )
            if victim is not None:
                return Op(DELETE_INTERVAL, victim)
        key = fresh("interval")
        op = Op(INSERT_INTERVAL, key, interval_values())
        live_intervals.add(position, key)
        return op

    def engine_query_op(position: int) -> Op:
        if live_queries and (
            len(live_queries) >= config.max_live_queries or rng.random() < 0.5
        ):
            victim = live_queries.pick_victim(rng, position, 0.0, 0)
            if victim is not None:
                return Op(UNSUB, victim)
        key = fresh("query")
        live_queries.add(position, key)
        if rng.random() < 0.5:
            band = make_band_join_queries(params, 1, rng)[0].band
            return Op(SUB_BAND, key, (band.lo, band.hi))
        query = make_select_join_queries(params, 1, rng)[0]
        return Op(
            SUB_SELECT,
            key,
            (query.range_a.lo, query.range_a.hi, query.range_c.lo, query.range_c.hi),
        )

    def engine_data_op(position: int) -> Op:
        relation = "r" if rng.random() < 0.5 else "s"
        live = live_r if relation == "r" else live_s
        over = len(live) >= config.max_live_rows
        if live and (over or rng.random() < config.delete_fraction):
            victim = live.pick_victim(rng, position, config.churn, config.recent_window)
            if victim is not None:
                return Op(DELETE_R if relation == "r" else DELETE_S, victim)
        key = fresh(relation)
        live.add(position, key)
        attr = float(round(rng.uniform(params.domain_lo, params.domain_hi)))
        if relation == "r":
            return Op(INSERT_R, key, (attr, join_key()))
        return Op(INSERT_S, key, (join_key(), attr))

    for position in range(config.n_ops):
        if rng.random() < config.engine_fraction:
            if rng.random() < config.query_fraction:
                ops.append(engine_query_op(position))
            else:
                ops.append(engine_data_op(position))
        else:
            ops.append(interval_op(position))
    return ops
