"""Fuzz targets: adapters mapping op sequences onto production structures.

Each target owns one system under test, declares the op ``kinds`` it
consumes, applies ops as they stream by, and exposes ``check(model)`` for
the runner's periodic invariant sweep.  Items are keyed by the op ``key``
(partitions and trackers identify items by object identity, so each target
materializes its *own* interval/row/query objects).

``TARGET_FACTORIES`` is the registry the runner builds targets from; tests
inject deliberately broken implementations by overriding an entry (e.g. a
``LazyStabbingPartition`` subclass with an off-by-one trigger) and checking
the fuzzer convicts it.
"""

from __future__ import annotations

import random
import shutil
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.check import ops as op_mod
from repro.check.ops import ENGINE_KINDS, INTERVAL_KINDS, Op
from repro.check.oracles import ModelState
from repro.check.probes import (
    check_batcher_drain,
    check_delta_equivalence,
    check_partition,
    check_tracker,
    expect,
)
from repro.core.hotspot_tracker import HotspotTracker
from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.multidim import Box, DynamicBoxPartition
from repro.core.refined_partition import RefinedStabbingPartition
from repro.engine.events import DataEvent, EventKind
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.system import ContinuousQuerySystem
from repro.engine.table import RTuple, STuple
from repro.runtime.batching import BatchEntry, MicroBatcher
from repro.runtime.replay import normalize_deltas
from repro.runtime.sharding import ShardedContinuousQuerySystem


class FuzzTarget:
    """Interface every target implements."""

    name: str = "?"
    kinds: FrozenSet[str] = frozenset()

    def apply(self, op: Op, model: ModelState) -> None:
        raise NotImplementedError

    def check(self, model: ModelState) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release external resources (processes, shared memory, temp dirs).

        The runner calls this for every target when a run ends, pass or
        fail; the default is a no-op since most targets are pure in-process
        structures."""


# -- interval-domain targets -------------------------------------------------


class _IntervalPartitionTarget(FuzzTarget):
    """Shared plumbing for targets maintaining a partition of intervals.

    ``SET_EPSILON`` rebuilds the structure from the live items under the new
    parameter (partitions fix epsilon at construction); ``SET_ALPHA`` is
    ignored except by the tracker subclass.
    """

    kinds = INTERVAL_KINDS

    def __init__(self) -> None:
        self._items: Dict[int, Interval] = {}
        self._epsilon = 1.0
        self._structure = self._build([])

    def _build(self, items: List[Interval]) -> Any:
        raise NotImplementedError

    def apply(self, op: Op, model: ModelState) -> None:
        if op.kind == op_mod.INSERT_INTERVAL:
            item = Interval(op.values[0], op.values[1])
            self._items[op.key] = item
            self._structure.insert(item)
        elif op.kind == op_mod.DELETE_INTERVAL:
            self._structure.delete(self._items.pop(op.key))
        elif op.kind == op_mod.SET_EPSILON:
            self._epsilon = op.values[0]
            self._structure = self._build(list(self._items.values()))

    def check(self, model: ModelState) -> None:
        check_partition(
            self.name, self._structure, model, epsilon=self._epsilon
        )


class LazyTarget(_IntervalPartitionTarget):
    name = "lazy"

    def __init__(
        self,
        partition_cls: type[Any] = LazyStabbingPartition,
        trigger: str = "relaxed",
    ) -> None:
        self._partition_cls = partition_cls
        self._trigger = trigger
        super().__init__()

    def _build(self, items: List[Interval]) -> Any:
        return self._partition_cls(
            items, epsilon=self._epsilon, trigger=self._trigger
        )


class RefinedTarget(_IntervalPartitionTarget):
    name = "refined"

    def __init__(self, partition_cls: type[Any] = RefinedStabbingPartition) -> None:
        self._partition_cls = partition_cls
        super().__init__()

    def _build(self, items: List[Interval]) -> Any:
        # Fixed treap seed keeps runs reproducible per op sequence.
        return self._partition_cls(items, epsilon=self._epsilon, seed=0)


class MultidimTarget(FuzzTarget):
    """Drives :class:`DynamicBoxPartition` with 1-D boxes, where the sweep
    heuristic coincides with the canonical partition and the (1 + eps) * tau
    bound is exact."""

    name = "multidim"
    kinds = INTERVAL_KINDS

    def __init__(self, partition_cls: type[Any] = DynamicBoxPartition) -> None:
        self._partition_cls = partition_cls
        self._items: Dict[int, Box] = {}
        self._epsilon = 1.0
        self._structure = self._build([])

    def _build(self, items: List[Box]) -> Any:
        return self._partition_cls(items, epsilon=self._epsilon)

    def apply(self, op: Op, model: ModelState) -> None:
        if op.kind == op_mod.INSERT_INTERVAL:
            box = Box((op.values[0],), (op.values[1],))
            self._items[op.key] = box
            self._structure.insert(box)
        elif op.kind == op_mod.DELETE_INTERVAL:
            self._structure.delete(self._items.pop(op.key))
        elif op.kind == op_mod.SET_EPSILON:
            self._epsilon = op.values[0]
            self._structure = self._build(list(self._items.values()))

    def check(self, model: ModelState) -> None:
        check_partition(
            self.name,
            self._structure,
            model,
            epsilon=self._epsilon,
            interval_of=lambda box: Interval(box.lo[0], box.hi[0]),
        )


class TrackerTarget(FuzzTarget):
    name = "tracker"
    kinds = INTERVAL_KINDS

    def __init__(self, tracker_cls: type[Any] = HotspotTracker) -> None:
        self._tracker_cls = tracker_cls
        self._items: Dict[int, Interval] = {}
        self._alpha = 0.2
        self._epsilon = 1.0
        self._tracker = self._build([])

    def _build(self, items: List[Interval]) -> Any:
        return self._tracker_cls(items, alpha=self._alpha, epsilon=self._epsilon)

    def apply(self, op: Op, model: ModelState) -> None:
        if op.kind == op_mod.INSERT_INTERVAL:
            item = Interval(op.values[0], op.values[1])
            self._items[op.key] = item
            self._tracker.insert(item)
        elif op.kind == op_mod.DELETE_INTERVAL:
            self._tracker.delete(self._items.pop(op.key))
        elif op.kind == op_mod.SET_EPSILON:
            self._epsilon = op.values[0]
            self._tracker = self._build(list(self._items.values()))
        elif op.kind == op_mod.SET_ALPHA:
            self._alpha = op.values[0]
            self._tracker = self._build(list(self._items.values()))

    def check(self, model: ModelState) -> None:
        check_tracker(self.name, self._tracker, model)


# -- engine-domain targets ---------------------------------------------------


class BatcherTarget(FuzzTarget):
    """Feeds row events through a :class:`MicroBatcher`, draining whenever
    it is due and fully at every check round, verifying each drain against
    the naive pair-cancellation model."""

    name = "batcher"
    kinds = frozenset(
        {op_mod.INSERT_R, op_mod.DELETE_R, op_mod.INSERT_S, op_mod.DELETE_S}
    )

    def __init__(self, max_batch: int = 16) -> None:
        self.batcher = MicroBatcher(max_batch)
        self._seq = 0
        # Shadow of the pending queue: (seq, relation, row_id, kind).
        self._shadow: List[Tuple[Any, ...]] = []
        self._rows: Dict[Tuple[Any, ...], object] = {}

    def apply(self, op: Op, model: ModelState) -> None:
        if op.kind == op_mod.INSERT_R:
            row = RTuple(op.key, op.values[0], op.values[1])
            self._rows[("R", op.key)] = row
            self._enqueue(DataEvent(EventKind.INSERT, "R", row), op.key)
        elif op.kind == op_mod.DELETE_R:
            row = self._rows.pop(("R", op.key))
            self._enqueue(DataEvent(EventKind.DELETE, "R", row), op.key)
        elif op.kind == op_mod.INSERT_S:
            row = STuple(op.key, op.values[0], op.values[1])
            self._rows[("S", op.key)] = row
            self._enqueue(DataEvent(EventKind.INSERT, "S", row), op.key)
        elif op.kind == op_mod.DELETE_S:
            row = self._rows.pop(("S", op.key))
            self._enqueue(DataEvent(EventKind.DELETE, "S", row), op.key)

    def _enqueue(self, event: DataEvent, row_id: int) -> None:
        seq = self._seq
        self._seq += 1
        self.batcher.add(BatchEntry(seq, event))
        kind = "insert" if event.kind is EventKind.INSERT else "delete"
        self._shadow.append((seq, event.relation, row_id, kind))
        if self.batcher.is_due:
            self._drain_once()

    def _drain_once(self) -> None:
        before = list(self._shadow)
        pairs_seen = len(self.batcher.stats.cancelled)
        batch = self.batcher.drain()
        pairs = list(self.batcher.stats.cancelled[pairs_seen:])
        drained = [entry.seq for entry in batch]
        remaining = [entry.seq for entry in self.batcher._pending]
        check_batcher_drain(
            self.name, before, drained, remaining, pairs, self.batcher.max_batch
        )
        gone = set(drained)
        for insert_seq, delete_seq in pairs:
            gone.add(insert_seq)
            gone.add(delete_seq)
        self._shadow = [entry for entry in self._shadow if entry[0] not in gone]
        stats = self.batcher.stats
        expect(
            stats.events_in
            == stats.events_out + 2 * stats.coalesced_pairs + len(self.batcher),
            self.name,
            f"stats ledger drift: in={stats.events_in} out={stats.events_out} "
            f"pairs={stats.coalesced_pairs} pending={len(self.batcher)}",
        )

    def check(self, model: ModelState) -> None:
        while len(self.batcher):
            self._drain_once()


class EngineTarget(FuzzTarget):
    """Runs every engine op through the sharded system *and* the unsharded
    reference, comparing per-insert deltas between the two and against the
    model's nested-loop oracle."""

    name = "sharded"
    kinds = ENGINE_KINDS

    def __init__(
        self,
        num_shards: int = 3,
        alpha: Optional[float] = 0.2,
        epsilon: float = 1.0,
    ) -> None:
        self.sharded = ShardedContinuousQuerySystem(
            num_shards=num_shards, alpha=alpha, epsilon=epsilon
        )
        self.reference = ContinuousQuerySystem(alpha=alpha, epsilon=epsilon)
        self._r_rows: Dict[int, RTuple] = {}
        self._s_rows: Dict[int, STuple] = {}
        self._queries: Dict[int, object] = {}

    def apply(self, op: Op, model: ModelState) -> None:
        kind, key = op.kind, op.key
        if kind == op_mod.INSERT_R:
            row = RTuple(key, op.values[0], op.values[1])
            self._r_rows[key] = row
            got_sharded = normalize_deltas(self.sharded.insert_r_row(row))
            got_reference = normalize_deltas(self.reference.insert_r_row(row))
            want = model.oracle_r_insert_deltas(row.a, row.b)
            check_delta_equivalence(
                self.name, f"insert_r #{key}", got_sharded, got_reference, want
            )
        elif kind == op_mod.INSERT_S:
            row = STuple(key, op.values[0], op.values[1])
            self._s_rows[key] = row
            got_sharded = normalize_deltas(self.sharded.insert_s_row(row))
            got_reference = normalize_deltas(self.reference.insert_s_row(row))
            want = model.oracle_s_insert_deltas(row.b, row.c)
            check_delta_equivalence(
                self.name, f"insert_s #{key}", got_sharded, got_reference, want
            )
        elif kind == op_mod.DELETE_R:
            row = self._r_rows.pop(key)
            self.sharded.delete_r(row)
            self.reference.delete_r(row)
        elif kind == op_mod.DELETE_S:
            row = self._s_rows.pop(key)
            self.sharded.delete_s(row)
            self.reference.delete_s(row)
        elif kind == op_mod.SUB_BAND:
            query = BandJoinQuery(Interval(op.values[0], op.values[1]), qid=key)
            self._queries[key] = query
            self.sharded.subscribe(query)
            self.reference.subscribe(query)
        elif kind == op_mod.SUB_SELECT:
            query = SelectJoinQuery(
                Interval(op.values[0], op.values[1]),
                Interval(op.values[2], op.values[3]),
                qid=key,
            )
            self._queries[key] = query
            self.sharded.subscribe(query)
            self.reference.subscribe(query)
        elif kind == op_mod.UNSUB:
            query = self._queries.pop(key)
            self.sharded.unsubscribe(query)
            self.reference.unsubscribe(query)

    def check(self, model: ModelState) -> None:
        n_queries = model.subscription_count()
        expect(
            self.reference.subscription_count == n_queries,
            self.name,
            f"reference holds {self.reference.subscription_count} "
            f"subscription(s), model {n_queries}",
        )
        expect(
            self.sharded.subscription_count == n_queries,
            self.name,
            f"sharded system holds {self.sharded.subscription_count} "
            f"subscription(s), model {n_queries}",
        )
        n_r, n_s = len(model.r_rows), len(model.s_rows)
        expect(
            len(self.reference.table_r) == n_r and len(self.reference.table_s) == n_s,
            self.name,
            f"reference tables hold {len(self.reference.table_r)}R/"
            f"{len(self.reference.table_s)}S, model {n_r}R/{n_s}S",
        )
        for shard in self.sharded.shards:
            expect(
                len(shard.table_r) == n_r,
                self.name,
                f"shard {shard.index} R replica holds {len(shard.table_r)} "
                f"rows, model {n_r}",
            )
            expect(
                len(shard.table_s_band) == n_s,
                self.name,
                f"shard {shard.index} S band replica holds "
                f"{len(shard.table_s_band)} rows, model {n_s}",
            )
        select_total = sum(len(s.table_s_select) for s in self.sharded.shards)
        expect(
            select_total == n_s,
            self.name,
            f"S select partition holds {select_total} rows fleet-wide, "
            f"model {n_s} (slices must be disjoint and exhaustive)",
        )


class FastpathTarget(FuzzTarget):
    """Exercises the columnar batch fast path: data events are deferred into
    a pending buffer and flushed through
    :meth:`ShardedContinuousQuerySystem.apply_batch`, whose per-event deltas
    must match both the per-event reference system and the model's
    nested-loop oracle.

    Oracle deltas are captured *at op arrival* (the runner applies the op to
    the model first, so the oracle sees exactly the state the batched system
    will later replay against); query churn flushes the buffer so
    subscriptions take effect in stream order.
    """

    name = "fastpath"
    kinds = ENGINE_KINDS

    def __init__(
        self,
        num_shards: int = 2,
        alpha: Optional[float] = 0.2,
        epsilon: float = 1.0,
        max_batch: int = 24,
    ) -> None:
        self.batched = ShardedContinuousQuerySystem(
            num_shards=num_shards, alpha=alpha, epsilon=epsilon
        )
        self.reference = ContinuousQuerySystem(alpha=alpha, epsilon=epsilon)
        self.max_batch = max_batch
        self.flushes = 0
        # Pending (event, label, reference delta, oracle delta); delta
        # entries are None for deletes, which produce no results.
        self._pending: List[Tuple[Any, ...]] = []
        self._r_rows: Dict[int, RTuple] = {}
        self._s_rows: Dict[int, STuple] = {}
        self._queries: Dict[int, object] = {}

    def apply(self, op: Op, model: ModelState) -> None:
        kind, key = op.kind, op.key
        if kind == op_mod.INSERT_R:
            row = RTuple(key, op.values[0], op.values[1])
            self._r_rows[key] = row
            got_reference = normalize_deltas(self.reference.insert_r_row(row))
            want = model.oracle_r_insert_deltas(row.a, row.b)
            self._defer(
                DataEvent(EventKind.INSERT, "R", row),
                f"insert_r #{key}",
                got_reference,
                want,
            )
        elif kind == op_mod.INSERT_S:
            row = STuple(key, op.values[0], op.values[1])
            self._s_rows[key] = row
            got_reference = normalize_deltas(self.reference.insert_s_row(row))
            want = model.oracle_s_insert_deltas(row.b, row.c)
            self._defer(
                DataEvent(EventKind.INSERT, "S", row),
                f"insert_s #{key}",
                got_reference,
                want,
            )
        elif kind == op_mod.DELETE_R:
            row = self._r_rows.pop(key)
            self.reference.delete_r(row)
            self._defer(DataEvent(EventKind.DELETE, "R", row), f"delete_r #{key}", None, None)
        elif kind == op_mod.DELETE_S:
            row = self._s_rows.pop(key)
            self.reference.delete_s(row)
            self._defer(DataEvent(EventKind.DELETE, "S", row), f"delete_s #{key}", None, None)
        elif kind == op_mod.SUB_BAND:
            self.flush()
            query = BandJoinQuery(Interval(op.values[0], op.values[1]), qid=key)
            self._queries[key] = query
            self.batched.subscribe(query)
            self.reference.subscribe(query)
        elif kind == op_mod.SUB_SELECT:
            self.flush()
            query = SelectJoinQuery(
                Interval(op.values[0], op.values[1]),
                Interval(op.values[2], op.values[3]),
                qid=key,
            )
            self._queries[key] = query
            self.batched.subscribe(query)
            self.reference.subscribe(query)
        elif kind == op_mod.UNSUB:
            self.flush()
            query = self._queries.pop(key)
            self.batched.unsubscribe(query)
            self.reference.unsubscribe(query)

    def _defer(
        self,
        event: DataEvent,
        label: str,
        got_reference: Optional[Dict[int, Tuple[int, ...]]],
        want: Optional[Dict[int, Tuple[int, ...]]],
    ) -> None:
        self._pending.append((event, label, got_reference, want))
        if len(self._pending) >= self.max_batch:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self.flushes += 1
        deltas = self.batched.apply_batch([entry[0] for entry in pending])
        for (event, label, got_reference, want), delta in zip(pending, deltas):
            got_batched = normalize_deltas(delta)
            if want is None:
                expect(
                    not got_batched,
                    self.name,
                    f"{label}: delete produced results {got_batched}",
                )
                continue
            check_delta_equivalence(
                self.name, label, got_batched, got_reference, want
            )

    def check(self, model: ModelState) -> None:
        self.flush()
        n_r, n_s = len(model.r_rows), len(model.s_rows)
        expect(
            len(self.reference.table_r) == n_r and len(self.reference.table_s) == n_s,
            self.name,
            f"reference tables hold {len(self.reference.table_r)}R/"
            f"{len(self.reference.table_s)}S, model {n_r}R/{n_s}S",
        )
        for shard in self.batched.shards:
            expect(
                len(shard.table_r) == n_r and len(shard.table_s_band) == n_s,
                self.name,
                f"shard {shard.index} replicas hold {len(shard.table_r)}R/"
                f"{len(shard.table_s_band)}S after flush, model {n_r}R/{n_s}S",
            )


class DurabilityTarget(FuzzTarget):
    """Crash-injects the durability subsystem and checks exact recovery.

    Engine ops drive a WAL-logged :class:`ShardedContinuousQuerySystem`
    (``fsync="never"`` — the fuzzer simulates the crash by copying files, so
    real fsyncs would only slow it down) while a journal records every op
    with the normalized delta the live system produced.  Because each engine
    op logs exactly one WAL record, journal index == WAL sequence number.

    Every ``check`` round simulates a crash: flush OS buffers, copy the
    durability directory aside, truncate the newest WAL segment at a random
    byte offset (possibly mid-record, possibly mid-header), recover a fresh
    system from the copy, then re-apply the journal suffix the truncation
    lost.  The recovered run's deltas must be identical to what the
    uninterrupted system produced, and its final state must match the
    model's — any divergence means recovery lost, duplicated, or reordered
    an event.
    """

    name = "durability"
    kinds = ENGINE_KINDS

    def __init__(
        self,
        num_shards: int = 2,
        alpha: Optional[float] = 0.2,
        epsilon: float = 1.0,
        checkpoint_every: int = 64,
        crash_seed: int = 0xD0_0D,
    ) -> None:
        from repro.durability import DurabilityManager

        self._tmp = tempfile.TemporaryDirectory(prefix="repro-fuzz-durability-")
        self._wal_dir = Path(self._tmp.name) / "wal"
        self.manager = DurabilityManager(
            self._wal_dir, fsync="never", checkpoint_every=checkpoint_every
        )
        self.system = ShardedContinuousQuerySystem(
            num_shards=num_shards,
            alpha=alpha,
            epsilon=epsilon,
            durability=self.manager,
        )
        self.manager.attach(self.system)
        self._rng = random.Random(crash_seed)
        self._num_shards = num_shards
        self._alpha = alpha
        self._epsilon = epsilon
        # One entry per engine op: (kind, payload, normalized live delta).
        self._journal: List[Tuple[Any, ...]] = []
        self._r_rows: Dict[int, RTuple] = {}
        self._s_rows: Dict[int, STuple] = {}
        self._queries: Dict[int, object] = {}
        self.crashes_simulated = 0

    def apply(self, op: Op, model: ModelState) -> None:
        kind, key = op.kind, op.key
        if kind == op_mod.INSERT_R:
            row = RTuple(key, op.values[0], op.values[1])
            self._r_rows[key] = row
            got = normalize_deltas(self.system.insert_r_row(row))
            want = model.oracle_r_insert_deltas(row.a, row.b)
            check_delta_equivalence(self.name, f"insert_r #{key}", got, got, want)
            self._journal.append((kind, row, got))
        elif kind == op_mod.INSERT_S:
            row = STuple(key, op.values[0], op.values[1])
            self._s_rows[key] = row
            got = normalize_deltas(self.system.insert_s_row(row))
            want = model.oracle_s_insert_deltas(row.b, row.c)
            check_delta_equivalence(self.name, f"insert_s #{key}", got, got, want)
            self._journal.append((kind, row, got))
        elif kind == op_mod.DELETE_R:
            row = self._r_rows.pop(key)
            self.system.delete_r(row)
            self._journal.append((kind, row, None))
        elif kind == op_mod.DELETE_S:
            row = self._s_rows.pop(key)
            self.system.delete_s(row)
            self._journal.append((kind, row, None))
        elif kind == op_mod.SUB_BAND:
            query = BandJoinQuery(Interval(op.values[0], op.values[1]), qid=key)
            self._queries[key] = query
            self.system.subscribe(query)
            self._journal.append((kind, query, None))
        elif kind == op_mod.SUB_SELECT:
            query = SelectJoinQuery(
                Interval(op.values[0], op.values[1]),
                Interval(op.values[2], op.values[3]),
                qid=key,
            )
            self._queries[key] = query
            self.system.subscribe(query)
            self._journal.append((kind, query, None))
        elif kind == op_mod.UNSUB:
            query = self._queries.pop(key)
            self.system.unsubscribe(query)
            self._journal.append((kind, query, None))

    # -- crash simulation ----------------------------------------------------

    def _replay_entry(
        self, system: Any, entry: Tuple[Any, ...], index: int
    ) -> None:
        kind, payload, recorded = entry
        if kind == op_mod.INSERT_R:
            got = normalize_deltas(system.insert_r_row(payload))
            expect(
                got == recorded,
                self.name,
                f"recovered replay of journal[{index}] (insert_r "
                f"#{payload.rid}) produced {got}, uninterrupted run "
                f"produced {recorded}",
            )
        elif kind == op_mod.INSERT_S:
            got = normalize_deltas(system.insert_s_row(payload))
            expect(
                got == recorded,
                self.name,
                f"recovered replay of journal[{index}] (insert_s "
                f"#{payload.sid}) produced {got}, uninterrupted run "
                f"produced {recorded}",
            )
        elif kind == op_mod.DELETE_R:
            system.delete_r(payload)
        elif kind == op_mod.DELETE_S:
            system.delete_s(payload)
        elif kind in (op_mod.SUB_BAND, op_mod.SUB_SELECT):
            system.subscribe(payload)
        elif kind == op_mod.UNSUB:
            system.unsubscribe(payload)

    def check(self, model: ModelState) -> None:
        from repro.durability import recover_system
        from repro.durability.wal import list_segments

        expect(
            self.manager.next_seq == len(self._journal),
            self.name,
            f"WAL advanced to seq {self.manager.next_seq} after "
            f"{len(self._journal)} engine op(s); every op must log exactly "
            "one record",
        )
        self.manager.wal.flush()
        crash_dir = Path(self._tmp.name) / "crash"
        if crash_dir.exists():
            shutil.rmtree(crash_dir)
        shutil.copytree(self._wal_dir, crash_dir)
        segments = list_segments(crash_dir)
        if segments:
            size = segments[-1].stat().st_size
            cut = self._rng.randrange(size + 1)
            with open(segments[-1], "r+b") as handle:
                handle.truncate(cut)
        self.crashes_simulated += 1
        recovered, report = recover_system(
            crash_dir,
            num_shards=self._num_shards,
            alpha=self._alpha,
            epsilon=self._epsilon,
        )
        expect(
            report.next_seq <= len(self._journal),
            self.name,
            f"recovery from a truncated WAL claims seq {report.next_seq}, "
            f"but only {len(self._journal)} op(s) were ever logged",
        )
        for index in range(report.next_seq, len(self._journal)):
            self._replay_entry(recovered, self._journal[index], index)
        n_r, n_s = len(model.r_rows), len(model.s_rows)
        expect(
            len(recovered.shards[0].table_r) == n_r
            and len(recovered.shards[0].table_s_band) == n_s,
            self.name,
            f"after crash-recovery + replay the tables hold "
            f"{len(recovered.shards[0].table_r)}R/"
            f"{len(recovered.shards[0].table_s_band)}S, model {n_r}R/{n_s}S",
        )
        expect(
            recovered.subscription_count == model.subscription_count(),
            self.name,
            f"after crash-recovery + replay {recovered.subscription_count} "
            f"subscription(s) live, model {model.subscription_count()}",
        )


class TransportTarget(FuzzTarget):
    """Differential check of the shared-memory data plane.

    Engine ops are buffered and periodically replayed through two
    :class:`~repro.runtime.pipeline.EventPipeline` instances that differ
    *only* in backend — ``mode="process-shm"`` (columnar frames over shm
    rings) vs ``mode="inline"`` — with coalescing off so every submitted
    event produces a comparable ``(seq, deltas)`` entry.  Any divergence
    means the frame codec or the ring dropped, duplicated, or reordered
    something the in-process path did not.

    Query churn flushes the buffer first so subscriptions take effect at
    the same stream position on both sides.  This target spawns one worker
    process per shard, so it is registered in :data:`TARGET_FACTORIES` for
    explicit selection (``repro fuzz --targets transport``) but kept out of
    :data:`DEFAULT_TARGETS`.
    """

    name = "transport"
    kinds = ENGINE_KINDS

    def __init__(
        self,
        num_shards: int = 2,
        alpha: Optional[float] = 0.2,
        epsilon: float = 1.0,
        batch_size: int = 8,
    ) -> None:
        from repro.runtime.pipeline import EventPipeline

        self._pipes = {
            mode: EventPipeline(
                num_shards=num_shards,
                alpha=alpha,
                epsilon=epsilon,
                batch_size=batch_size,
                mode=mode,
                coalesce=False,
            )
            for mode in ("process-shm", "inline")
        }
        self._pending: List[Tuple[Any, ...]] = []  # (event, label)
        self._r_rows: Dict[int, RTuple] = {}
        self._s_rows: Dict[int, STuple] = {}
        self._queries: Dict[int, object] = {}
        self._closed = False

    def apply(self, op: Op, model: ModelState) -> None:
        kind, key = op.kind, op.key
        if kind == op_mod.INSERT_R:
            row = RTuple(key, op.values[0], op.values[1])
            self._r_rows[key] = row
            self._pending.append(
                (DataEvent(EventKind.INSERT, "R", row), f"insert_r #{key}")
            )
        elif kind == op_mod.INSERT_S:
            row = STuple(key, op.values[0], op.values[1])
            self._s_rows[key] = row
            self._pending.append(
                (DataEvent(EventKind.INSERT, "S", row), f"insert_s #{key}")
            )
        elif kind == op_mod.DELETE_R:
            row = self._r_rows.pop(key)
            self._pending.append(
                (DataEvent(EventKind.DELETE, "R", row), f"delete_r #{key}")
            )
        elif kind == op_mod.DELETE_S:
            row = self._s_rows.pop(key)
            self._pending.append(
                (DataEvent(EventKind.DELETE, "S", row), f"delete_s #{key}")
            )
        elif kind == op_mod.SUB_BAND:
            self._flush()
            query = BandJoinQuery(Interval(op.values[0], op.values[1]), qid=key)
            self._queries[key] = query
            for pipe in self._pipes.values():
                pipe.subscribe(query)
        elif kind == op_mod.SUB_SELECT:
            self._flush()
            query = SelectJoinQuery(
                Interval(op.values[0], op.values[1]),
                Interval(op.values[2], op.values[3]),
                qid=key,
            )
            self._queries[key] = query
            for pipe in self._pipes.values():
                pipe.subscribe(query)
        elif kind == op_mod.UNSUB:
            self._flush()
            query = self._queries.pop(key)
            for pipe in self._pipes.values():
                pipe.unsubscribe(query)

    def _flush(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        events = [entry[0] for entry in pending]
        results = {
            mode: pipe.run(list(events)) for mode, pipe in self._pipes.items()
        }
        shm_run, inline_run = results["process-shm"], results["inline"]
        expect(
            len(shm_run) == len(inline_run) == len(pending),
            self.name,
            f"process-shm applied {len(shm_run)} event(s), inline "
            f"{len(inline_run)}, submitted {len(pending)}",
        )
        for (_, label), (_, _, shm_delta), (_, _, inline_delta) in zip(
            pending, shm_run, inline_run
        ):
            got = normalize_deltas(shm_delta)
            want = normalize_deltas(inline_delta)
            expect(
                got == want,
                self.name,
                f"{label}: process-shm deltas {got} != inline deltas {want}",
            )

    def check(self, model: ModelState) -> None:
        self._flush()
        for mode, pipe in self._pipes.items():
            expect(
                pipe.subscription_count == model.subscription_count(),
                self.name,
                f"{mode} pipeline holds {pipe.subscription_count} "
                f"subscription(s), model {model.subscription_count()}",
            )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for pipe in self._pipes.values():
            pipe.close()


# -- registry ----------------------------------------------------------------

TARGET_FACTORIES: Dict[str, Callable[[], FuzzTarget]] = {
    "lazy": LazyTarget,
    "refined": RefinedTarget,
    "multidim": MultidimTarget,
    "tracker": TrackerTarget,
    "batcher": BatcherTarget,
    "sharded": EngineTarget,
    "fastpath": FastpathTarget,
    "durability": DurabilityTarget,
    # Spawns worker processes + shm segments; select explicitly with
    # ``repro fuzz --targets transport`` (deliberately not in
    # DEFAULT_TARGETS so the default campaign stays in-process).
    "transport": TransportTarget,
}

DEFAULT_TARGETS = (
    "lazy",
    "refined",
    "multidim",
    "tracker",
    "batcher",
    "sharded",
    "fastpath",
    "durability",
)
