"""Invariant probes: the paper's theorems as runtime checks.

Each probe inspects one target against the ground-truth
:class:`~repro.check.oracles.ModelState` and raises :class:`Divergence`
(with the target name and a description) on the first violated contract:

* **partitions** (lazy / refined / multidim) — membership equals the model's
  live set, the structure's own ``validate()`` passes, and the group count
  respects the ``(1 + eps) * tau`` bound of Lemma 3 / Theorem 2 with tau
  from the O(n^2) piercing oracle;
* **canonical partition** — the left-endpoint sweep agrees group-for-group
  with the piercing oracle (they provably coincide in 1-D), and its
  ``hotspots()`` agree with the naive classifier;
* **tracker** — invariants I1/I2 via ``HotspotTracker.validate()``, the I3
  amortized crossing bound, membership, and the (1 + eps) * tau + 2/alpha
  group bound against the oracle tau;
* **batcher** — batch-atomic visibility: exactly the insert+delete pairs
  co-pending at drain time cancel, survivors keep arrival order, and the
  stats ledger adds up;
* **sharded runtime** — per-event merged deltas equal the unsharded
  reference's, which equal the nested-loop oracle's.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.core.intervals import Interval

from repro.check.oracles import (
    IntervalPair,
    ModelState,
    brute_force_stabbing_partition,
    naive_hotspots,
)
from repro.core.stabbing import canonical_stabbing_partition

_EPS = 1e-9


class Divergence(AssertionError):
    """A target disagreed with an oracle or violated an invariant."""

    def __init__(
        self, target: str, message: str, op_index: int | None = None
    ) -> None:
        self.target = target
        self.op_index = op_index
        super().__init__(f"[{target}] {message}")

    @property
    def message(self) -> str:
        return self.args[0]


def expect(condition: bool, target: str, message: str) -> None:
    if not condition:
        raise Divergence(target, message)


def _multiset(pairs: Sequence[IntervalPair]) -> List[IntervalPair]:
    return sorted(pairs)


# -- partitions --------------------------------------------------------------


def check_partition(
    target_name: str,
    partition: Any,
    model: ModelState,
    *,
    epsilon: float,
    interval_of: Callable[[Any], Interval] = lambda item: item,
) -> None:
    """Validity + membership + the (1 + eps) * tau size bound."""
    items = [item for group in partition.groups for item in group]
    got = _multiset((interval_of(i).lo, interval_of(i).hi) for i in items)
    want = model.interval_multiset()
    if got != want:
        first_diff = next(
            (g, w) for g, w in zip(got + [None], want + [None]) if g != w
        )
        raise Divergence(
            target_name,
            f"live-set mismatch: partition holds {len(got)} interval(s), "
            f"model holds {len(want)}; first diff {first_diff}",
        )
    try:
        partition.validate()
    except Divergence:
        raise
    except AssertionError as exc:
        raise Divergence(target_name, f"validate() failed: {exc}") from exc
    tau = model.tau()
    bound = (1.0 + epsilon) * tau + _EPS
    expect(
        len(partition.groups) <= bound,
        target_name,
        f"size bound violated: {len(partition.groups)} groups > "
        f"(1 + {epsilon}) * tau where oracle tau = {tau}",
    )


def check_canonical_against_piercing(model: ModelState) -> None:
    """The sweep construction vs the O(n^2) piercing oracle, group sizes and
    hotspot classification both."""
    pairs = list(model.intervals.values())
    sweep = canonical_stabbing_partition([tuple(p) for p in pairs],
                                         interval_of=_pair_interval)
    pierce = brute_force_stabbing_partition(pairs)
    expect(
        sweep.size == len(pierce),
        "canonical",
        f"tau mismatch: sweep {sweep.size} != piercing oracle {len(pierce)}",
    )
    sweep_sizes = sorted(g.size for g in sweep.groups)
    pierce_sizes = sorted(len(g) for g in pierce)
    expect(
        sweep_sizes == pierce_sizes,
        "canonical",
        f"group sizes mismatch: sweep {sweep_sizes} != oracle {pierce_sizes}",
    )
    if pairs:
        alpha = model.alpha
        want = sorted(len(g) for g in naive_hotspots(pairs, alpha))
        got = sorted(g.size for g in sweep.groups if g.size >= alpha * len(pairs))
        expect(
            got == want,
            "canonical",
            f"hotspot classification mismatch: sweep {got} != naive {want}",
        )


def _pair_interval(pair: Sequence[float]) -> Interval:
    return Interval(pair[0], pair[1])


# -- hotspot tracker ---------------------------------------------------------


def check_tracker(target_name: str, tracker: Any, model: ModelState) -> None:
    """Theorem 1: I1/I2 via validate(), I3 via the crossing counters, plus
    membership and the oracle-tau group bound."""
    items = [item for group in tracker.hotspot_groups for item in group]
    for group in tracker.scattered.groups:
        items.extend(group)
    got = _multiset((iv.lo, iv.hi) for iv in items)
    want = model.interval_multiset()
    expect(
        got == want,
        target_name,
        f"live-set mismatch: tracker holds {len(got)}, model holds {len(want)}",
    )
    try:
        tracker.validate()
    except AssertionError as exc:
        raise Divergence(target_name, f"validate() failed: {exc}") from exc
    moves = tracker.boundary_moves()
    budget = 5 * max(tracker.update_count, 1)
    expect(
        moves <= budget,
        target_name,
        f"I3 violated: {moves} boundary crossings > 5 * {tracker.update_count} updates",
    )
    tau = model.tau()
    total_groups = len(tracker.hotspot_groups) + len(tracker.scattered)
    epsilon = getattr(tracker.scattered, "epsilon", 1.0)
    bound = (1.0 + epsilon) * tau + 2.0 / tracker.alpha + _EPS
    expect(
        total_groups <= bound,
        target_name,
        f"I2 violated against oracle: {total_groups} groups > "
        f"(1 + {epsilon}) * {tau} + 2 / {tracker.alpha}",
    )
    for item in items:
        hot = tracker.is_hotspot_item(item)
        in_hot = any(item in g for g in tracker.hotspot_groups)
        expect(
            hot == in_hot,
            target_name,
            f"is_hotspot_item({item}) = {hot} but membership says {in_hot}",
        )


# -- micro-batcher -----------------------------------------------------------


def check_batcher_drain(
    target_name: str,
    pending_before: List[Tuple[int, str, int, str]],  # (seq, relation, row_id, kind)
    drained_seqs: List[int],
    remaining_seqs: List[int],
    cancelled_pairs: List[Tuple[int, int]],
    max_batch: int,
) -> None:
    """Batch-atomic visibility, checked against a naive cancellation model.

    ``pending_before`` is the shadow copy of the queue at drain time.  Row
    ids are never reused, so the expected cancellation is simply: an
    insert+delete pair of the same row with both events still pending.
    Survivors must keep arrival order and split into (first max_batch
    drained, rest remaining).
    """
    by_row: Dict[Tuple[str, int], List[Tuple[int, str]]] = {}
    for seq, relation, row_id, kind in pending_before:
        by_row.setdefault((relation, row_id), []).append((seq, kind))
    expected_cancelled: set[int] = set()
    expected_pairs: set[Tuple[int, int]] = set()
    for events in by_row.values():
        kinds = [kind for __, kind in events]
        if "insert" in kinds and "delete" in kinds:
            insert_seq = next(seq for seq, kind in events if kind == "insert")
            delete_seq = next(seq for seq, kind in events if kind == "delete")
            expect(
                insert_seq < delete_seq,
                target_name,
                f"delete seq {delete_seq} precedes insert seq {insert_seq} "
                "for the same row",
            )
            expected_cancelled.update((insert_seq, delete_seq))
            expected_pairs.add((insert_seq, delete_seq))
    survivors = [
        seq for seq, __, __, __ in pending_before if seq not in expected_cancelled
    ]
    expect(
        set(cancelled_pairs) == expected_pairs,
        target_name,
        f"coalesced pairs {sorted(cancelled_pairs)} != naive model "
        f"{sorted(expected_pairs)}",
    )
    expect(
        drained_seqs == survivors[:max_batch],
        target_name,
        f"drained {drained_seqs} != oldest surviving {survivors[:max_batch]}",
    )
    expect(
        remaining_seqs == survivors[max_batch:],
        target_name,
        f"left pending {remaining_seqs} != surviving tail {survivors[max_batch:]}",
    )


# -- sharded runtime ---------------------------------------------------------


def check_delta_equivalence(
    target_name: str,
    op_description: str,
    sharded: Dict[int, Tuple[int, ...]],
    reference: Dict[int, Tuple[int, ...]],
    oracle: Dict[int, Tuple[int, ...]],
) -> None:
    """Merged sharded deltas == unsharded deltas == nested-loop oracle."""
    expect(
        sharded == reference,
        target_name,
        f"{op_description}: sharded deltas {_fmt(sharded)} != "
        f"unsharded reference {_fmt(reference)}",
    )
    expect(
        reference == oracle,
        target_name,
        f"{op_description}: engine deltas {_fmt(reference)} != "
        f"nested-loop oracle {_fmt(oracle)}",
    )


def _fmt(deltas: Dict[int, Tuple[int, ...]], limit: int = 6) -> str:
    entries = sorted(deltas.items())
    text = ", ".join(f"q{qid}:{list(ids)}" for qid, ids in entries[:limit])
    if len(entries) > limit:
        text += f", ... ({len(entries)} queries)"
    return "{" + text + "}"
