"""repro.check: differential fuzzing and invariant probing.

The subsystem turns the paper's theorems into continuously enforced
contracts: seeded op-sequence generation (:mod:`repro.check.ops`),
brute-force reference oracles (:mod:`repro.check.oracles`), invariant
probes (:mod:`repro.check.probes`), target adapters
(:mod:`repro.check.targets`) and the fuzz/shrink/replay loop
(:mod:`repro.check.runner`).  Entry points: the :func:`fuzz` API and the
``repro fuzz`` CLI verb.
"""

from repro.check.ops import FuzzConfig, Op, generate_ops, ops_from_json, ops_to_json
from repro.check.oracles import (
    ModelState,
    brute_force_stabbing_partition,
    brute_force_tau,
    naive_hotspots,
)
from repro.check.probes import Divergence
from repro.check.runner import (
    DivergenceRecord,
    FuzzReport,
    RunOutcome,
    fuzz,
    load_reproducer,
    normalize_ops,
    replay_reproducer,
    reproducer_dict,
    run_sequence,
    save_reproducer,
    shrink_ops,
)
from repro.check.targets import DEFAULT_TARGETS, TARGET_FACTORIES, FuzzTarget

__all__ = [
    "DEFAULT_TARGETS",
    "Divergence",
    "DivergenceRecord",
    "FuzzConfig",
    "FuzzReport",
    "FuzzTarget",
    "ModelState",
    "Op",
    "RunOutcome",
    "TARGET_FACTORIES",
    "brute_force_stabbing_partition",
    "brute_force_tau",
    "fuzz",
    "generate_ops",
    "load_reproducer",
    "naive_hotspots",
    "normalize_ops",
    "ops_from_json",
    "ops_to_json",
    "replay_reproducer",
    "reproducer_dict",
    "run_sequence",
    "save_reproducer",
    "shrink_ops",
]
