"""The fuzz loop: execute, detect, shrink, persist.

``run_sequence`` streams one op sequence through every selected target
simultaneously (sharing a single :class:`ModelState` as ground truth),
applying per-op checks inline (delta equivalence, batch drains) and the
expensive invariant probes every ``check_every`` ops.  The first
:class:`~repro.check.probes.Divergence` stops the run.

``shrink_ops`` reduces a failing sequence by delta debugging: truncate to
the divergence point, ddmin over op subsets (re-normalizing candidates so
they stay well-formed), then greedily narrow the numeric payloads of the
survivors.  A candidate counts as failing only if it diverges on the *same
target*, which keeps the shrinker from sliding onto an unrelated failure.

Reproducers are plain JSON — the shrunk ops plus the divergence record —
replayable via ``replay_reproducer`` or ``repro fuzz --replay FILE``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.check.ops import FuzzConfig, Op, generate_ops
from repro.check.oracles import ModelState
from repro.check.probes import Divergence, check_canonical_against_piercing
from repro.check.targets import DEFAULT_TARGETS, TARGET_FACTORIES, FuzzTarget


@dataclass(frozen=True)
class DivergenceRecord:
    """Where and how a run failed."""

    op_index: int
    target: str
    message: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "op_index": self.op_index,
            "target": self.target,
            "message": self.message,
        }

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "DivergenceRecord":
        return DivergenceRecord(
            int(data["op_index"]), data["target"], data["message"]
        )


@dataclass
class RunOutcome:
    """Result of executing one op sequence against the targets."""

    ops_applied: int
    check_rounds: int
    divergence: Optional[DivergenceRecord] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None


def _make_targets(
    names: Sequence[str],
    factories: Optional[Dict[str, Callable[[], FuzzTarget]]] = None,
) -> List[FuzzTarget]:
    registry = dict(TARGET_FACTORIES)
    if factories:
        registry.update(factories)
    unknown = [name for name in names if name not in registry]
    if unknown:
        raise ValueError(
            f"unknown target(s) {unknown}; available: {sorted(registry)}"
        )
    return [registry[name]() for name in names]


def run_sequence(
    ops: Sequence[Op],
    *,
    targets: Sequence[str] = DEFAULT_TARGETS,
    check_every: int = 32,
    factories: Optional[Dict[str, Callable[[], FuzzTarget]]] = None,
) -> RunOutcome:
    """Execute ``ops`` against all targets; stop at the first divergence.

    Illegal ops (possible in hand-edited reproducers) are skipped rather
    than rejected, so shrunk and edited sequences replay without fuss.
    """
    if check_every < 1:
        raise ValueError("check_every must be >= 1")
    live = _make_targets(targets, factories)
    model = ModelState()
    check_rounds = 0
    applied = 0
    try:
        for index, op in enumerate(ops):
            if not model.is_legal(op):
                continue
            model.apply(op)
            applied += 1
            for target in live:
                if op.kind not in target.kinds:
                    continue
                try:
                    target.apply(op, model)
                except Divergence as exc:
                    return RunOutcome(
                        applied,
                        check_rounds,
                        DivergenceRecord(index, exc.target, exc.message),
                    )
                except AssertionError as exc:
                    return RunOutcome(
                        applied,
                        check_rounds,
                        DivergenceRecord(index, target.name, f"assertion: {exc}"),
                    )
            if applied % check_every == 0 or index == len(ops) - 1:
                check_rounds += 1
                failure = _check_round(live, model, index)
                if failure is not None:
                    return RunOutcome(applied, check_rounds, failure)
        return RunOutcome(applied, check_rounds)
    finally:
        # Targets may own processes or shm segments (e.g. "transport");
        # release them whether the run passed, diverged, or raised.
        for target in live:
            target.close()


def _check_round(
    live: List[FuzzTarget], model: ModelState, op_index: int
) -> Optional[DivergenceRecord]:
    try:
        check_canonical_against_piercing(model)
    except Divergence as exc:
        return DivergenceRecord(op_index, exc.target, exc.message)
    for target in live:
        try:
            target.check(model)
        except Divergence as exc:
            return DivergenceRecord(op_index, exc.target, exc.message)
        except AssertionError as exc:
            return DivergenceRecord(op_index, target.name, f"assertion: {exc}")
    return None


# -- shrinking ---------------------------------------------------------------


def normalize_ops(ops: Sequence[Op]) -> List[Op]:
    """Drop ops made illegal by earlier removals (dependency closure)."""
    model = ModelState()
    kept: List[Op] = []
    for op in ops:
        if model.is_legal(op):
            model.apply(op)
            kept.append(op)
    return kept


def _simpler_variants(op: Op) -> List[Op]:
    """Candidate payload simplifications, roughly most-aggressive first."""
    values = op.values
    if not values:
        return []
    out: List[Op] = []
    halved = tuple(float(round(v / 2.0)) for v in values)
    if halved != values:
        out.append(Op(op.kind, op.key, halved))
    if len(values) == 2 and values[1] > values[0]:
        out.append(Op(op.kind, op.key, (values[0], values[0])))  # collapse
        mid = float(round(values[0] + (values[1] - values[0]) / 2.0))
        if values[0] <= mid < values[1]:
            out.append(Op(op.kind, op.key, (values[0], mid)))  # narrow
    rounded = tuple(float(round(v)) for v in values)
    if rounded != values:
        out.append(Op(op.kind, op.key, rounded))
    return out


def shrink_ops(
    ops: Sequence[Op],
    divergence: DivergenceRecord,
    *,
    targets: Sequence[str] = DEFAULT_TARGETS,
    factories: Optional[Dict[str, Callable[[], FuzzTarget]]] = None,
    max_attempts: int = 2000,
) -> Tuple[List[Op], DivergenceRecord]:
    """Delta-debug ``ops`` down to a minimal sequence still diverging on
    ``divergence.target``.  Returns (shrunk ops, their divergence)."""
    budget = [max_attempts]
    best: Dict[str, object] = {"divergence": divergence}

    def fails(candidate: Sequence[Op]) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        # check_every=1 is strictly more sensitive than any larger stride,
        # so the original failure cannot escape through check scheduling.
        outcome = run_sequence(
            candidate, targets=targets, check_every=1, factories=factories
        )
        if outcome.divergence is not None and (
            outcome.divergence.target == divergence.target
        ):
            best["divergence"] = outcome.divergence
            return True
        return False

    # Phase 0: everything after the divergence is irrelevant.
    current = normalize_ops(list(ops[: divergence.op_index + 1]))
    if not fails(current):  # pragma: no cover - divergence should reproduce
        return list(ops), divergence

    # Phase 1: ddmin over op subsets.
    granularity = 2
    while len(current) >= 2 and budget[0] > 0:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current) and budget[0] > 0:
            candidate = normalize_ops(current[:start] + current[start + chunk:])
            if len(candidate) < len(current) and fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(current))

    # Phase 2: narrow the numeric payloads of the survivors.
    improved = True
    while improved and budget[0] > 0:
        improved = False
        for index in range(len(current)):
            for variant in _simpler_variants(current[index]):
                candidate = current[:index] + [variant] + current[index + 1:]
                if fails(candidate):
                    current = candidate
                    improved = True
                    break

    return current, best["divergence"]  # type: ignore[return-value]


# -- reproducers -------------------------------------------------------------


def reproducer_dict(
    ops: Sequence[Op],
    divergence: DivergenceRecord,
    *,
    targets: Sequence[str] = DEFAULT_TARGETS,
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    return {
        "version": 1,
        "seed": seed,
        "targets": list(targets),
        "divergence": divergence.to_json(),
        "ops": [op.to_json() for op in ops],
    }


def save_reproducer(path: str, data: Dict[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


def load_reproducer(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        data: Dict[str, Any] = json.load(handle)
    return data


def replay_reproducer(
    path: str,
    *,
    factories: Optional[Dict[str, Callable[[], FuzzTarget]]] = None,
) -> RunOutcome:
    """Re-run a saved reproducer at full check sensitivity."""
    data = load_reproducer(path)
    ops = [Op.from_json(entry) for entry in data["ops"]]
    targets = data.get("targets") or list(DEFAULT_TARGETS)
    return run_sequence(ops, targets=targets, check_every=1, factories=factories)


# -- top-level fuzz entry point ----------------------------------------------


@dataclass
class FuzzReport:
    """Everything one fuzz campaign produced."""

    config: FuzzConfig
    targets: Tuple[str, ...]
    outcome: RunOutcome
    ops: List[Op]
    shrunk_ops: Optional[List[Op]] = None
    shrunk_divergence: Optional[DivergenceRecord] = None

    @property
    def ok(self) -> bool:
        return self.outcome.ok

    def reproducer(self) -> Dict[str, Any]:
        assert self.outcome.divergence is not None, "no divergence to dump"
        if self.shrunk_ops is not None and self.shrunk_divergence is not None:
            return reproducer_dict(
                self.shrunk_ops,
                self.shrunk_divergence,
                targets=self.targets,
                seed=self.config.seed,
            )
        return reproducer_dict(
            self.ops,
            self.outcome.divergence,
            targets=self.targets,
            seed=self.config.seed,
        )


def fuzz(
    config: FuzzConfig,
    *,
    targets: Sequence[str] = DEFAULT_TARGETS,
    check_every: int = 32,
    shrink: bool = True,
    factories: Optional[Dict[str, Callable[[], FuzzTarget]]] = None,
) -> FuzzReport:
    """Generate ops per ``config``, run them, and shrink any failure."""
    ops = generate_ops(config)
    outcome = run_sequence(
        ops, targets=targets, check_every=check_every, factories=factories
    )
    report = FuzzReport(config, tuple(targets), outcome, ops)
    if outcome.divergence is not None and shrink:
        report.shrunk_ops, report.shrunk_divergence = shrink_ops(
            ops, outcome.divergence, targets=targets, factories=factories
        )
    return report
