"""Brute-force reference models the fuzz targets are compared against.

Every oracle here is deliberately implemented by a *different* algorithm
than the production code it checks:

* :func:`brute_force_stabbing_partition` computes the optimal stabbing
  partition by the classic O(n^2) piercing loop — repeatedly stab at the
  smallest remaining right endpoint — rather than the left-endpoint sweep
  of :func:`repro.core.stabbing.canonical_stabbing_partition`.  For 1-D
  intervals the two constructions provably coincide group-for-group, so
  disagreement convicts one of them.
* :func:`naive_hotspots` classifies hotspots by scanning the brute-force
  partition with the bare definition (size >= alpha * n), independent of
  the tracker's hysteresis machinery.
* :func:`oracle_r_insert_deltas` / :func:`oracle_s_insert_deltas` evaluate
  both query templates by nested loops over the model's live rows and
  subscriptions, independent of every index structure.

:class:`ModelState` is the fuzzer's ground truth: a trivially correct
mirror of the op sequence (plain dicts of live intervals, rows and
subscriptions) that the oracles read and every target is diffed against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.check import ops as op_mod
from repro.check.ops import Op

IntervalPair = Tuple[float, float]


# -- stabbing-partition oracle (O(n^2) piercing) ------------------------------


def brute_force_stabbing_partition(
    intervals: Sequence[IntervalPair],
) -> List[List[IntervalPair]]:
    """Optimal stabbing partition by repeated piercing, O(n^2).

    Take the smallest right endpoint h among the remaining intervals; every
    remaining interval containing h forms one group (this is optimal: any
    stabbing set must spend a point on the interval realizing h, and h
    covers a superset of what that point covers).  Repeat on the rest.
    """
    remaining = list(intervals)
    groups: List[List[IntervalPair]] = []
    while remaining:
        h = min(hi for __, hi in remaining)
        group = [iv for iv in remaining if iv[0] <= h <= iv[1]]
        remaining = [iv for iv in remaining if not (iv[0] <= h <= iv[1])]
        groups.append(group)
    return groups


def brute_force_tau(intervals: Sequence[IntervalPair]) -> int:
    """The stabbing number tau by the O(n^2) piercing oracle."""
    return len(brute_force_stabbing_partition(intervals))


def naive_hotspots(
    intervals: Sequence[IntervalPair], alpha: float
) -> List[List[IntervalPair]]:
    """Alpha-hotspot groups of the optimal partition, by bare definition."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    threshold = alpha * len(intervals)
    return [
        group
        for group in brute_force_stabbing_partition(intervals)
        if len(group) >= threshold
    ]


# -- model state -------------------------------------------------------------


@dataclass
class ModelState:
    """Ground-truth mirror of an op sequence.

    ``epsilon``/``alpha`` track the current maintenance parameters (the
    SET_EPSILON / SET_ALPHA ops); everything else is a plain dict of live
    entities keyed by the op ``key`` namespace.
    """

    intervals: Dict[int, IntervalPair] = field(default_factory=dict)
    r_rows: Dict[int, Tuple[float, float]] = field(default_factory=dict)  # a, b
    s_rows: Dict[int, Tuple[float, float]] = field(default_factory=dict)  # b, c
    band_queries: Dict[int, IntervalPair] = field(default_factory=dict)
    select_queries: Dict[int, Tuple[float, float, float, float]] = field(
        default_factory=dict
    )
    epsilon: float = 1.0
    alpha: float = 0.2

    # -- op application ------------------------------------------------------

    def is_legal(self, op: Op) -> bool:
        """Whether ``op`` is applicable to the current state (used by the
        shrinker to keep reduced sequences well-formed)."""
        kind, key = op.kind, op.key
        if kind == op_mod.INSERT_INTERVAL:
            return key not in self.intervals and op.values[0] <= op.values[1]
        if kind == op_mod.DELETE_INTERVAL:
            return key in self.intervals
        if kind == op_mod.INSERT_R:
            return key not in self.r_rows
        if kind == op_mod.DELETE_R:
            return key in self.r_rows
        if kind == op_mod.INSERT_S:
            return key not in self.s_rows
        if kind == op_mod.DELETE_S:
            return key in self.s_rows
        if kind == op_mod.SUB_BAND:
            return not self._query_live(key) and op.values[0] <= op.values[1]
        if kind == op_mod.SUB_SELECT:
            return (
                not self._query_live(key)
                and op.values[0] <= op.values[1]
                and op.values[2] <= op.values[3]
            )
        if kind == op_mod.UNSUB:
            return self._query_live(key)
        if kind == op_mod.SET_EPSILON:
            return op.values[0] > 0
        if kind == op_mod.SET_ALPHA:
            return 0 < op.values[0] <= 1
        return False

    def _query_live(self, qid: int) -> bool:
        return qid in self.band_queries or qid in self.select_queries

    def apply(self, op: Op) -> None:
        kind, key = op.kind, op.key
        if kind == op_mod.INSERT_INTERVAL:
            self.intervals[key] = (op.values[0], op.values[1])
        elif kind == op_mod.DELETE_INTERVAL:
            del self.intervals[key]
        elif kind == op_mod.INSERT_R:
            self.r_rows[key] = (op.values[0], op.values[1])
        elif kind == op_mod.DELETE_R:
            del self.r_rows[key]
        elif kind == op_mod.INSERT_S:
            self.s_rows[key] = (op.values[0], op.values[1])
        elif kind == op_mod.DELETE_S:
            del self.s_rows[key]
        elif kind == op_mod.SUB_BAND:
            self.band_queries[key] = (op.values[0], op.values[1])
        elif kind == op_mod.SUB_SELECT:
            self.select_queries[key] = (
                op.values[0], op.values[1], op.values[2], op.values[3]
            )
        elif kind == op_mod.UNSUB:
            self.band_queries.pop(key, None)
            self.select_queries.pop(key, None)
        elif kind == op_mod.SET_EPSILON:
            self.epsilon = op.values[0]
        elif kind == op_mod.SET_ALPHA:
            self.alpha = op.values[0]
        else:  # pragma: no cover - Op.__post_init__ rejects unknown kinds
            raise ValueError(f"unknown op kind {kind!r}")

    # -- oracle views --------------------------------------------------------

    def interval_multiset(self) -> List[IntervalPair]:
        return sorted(self.intervals.values())

    def tau(self) -> int:
        """Stabbing number of the live intervals (O(n^2) oracle)."""
        return brute_force_tau(list(self.intervals.values()))

    def subscription_count(self) -> int:
        return len(self.band_queries) + len(self.select_queries)

    # -- nested-loop join deltas ---------------------------------------------

    def oracle_r_insert_deltas(self, a: float, b: float) -> Dict[int, Tuple[int, ...]]:
        """Expected deltas for inserting R(a, b): nested loops over the live
        S rows and every subscription; {qid: sorted sids}, empty qids
        omitted (matching :func:`repro.runtime.replay.normalize_deltas`)."""
        out: Dict[int, Tuple[int, ...]] = {}
        for qid, (lo, hi) in self.band_queries.items():
            hits = sorted(
                sid for sid, (sb, __) in self.s_rows.items() if lo <= sb - b <= hi
            )
            if hits:
                out[qid] = tuple(hits)
        for qid, (a_lo, a_hi, c_lo, c_hi) in self.select_queries.items():
            if not a_lo <= a <= a_hi:
                continue
            hits = sorted(
                sid
                for sid, (sb, sc) in self.s_rows.items()
                if sb == b and c_lo <= sc <= c_hi
            )
            if hits:
                out[qid] = tuple(hits)
        return out

    def oracle_s_insert_deltas(self, b: float, c: float) -> Dict[int, Tuple[int, ...]]:
        """Expected deltas for inserting S(b, c) (the symmetric direction:
        matches come from the live R rows)."""
        out: Dict[int, Tuple[int, ...]] = {}
        for qid, (lo, hi) in self.band_queries.items():
            hits = sorted(
                rid for rid, (__, rb) in self.r_rows.items() if lo <= b - rb <= hi
            )
            if hits:
                out[qid] = tuple(hits)
        for qid, (a_lo, a_hi, c_lo, c_hi) in self.select_queries.items():
            if not c_lo <= c <= c_hi:
                continue
            hits = sorted(
                rid
                for rid, (ra, rb) in self.r_rows.items()
                if rb == b and a_lo <= ra <= a_hi
            )
            if hits:
                out[qid] = tuple(hits)
        return out
