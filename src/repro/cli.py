"""Command-line interface: ``python -m repro <command>``.

Self-contained utilities that do not require the repository checkout:

* ``info``      — version and subsystem inventory;
* ``zipf``      — print the Figure 2 coverage curve for chosen parameters;
* ``partition`` — read intervals ("lo hi" per line) from a file or stdin
  and print their canonical stabbing partition and hotspots;
* ``validate``  — run a built-in randomized cross-validation sweep (every
  join strategy against brute force) and report pass/fail, a quick
  install smoke test;
* ``fuzz``      — differential fuzzing of every maintained structure against
  brute-force oracles (``repro.check``), with delta-debugging shrinkage of
  failures into replayable JSON reproducers;
* ``replay``    — generate a deterministic mixed event stream and replay it
  through the sharded+batched runtime pipeline, asserting result-delta
  equivalence against the unsharded system and reporting throughput;
* ``serve``     — run the runtime pipeline as a long-lived loop over a
  synthetic stream, printing periodic metric snapshots; with ``--wal-dir``
  every event is write-ahead logged and checkpointed so an interrupted
  serve resumes where it stopped (Ctrl-C drains cleanly); ``--trace-out``
  records tracing spans to a Chrome trace, ``--metrics-port`` serves live
  Prometheus/JSON metrics, ``--snapshot-out`` appends JSONL snapshots;
* ``stats``     — render a metric snapshot from a ``--snapshot-out`` JSONL
  stream or a live ``--metrics-port`` endpoint (text, Prometheus, or JSON);
  ``--watch SECONDS`` re-renders on an interval like ``watch(1)``;
* ``top``       — a refreshing terminal dashboard over the same sources:
  throughput, end-to-end latency quantiles, hotspot churn, and a per-shard
  table (events, e2e/lag p95, ring occupancy, headroom);
* ``recover``   — rebuild a sharded system from a WAL directory (newest
  valid checkpoint + sequence-deduped WAL replay) and report what was
  restored;
* ``bench``     — run the batched-throughput benchmark (columnar batch fast
  path vs per-event probing on the Fig-10(i) band-join workload) and write
  the ``BENCH_batch_fastpath.json`` record at the repo root (the
  ``BENCH_*.json`` convention in ``docs/RUNTIME.md``; ``--out`` overrides).

Figure regeneration itself lives in ``benchmarks/`` (run with
``pytest benchmarks/ --benchmark-only`` from a checkout).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional, Sequence

from repro import __version__
from repro.core.intervals import Interval
from repro.core.stabbing import canonical_stabbing_partition


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} — Scalable Continuous Query Processing by Tracking Hotspots (VLDB 2006)")
    print("subsystems:")
    for name, what in [
        ("repro.core", "stabbing partitions, dynamic maintenance, hotspot tracking, SSI"),
        ("repro.dstruct", "B+ tree, R-tree, interval tree, interval skip list, treap"),
        ("repro.engine", "relations, query model, ContinuousQuerySystem facade"),
        ("repro.operators", "BJ-*/SJ-* strategies, hotspot processing, extensions"),
        ("repro.histogram", "EQW-HIST, SSI-HIST, OPTIMAL"),
        ("repro.workload", "Table 1 generators, Zipf popularity"),
        ("repro.fastpath", "columnar batch probes: flat snapshots, vectorized sort-merge kernels"),
        ("repro.runtime", "sharded micro-batched pipeline: routing, backpressure, metrics, replay"),
        ("repro.check", "differential fuzzing: brute-force oracles, invariant probes, shrinking"),
        ("repro.durability", "write-ahead log, checkpoints, crash recovery (serve --wal-dir, recover)"),
        ("repro.obs", "tracing spans, Prometheus/JSONL export, cross-process telemetry merge, dashboards (serve --trace-out, stats, top)"),
        ("repro.analysis", _analysis_summary()),
    ]:
        print(f"  {name:<16} {what}")
    return 0


def _analysis_summary() -> str:
    from repro.analysis import rule_catalog

    return (
        "project-aware static analysis: invariant lint engine "
        f"({len(rule_catalog())} rules), baseline ratchet, typing gate"
    )


def _cmd_zipf(args: argparse.Namespace) -> int:
    from repro.workload.zipf import coverage_curve

    tops = sorted({min(k, args.groups) for k in args.top})
    print(f"coverage of top-k of {args.groups} Zipf(beta={args.beta}) groups:")
    for k, coverage in zip(tops, coverage_curve(args.groups, args.beta, tops)):
        print(f"  top-{k:<6} {coverage:7.1%}")
    return 0


def _read_intervals(path: Optional[str]) -> List[Interval]:
    stream = sys.stdin if path in (None, "-") else open(path)
    intervals = []
    try:
        for line_no, line in enumerate(stream, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise SystemExit(f"line {line_no}: expected 'lo hi', got {line!r}")
            intervals.append(Interval(float(parts[0]), float(parts[1])))
    finally:
        if stream is not sys.stdin:
            stream.close()
    return intervals


def _cmd_partition(args: argparse.Namespace) -> int:
    intervals = _read_intervals(args.file)
    if not intervals:
        print("no intervals read", file=sys.stderr)
        return 1
    partition = canonical_stabbing_partition(intervals)
    print(f"{len(intervals)} intervals -> tau = {partition.size} stabbing groups")
    hotspots = partition.hotspots(args.alpha)
    for rank, group in enumerate(
        sorted(partition.groups, key=lambda g: -g.size), start=1
    ):
        tag = "HOTSPOT" if group in hotspots else "       "
        print(
            f"  #{rank:<3} {tag} size={group.size:<6} "
            f"stab point={group.stabbing_point:g} common={group.common}"
        )
    covered = sum(group.size for group in hotspots) / len(intervals)
    print(f"{len(hotspots)} alpha={args.alpha:g} hotspots cover {covered:.0%} of intervals")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.engine.queries import (
        BandJoinQuery,
        SelectJoinQuery,
        brute_force_band_join,
        brute_force_select_join,
    )
    from repro.engine.table import TableR, TableS
    from repro.operators import make_band_strategies, make_select_strategies

    rng = random.Random(args.seed)
    failures = 0
    for trial in range(args.trials):
        table_s = TableS(order=4)
        table_r = TableR(order=4)
        for __ in range(150):
            table_s.add(float(rng.randrange(12)), rng.uniform(0, 60))
        band_queries = []
        select_queries = []
        for __ in range(60):
            lo = rng.uniform(-8, 8)
            band_queries.append(BandJoinQuery(Interval(lo, lo + rng.uniform(0, 4))))
            a_lo, c_lo = rng.uniform(0, 50), rng.uniform(0, 50)
            select_queries.append(
                SelectJoinQuery(
                    Interval(a_lo, a_lo + rng.uniform(0, 15)),
                    Interval(c_lo, c_lo + rng.uniform(0, 15)),
                )
            )
        band = make_band_strategies(table_s, table_r)
        select = make_select_strategies(table_s, table_r)
        for strategy in band.values():
            for query in band_queries:
                strategy.add_query(query)
        for strategy in select.values():
            for query in select_queries:
                strategy.add_query(query)
        for __ in range(5):
            r = table_r.new_row(rng.uniform(0, 60), float(rng.randrange(12)))

            def norm(results):
                return {q.qid: sorted(s.sid for s in v) for q, v in results.items()}

            want_band = norm(brute_force_band_join(band_queries, r, table_s))
            want_select = norm(brute_force_select_join(select_queries, r, table_s))
            for name, strategy in band.items():
                if norm(strategy.process_r(r)) != want_band:
                    print(f"MISMATCH: {name} trial {trial}", file=sys.stderr)
                    failures += 1
            for name, strategy in select.items():
                if norm(strategy.process_r(r)) != want_select:
                    print(f"MISMATCH: {name} trial {trial}", file=sys.stderr)
                    failures += 1
    total = args.trials * 5 * 8
    print(f"validate: {total - failures}/{total} strategy evaluations matched brute force")
    return 1 if failures else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.check import (
        DEFAULT_TARGETS,
        FuzzConfig,
        fuzz,
        replay_reproducer,
        save_reproducer,
    )

    targets = (
        [name.strip() for name in args.targets.split(",") if name.strip()]
        if args.targets
        else list(DEFAULT_TARGETS)
    )

    if args.replay:
        outcome = replay_reproducer(args.replay)
        if outcome.ok:
            print(
                f"replay: {args.replay} no longer diverges "
                f"({outcome.ops_applied} ops, {outcome.check_rounds} check rounds)"
            )
            return 0
        record = outcome.divergence
        print(f"replay: diverged at op {record.op_index}: {record.message}")
        return 1

    print(
        f"fuzzing {args.ops} ops (seed={args.seed}) against "
        f"{', '.join(targets)}; invariant sweep every {args.check_every} ops"
    )
    report = fuzz(
        FuzzConfig(seed=args.seed, n_ops=args.ops),
        targets=targets,
        check_every=args.check_every,
        shrink=args.shrink,
    )
    if report.ok:
        print(
            f"fuzz: {report.outcome.ops_applied} ops applied, "
            f"{report.outcome.check_rounds} invariant sweeps, zero divergences"
        )
        return 0
    record = report.outcome.divergence
    print(f"fuzz: DIVERGENCE at op {record.op_index}: {record.message}", file=sys.stderr)
    if report.shrunk_ops is not None:
        print(
            f"shrunk to {len(report.shrunk_ops)} op(s): "
            f"{report.shrunk_divergence.message}",
            file=sys.stderr,
        )
    save_reproducer(args.out, report.reproducer())
    print(f"reproducer written to {args.out} (replay with: repro fuzz --replay {args.out})")
    return 1


def _stream_profile_from_args(args: argparse.Namespace):
    from repro.runtime.replay import StreamProfile

    return StreamProfile(
        n_events=args.events,
        n_initial_queries=args.queries,
        band_fraction=args.band_fraction,
        delete_fraction=args.delete_fraction,
        churn=args.churn,
        seed=args.seed,
    )


def _cmd_replay(args: argparse.Namespace) -> int:
    import time

    from repro.engine.events import DataEvent
    from repro.runtime.replay import generate_mixed_stream, run_replay

    stream = generate_mixed_stream(_stream_profile_from_args(args))
    data_events = sum(isinstance(e, DataEvent) for e in stream)
    print(
        f"replaying {data_events} data events / "
        f"{len(stream) - data_events} query events "
        f"through {args.shards} shard(s), batch={args.batch_size}, mode={args.mode}"
    )
    start = time.perf_counter()
    report = run_replay(
        stream,
        num_shards=args.shards,
        batch_size=args.batch_size,
        alpha=args.alpha,
        mode=args.mode,
        backpressure=args.policy,
    )
    elapsed = time.perf_counter() - start
    print(report.summary())
    print(f"both passes took {elapsed:.2f}s total")
    stats = report.router_stats
    print(
        f"router: select queries/shard {stats['select_queries_per_shard']}, "
        f"band queries/shard {stats['band_queries_per_shard']}, "
        f"S-probe imbalance {stats['select_probe_imbalance']:.2f}"
    )
    if args.verbose:
        for name, value in report.metrics["counters"].items():
            print(f"  {name:<32} {value:>12,}")
    if not report.equivalent:
        for line in report.mismatches[:10]:
            print(f"MISMATCH {line}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time
    from pathlib import Path

    from repro.engine.events import DataEvent
    from repro.obs.export import MetricsServer, SnapshotWriter
    from repro.obs.tracing import NULL_TRACER, RingTracer, write_chrome_trace
    from repro.runtime.metrics import MetricsRegistry
    from repro.runtime.pipeline import EventPipeline
    from repro.runtime.replay import generate_mixed_stream

    metrics = MetricsRegistry()
    want_tracing = args.trace_out is not None or args.metrics_port is not None
    tracer = RingTracer() if want_tracing else NULL_TRACER
    durability = None
    if args.wal_dir is not None:
        from repro.durability import DurabilityManager

        if args.policy != "block":
            print("serve: --wal-dir requires --policy block", file=sys.stderr)
            return 2
        if args.mode in ("process", "process-shm"):
            print(
                f"serve: --wal-dir is not supported with --mode {args.mode}",
                file=sys.stderr,
            )
            return 2
        durability = DurabilityManager(
            Path(args.wal_dir),
            fsync=args.fsync,
            checkpoint_every=args.checkpoint_every or None,
            metrics=metrics,
            tracer=tracer,
        )
    pipeline = EventPipeline(
        num_shards=args.shards,
        alpha=args.alpha,
        batch_size=args.batch_size,
        max_delay=args.max_delay,
        queue_capacity=args.queue_capacity,
        backpressure=args.policy,
        mode=args.mode,
        metrics=metrics,
        durability=durability,
        tracer=tracer,
    )
    snapshots = (
        SnapshotWriter(args.snapshot_out, max_bytes=args.snapshot_max_bytes or None)
        if args.snapshot_out
        else None
    )
    server = None
    if args.metrics_port is not None:
        server = MetricsServer(
            metrics,
            port=args.metrics_port,
            tracer=tracer if isinstance(tracer, RingTracer) else None,
        )
        print(f"metrics server listening on {server.url} (/metrics, /metrics.json, /trace.json)")
    resume_at = 0
    if durability is not None:
        report = durability.attach(pipeline)
        print(report.summary())
        resume_at = report.next_seq
    stream = generate_mixed_stream(_stream_profile_from_args(args))
    if resume_at:
        print(f"resuming the deterministic stream at event {resume_at}/{len(stream)}")
    print(
        f"serving {args.events} synthetic events on {args.shards} shard(s) "
        f"(batch={args.batch_size}, policy={args.policy}, mode={args.mode}); "
        f"reporting every {args.report_every} events"
    )

    def publish() -> None:
        # Sampling sets the obs/ gauges, so it runs before any render or
        # snapshot in the same interval sees them.
        pipeline.sample_hotspots()
        if snapshots is not None:
            extra = None
            if isinstance(tracer, RingTracer):
                extra = {"spans_recorded": tracer.recorded, "spans_dropped": tracer.dropped}
            snapshots.write(metrics, extra)

    start = time.perf_counter()
    served = 0
    interrupted = False
    try:
        try:
            for event in stream[resume_at:]:
                pipeline.submit(event)
                if isinstance(event, DataEvent):
                    served += 1
                    if served % args.report_every == 0:
                        rate = served / max(time.perf_counter() - start, 1e-9)
                        publish()
                        print(f"\n-- {served} events ({rate:,.0f} events/s) --")
                        print(pipeline.metrics.render())
            pipeline.drain()
        except KeyboardInterrupt:
            # Clean shutdown: drain what was accepted (close() below also
            # syncs the WAL), report, and exit 0 — a durable serve resumes
            # from here on the next run.
            interrupted = True
            print("\ninterrupted — draining pending events", file=sys.stderr)
            pipeline.drain()
    finally:
        pipeline.close()
        if server is not None:
            server.close()
    publish()
    elapsed = max(time.perf_counter() - start, 1e-9)
    state = "interrupted after" if interrupted else "served"
    print(f"\n{state} {served} events in {elapsed:.2f}s ({served / elapsed:,.0f} events/s)")
    print(pipeline.metrics.render())
    if args.trace_out is not None and isinstance(tracer, RingTracer):
        written = write_chrome_trace(args.trace_out, tracer)
        print(
            f"trace written to {args.trace_out} "
            f"({written} span(s), {tracer.dropped} dropped)"
        )
    if snapshots is not None:
        print(f"metric snapshots written to {args.snapshot_out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import (
        latest_snapshot,
        read_snapshots,
        render_prometheus,
        render_snapshot,
    )

    if (args.jsonl is None) == (args.url is None):
        print("stats: exactly one of --jsonl or --url is required", file=sys.stderr)
        return 2
    if args.watch is not None:
        from repro.obs import top as obs_top

        if args.format != "text":
            print("stats: --watch implies --format text", file=sys.stderr)
            return 2
        if args.seq is not None:
            print("stats: --watch cannot be combined with --seq", file=sys.stderr)
            return 2
        fetch = (
            (lambda: obs_top.fetch_record_from_jsonl(args.jsonl))
            if args.jsonl is not None
            else (lambda: obs_top.fetch_record_from_url(args.url))
        )

        def render_stats(record, previous):
            header = f"snapshot seq={record['seq']}" if "seq" in record else "live"
            return header + "\n" + render_snapshot(record["metrics"])

        obs_top.watch(
            fetch,
            render_stats,
            interval=args.watch,
            iterations=args.iterations,
        )
        return 0
    header = ""
    if args.jsonl is not None:
        try:
            if args.seq is None:
                record = latest_snapshot(args.jsonl)
            else:
                matches = [
                    r for r in read_snapshots(args.jsonl) if r.get("seq") == args.seq
                ]
                if not matches:
                    print(f"stats: no snapshot with seq={args.seq}", file=sys.stderr)
                    return 1
                record = matches[-1]
        except (OSError, ValueError) as exc:
            print(f"stats: {exc}", file=sys.stderr)
            return 1
        snapshot = record["metrics"]
        header = (
            f"snapshot seq={record['seq']} "
            f"uptime={record.get('uptime_us', 0) / 1e6:.1f}s from {args.jsonl}"
        )
    else:
        from urllib.error import URLError
        from urllib.request import urlopen

        url = args.url.rstrip("/") + "/metrics.json"
        try:
            with urlopen(url) as response:
                snapshot = json.loads(response.read().decode("utf-8"))
        except (OSError, URLError, ValueError) as exc:
            print(f"stats: {url}: {exc}", file=sys.stderr)
            return 1
        header = f"live metrics from {url}"
    if args.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    elif args.format == "prom":
        sys.stdout.write(render_prometheus(snapshot))
    else:
        print(header)
        print(render_snapshot(snapshot))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs import top as obs_top

    if (args.jsonl is None) == (args.url is None):
        print("top: exactly one of --jsonl or --url is required", file=sys.stderr)
        return 2
    fetch = (
        (lambda: obs_top.fetch_record_from_jsonl(args.jsonl))
        if args.jsonl is not None
        else (lambda: obs_top.fetch_record_from_url(args.url))
    )
    obs_top.watch(
        fetch,
        obs_top.render_dashboard,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
    )
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.durability import DurabilityError, recover_system

    try:
        system, report = recover_system(
            Path(args.wal_dir),
            num_shards=args.shards,
            alpha=args.alpha,
            epsilon=args.epsilon,
        )
    except DurabilityError as exc:
        print(f"recover: {exc}", file=sys.stderr)
        return 1
    print(report.summary())
    for name in report.skipped_checkpoints:
        print(f"  skipped invalid checkpoint: {name}", file=sys.stderr)
    shard0 = system.shards[0]
    print(
        f"recovered state: {len(shard0.table_r)} R row(s), "
        f"{len(shard0.table_s_band)} S row(s), "
        f"{system.subscription_count} subscription(s) "
        f"across {len(system.shards)} shard(s)"
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.batch_fastpath import (
        format_record,
        run_band_batch_benchmark,
        write_bench_json,
    )

    record = run_band_batch_benchmark(
        query_count=args.queries,
        tau=args.tau,
        event_count=args.events,
        batch_sizes=tuple(args.batch_sizes),
        repeats=args.repeats,
        warmup=args.warmup,
        seed=args.seed,
    )
    print(format_record(record))
    if args.out:
        write_bench_json(args.out, record)
        print(f"record written to {args.out}")
    return 0


def _cmd_racecheck(args: argparse.Namespace) -> int:
    """Drive the threaded pipeline under the dynamic race witness.

    The environment variable must be set *before* the runtime modules are
    imported (the ``@guarded`` write barriers install at class-definition
    time), so all runtime imports live inside this function.
    """
    import os
    import threading
    import time

    os.environ["REPRO_RACECHECK"] = "1"

    from repro.analysis import racecheck
    from repro.analysis.racecheck import RaceCheckError
    from repro.runtime.metrics import MetricsRegistry
    from repro.runtime.pipeline import EventPipeline
    from repro.runtime.replay import StreamProfile, generate_mixed_stream
    from repro.obs.tracing import RingTracer

    racecheck.reset()
    metrics = MetricsRegistry()
    tracer = RingTracer()
    pipeline = EventPipeline(
        num_shards=args.shards,
        batch_size=args.batch_size,
        mode="thread",
        metrics=metrics,
        tracer=tracer,
    )
    stream = generate_mixed_stream(
        StreamProfile(
            n_events=args.events,
            n_initial_queries=args.queries,
            seed=args.seed,
        )
    )
    print(
        f"racecheck: {args.events} events on {args.shards} thread shard(s) "
        f"with 2 concurrent snapshot readers (REPRO_RACECHECK=1)"
    )

    violations: list[str] = []
    stop = threading.Event()

    def reader() -> None:
        # Hammer the cross-thread read surface while the pipeline writes.
        while not stop.is_set():
            try:
                metrics.snapshot()
                tracer.snapshot()
                tracer.to_chrome_trace()
            except RaceCheckError as exc:  # pragma: no cover - failure path
                violations.append(str(exc))
                return
            time.sleep(0.001)

    readers = [
        threading.Thread(target=reader, name=f"racecheck-reader-{i}", daemon=True)
        for i in range(2)
    ]
    for t in readers:
        t.start()
    try:
        for event in stream:
            pipeline.submit(event)
        pipeline.drain()
    except RaceCheckError as exc:  # pragma: no cover - failure path
        violations.append(str(exc))
    finally:
        stop.set()
        for t in readers:
            t.join(timeout=5.0)
        pipeline.close()

    report = racecheck.report()
    print(
        f"locks created: {report['locks_created']}, "
        f"acquisitions: {report['acquisitions']}, "
        f"guard checks: {report['guard_checks']}"
    )
    edges = report["edges"]
    if edges:
        print("held-lock DAG edges:")
        for edge in edges:
            print(f"  {edge}")
    else:
        print("held-lock DAG: flat (no nested acquisitions observed)")
    if violations:
        print(f"\n{len(violations)} violation(s):", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print("racecheck clean")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        DEFAULT_BASELINE_NAME,
        Baseline,
        all_rules,
        lint_paths,
        render_catalog,
        render_human,
        render_json,
    )
    from repro.analysis.engine import iter_python_files

    if args.list_rules:
        print(render_catalog("json" if args.format == "json" else "human"))
        return 0

    root = Path(args.root).resolve()
    raw_paths = args.paths or ["src/repro"]
    paths = [Path(p) if Path(p).is_absolute() else root / p for p in raw_paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2

    select = args.select.split(",") if args.select else None
    if getattr(args, "concurrency", False):
        from repro.analysis.concurrency import CONCURRENCY_RULE_CODES

        select = sorted(set(select or ()) | set(CONCURRENCY_RULE_CODES))
    try:
        rules = all_rules(select)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    findings = lint_paths(paths, root, rules)
    files_checked = sum(1 for _ in iter_python_files(paths))

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    )
    baseline = Baseline.load(baseline_path) if baseline_path.exists() else Baseline()
    if args.update_baseline:
        updated = baseline.ratchet(findings)
        updated.save(baseline_path)
        print(
            f"baseline written to {baseline_path} "
            f"({len(updated.counts)} fingerprint(s))"
        )
        return 0
    delta = baseline.check(findings)

    if args.format == "json":
        print(render_json(delta, files_checked))
    else:
        print(render_human(delta))
    return 0 if delta.ok else 1


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--events", type=int, default=5_000, help="data events to generate")
    parser.add_argument("--queries", type=int, default=200, help="initial subscriptions")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--alpha", type=float, default=0.01, help="hotspot threshold")
    parser.add_argument("--band-fraction", type=float, default=0.3,
                        help="fraction of subscriptions that are band joins")
    parser.add_argument("--delete-fraction", type=float, default=0.2)
    parser.add_argument("--churn", type=float, default=0.0,
                        help="fraction of deletions targeting just-inserted rows")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mode",
        choices=["inline", "thread", "process", "process-shm"],
        default="inline",
    )
    parser.add_argument("--policy", choices=["block", "drop-oldest", "reject"], default="block")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Hotspot-tracking continuous query processing (VLDB 2006 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and subsystem inventory").set_defaults(func=_cmd_info)

    zipf = sub.add_parser("zipf", help="Figure 2 coverage curve")
    zipf.add_argument("--groups", type=int, default=5000)
    zipf.add_argument("--beta", type=float, default=1.0)
    zipf.add_argument("--top", type=int, nargs="+", default=[10, 50, 100, 500, 1000, 5000])
    zipf.set_defaults(func=_cmd_zipf)

    part = sub.add_parser("partition", help="stabbing-partition a file of intervals")
    part.add_argument("file", nargs="?", default="-", help="file with 'lo hi' lines (default: stdin)")
    part.add_argument("--alpha", type=float, default=0.1, help="hotspot threshold")
    part.set_defaults(func=_cmd_partition)

    validate = sub.add_parser("validate", help="randomized strategy cross-validation")
    validate.add_argument("--trials", type=int, default=3)
    validate.add_argument("--seed", type=int, default=0)
    validate.set_defaults(func=_cmd_validate)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: run randomized ops against every target "
        "with brute-force oracles, shrinking any divergence to a minimal "
        "reproducer",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--ops", type=int, default=2_000, help="ops to generate")
    fuzz.add_argument(
        "--targets",
        default=None,
        help="comma-separated target subset (default: all of "
        "lazy,refined,multidim,tracker,batcher,sharded,fastpath,durability; "
        "'transport' — the process-shm vs inline pipeline check — is "
        "opt-in because it spawns worker processes)",
    )
    fuzz.add_argument(
        "--shrink",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="delta-debug a failing sequence to a minimal reproducer",
    )
    fuzz.add_argument(
        "--check-every",
        type=int,
        default=32,
        help="ops between full invariant sweeps (per-op checks always run)",
    )
    fuzz.add_argument(
        "--out", default="fuzz-reproducer.json", help="reproducer output path"
    )
    fuzz.add_argument(
        "--replay", metavar="FILE", default=None,
        help="re-run a saved reproducer instead of fuzzing",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    replay = sub.add_parser(
        "replay", help="replay a mixed stream through the sharded runtime and verify equivalence"
    )
    _add_runtime_args(replay)
    replay.add_argument("--verbose", action="store_true", help="print pipeline counters")
    replay.set_defaults(func=_cmd_replay)

    serve = sub.add_parser(
        "serve", help="run the runtime pipeline over a synthetic stream with periodic metrics"
    )
    _add_runtime_args(serve)
    serve.add_argument("--report-every", type=int, default=2_000)
    serve.add_argument("--max-delay", type=float, default=None,
                       help="flush a partial batch after this many seconds")
    serve.add_argument("--queue-capacity", type=int, default=1024)
    serve.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="write-ahead log directory: log every event before applying it "
        "and recover/resume from this directory on startup",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=5_000, metavar="N",
        help="events between checkpoints when --wal-dir is set (0 disables)",
    )
    serve.add_argument(
        "--fsync", choices=["always", "batch", "never"], default="batch",
        help="WAL fsync policy: per append, per micro-batch, or OS-buffered",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record tracing spans and write a Chrome trace_event JSON file "
        "on exit (load in chrome://tracing or Perfetto)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve live metrics over HTTP on this port (0 = ephemeral): "
        "/metrics (Prometheus), /metrics.json, /trace.json",
    )
    serve.add_argument(
        "--snapshot-out", default=None, metavar="FILE",
        help="append a JSONL metric snapshot every --report-every events "
        "(read back with: repro stats --jsonl FILE)",
    )
    serve.add_argument(
        "--snapshot-max-bytes", type=int, default=None, metavar="BYTES",
        help="rotate --snapshot-out once it exceeds this size (the previous "
        "generation is kept at FILE.1; readers see both)",
    )
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser(
        "stats",
        help="render a metric snapshot: the latest record of a serve "
        "--snapshot-out JSONL stream, or a live --metrics-port endpoint",
    )
    stats.add_argument(
        "--jsonl", default=None, metavar="FILE",
        help="JSONL snapshot stream written by serve --snapshot-out",
    )
    stats.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a serve --metrics-port endpoint (e.g. http://127.0.0.1:9090)",
    )
    stats.add_argument(
        "--seq", type=int, default=None,
        help="pick this snapshot seq from --jsonl instead of the latest",
    )
    stats.add_argument(
        "--format", choices=["text", "prom", "json"], default="text",
        help="text table (default), Prometheus exposition, or raw JSON",
    )
    stats.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-render the text snapshot on this interval (Ctrl-C to stop)",
    )
    stats.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="with --watch: stop after N frames (default: run until Ctrl-C)",
    )
    stats.set_defaults(func=_cmd_stats)

    top = sub.add_parser(
        "top",
        help="refreshing terminal dashboard: throughput, e2e latency "
        "quantiles, hotspot churn, and a per-shard table, from a serve "
        "--snapshot-out stream or --metrics-port endpoint",
    )
    top.add_argument(
        "--jsonl", default=None, metavar="FILE",
        help="JSONL snapshot stream written by serve --snapshot-out",
    )
    top.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of a serve --metrics-port endpoint",
    )
    top.add_argument("--interval", type=float, default=2.0, metavar="SECONDS")
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (for logs/pipes)",
    )
    top.set_defaults(func=_cmd_top)

    recover = sub.add_parser(
        "recover",
        help="rebuild a sharded system from a WAL directory and report the "
        "restored state (checkpoint + sequence-deduped WAL replay)",
    )
    recover.add_argument(
        "--wal-dir", required=True, metavar="DIR",
        help="durability directory written by serve --wal-dir",
    )
    recover.add_argument(
        "--shards", type=int, default=4,
        help="shard count when no checkpoint manifest records one",
    )
    recover.add_argument(
        "--alpha", type=float, default=0.01,
        help="hotspot threshold when no checkpoint manifest records one",
    )
    recover.add_argument(
        "--epsilon", type=float, default=1.0,
        help="SSI epsilon when no checkpoint manifest records one",
    )
    recover.set_defaults(func=_cmd_recover)

    bench = sub.add_parser(
        "bench", help="batched vs per-event band-join throughput (batch fast path)"
    )
    bench.add_argument("--queries", type=int, default=20_000, help="registered band joins")
    bench.add_argument("--tau", type=int, default=60, help="target stabbing number")
    bench.add_argument("--events", type=int, default=200, help="R arrivals to probe")
    bench.add_argument(
        "--batch-sizes", type=int, nargs="+", default=[16, 64, 256], metavar="N"
    )
    bench.add_argument("--repeats", type=int, default=3, help="timed passes (best taken)")
    bench.add_argument("--warmup", type=int, default=1, help="untimed warmup passes")
    bench.add_argument("--seed", type=int, default=9)
    bench.add_argument(
        "--out", default="BENCH_batch_fastpath.json", metavar="FILE",
        help="write the benchmark record as JSON; BENCH_*.json at the repo "
        "root is the convention CI artifact globs pick up (see "
        "docs/RUNTIME.md); pass --out '' to skip writing",
    )
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint",
        help="project-aware static analysis: invariant rules RA001-RA006, "
        "hygiene rules, and concurrency-safety rules RA201-RA206, with "
        "noqa suppression and a baseline ratchet",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro under --root)",
    )
    lint.add_argument("--root", default=".", help="repository root for relative paths")
    lint.add_argument("--format", choices=["human", "json"], default="human")
    lint.add_argument("--list-rules", action="store_true", help="print the rule catalog")
    lint.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file (default: <root>/.repro-lint-baseline.json if present)",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="write the ratcheted baseline (counts only ever shrink) and exit",
    )
    lint.add_argument(
        "--concurrency", action="store_true",
        help="run the concurrency-safety rules (RA201-RA206); combines "
        "with --select by union",
    )
    lint.set_defaults(func=_cmd_lint)

    racecheck = sub.add_parser(
        "racecheck",
        help="dynamic race witness: drive the threaded pipeline with "
        "concurrent metric/trace readers under REPRO_RACECHECK=1 and "
        "report the observed lock-order DAG",
    )
    racecheck.add_argument("--events", type=int, default=2_000)
    racecheck.add_argument("--queries", type=int, default=100)
    racecheck.add_argument("--shards", type=int, default=4)
    racecheck.add_argument("--batch-size", type=int, default=32)
    racecheck.add_argument("--seed", type=int, default=0)
    racecheck.set_defaults(func=_cmd_racecheck)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
