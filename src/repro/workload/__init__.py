"""Synthetic workload generators matching the paper's Table 1."""

from repro.workload.generator import (
    clustered_intervals,
    make_band_join_queries,
    make_select_join_queries,
    make_tables,
    mixed_query_stream,
    r_insert_events,
    spread_anchors,
)
from repro.workload.params import WorkloadParams, bench_scale
from repro.workload.zipf import ZipfSampler, coverage_curve, zipf_weights

__all__ = [
    "WorkloadParams",
    "ZipfSampler",
    "bench_scale",
    "clustered_intervals",
    "coverage_curve",
    "make_band_join_queries",
    "make_select_join_queries",
    "make_tables",
    "mixed_query_stream",
    "r_insert_events",
    "spread_anchors",
    "zipf_weights",
]
