"""Experimental parameters (Table 1 of the paper).

The paper's workload: two 100,000-tuple tables and 100,000 initial
continuous queries over an integer domain [0, 10000], with

============================  =======================
Join attribute R.B            Uni(0, 10000)
Local selection R.A, S.C      Uni(0, 10000)
Join attribute S.B            Normal(5000, 1000)
Midpoint of rangeA_i          Normal(mu1, sigma1^2)
Length of rangeA_i, rangeC_i  Normal(mu2, sigma2^2)
Midpoint of rangeB_i/rangeC_i Uni(0, 10000)
Length of rangeB_i            Normal(mu3, sigma3^2)
============================  =======================

The mus and sigmas "adjust various input characteristics that affect
performance, such as selectivities of incoming events against continuous
queries as well as the degree of overlap among continuous queries".

Our benchmarks default to scaled-down sizes so every figure regenerates in
seconds on a laptop; ``REPRO_BENCH_SCALE`` (a float multiplier, default 1.0)
scales the table and query counts back up towards the paper's.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace


DOMAIN_LO = 0.0
DOMAIN_HI = 10_000.0


def bench_scale() -> float:
    """Benchmark size multiplier from the REPRO_BENCH_SCALE env var."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_SCALE must be a number, got {raw!r}") from exc
    if scale <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return scale


@dataclass(frozen=True)
class WorkloadParams:
    """Table 1, parameterized.

    The defaults mirror the paper's distributions; table/query counts are
    the scaled-down benchmark defaults (multiply by ``bench_scale()``).
    """

    seed: int = 0
    domain_lo: float = DOMAIN_LO
    domain_hi: float = DOMAIN_HI
    table_size: int = 10_000
    query_count: int = 10_000
    # S.B ~ Normal(mu, sigma) discretized, clipped to the domain; controls
    # how many S-tuples join with an incoming event (Figure 8(iv)).
    s_b_mean: float = 5_000.0
    s_b_sigma: float = 1_000.0
    # rangeA: midpoint Normal(mu1, sigma1), length Normal(mu2, sigma2);
    # controls event selectivity on local R.A selections (Figure 8(iii)).
    range_a_mid_mean: float = 5_000.0
    range_a_mid_sigma: float = 2_000.0
    range_a_len_mean: float = 1_000.0
    range_a_len_sigma: float = 200.0
    # rangeC / rangeB: midpoints uniform; lengths Normal(mu, sigma); the
    # length distribution controls the stabbing number (Figures 7(ii),
    # 10(ii)).
    range_c_len_mean: float = 1_000.0
    range_c_len_sigma: float = 200.0
    band_len_mean: float = 200.0
    band_len_sigma: float = 50.0
    integer_valued: bool = True
    # Number of distinct join-key values; R.B events and S.B snap to this
    # grid.  Controls the equality-join fan-out: each event joins roughly
    # ``table_size / join_key_grid`` S-tuples (the paper's events join ~1%
    # of S).  None leaves join keys on the full integer domain.
    join_key_grid: int | None = 100

    def scaled(self, scale: float | None = None) -> "WorkloadParams":
        """Scale table and query counts by ``scale`` (default: env var)."""
        scale = bench_scale() if scale is None else scale
        return replace(
            self,
            table_size=max(1, int(self.table_size * scale)),
            query_count=max(1, int(self.query_count * scale)),
        )

    @property
    def domain_width(self) -> float:
        return self.domain_hi - self.domain_lo
