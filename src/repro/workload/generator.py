"""Synthetic workload generation per Section 4 / Table 1.

Generators are deterministic given a seed and return plain engine objects
(tables, query lists, event tuples), so every benchmark replays identical
workloads against every strategy.

Beyond the literal Table 1 distributions, two controls the evaluation
sweeps need are exposed directly:

* **clusteredness** — :func:`clustered_intervals` draws query ranges around
  a fixed set of anchor points so the canonical stabbing number is (at
  most, and in practice exactly) the anchor count; Figures 7(ii), 9 and
  10(ii) sweep it.
* **selectivity** — rangeA length (Figure 8(iii)) and the S.B sigma
  (Figure 8(iv)) are plain parameters.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.core.intervals import Interval
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.table import TableR, TableS
from repro.workload.params import WorkloadParams
from repro.workload.zipf import ZipfSampler


def _value(params: WorkloadParams, x: float) -> float:
    """Clip to the domain; round when the workload is integer-valued."""
    x = min(max(x, params.domain_lo), params.domain_hi)
    return float(round(x)) if params.integer_valued else x


def _join_key(params: WorkloadParams, x: float) -> float:
    """Clip and snap a join-key value to the configured key grid."""
    x = min(max(x, params.domain_lo), params.domain_hi)
    if params.join_key_grid:
        step = params.domain_width / params.join_key_grid
        x = params.domain_lo + round((x - params.domain_lo) / step) * step
    return float(round(x)) if params.integer_valued else x


def _interval(params: WorkloadParams, mid: float, length: float) -> Interval:
    length = max(abs(length), 1.0 if params.integer_valued else 1e-6)
    lo = _value(params, mid - length / 2.0)
    hi = _value(params, mid + length / 2.0)
    if lo > hi:  # clipping degenerated the range
        lo = hi
    if lo == hi:
        hi = min(lo + 1.0, params.domain_hi)
        if lo == hi:
            lo = hi - 1.0
    return Interval(lo, hi)


def make_tables(params: WorkloadParams, rng: Optional[random.Random] = None) -> Tuple[TableR, TableS]:
    """Base tables per Table 1: R.A, R.B, S.C uniform; S.B discretized
    normal (the join-selectivity knob)."""
    rng = rng if rng is not None else random.Random(params.seed)
    table_r = TableR()
    table_s = TableS()
    for __ in range(params.table_size):
        a = _value(params, rng.uniform(params.domain_lo, params.domain_hi))
        b = _join_key(params, rng.uniform(params.domain_lo, params.domain_hi))
        table_r.add(a, b)
    for __ in range(params.table_size):
        b = _join_key(params, rng.normalvariate(params.s_b_mean, params.s_b_sigma))
        c = _value(params, rng.uniform(params.domain_lo, params.domain_hi))
        table_s.add(b, c)
    return table_r, table_s


def r_insert_events(
    params: WorkloadParams, count: int, rng: Optional[random.Random] = None
) -> List[Tuple[float, float]]:
    """(a, b) pairs for a stream of R-insertions, A and B uniform."""
    rng = rng if rng is not None else random.Random(params.seed + 1)
    return [
        (
            _value(params, rng.uniform(params.domain_lo, params.domain_hi)),
            _join_key(params, rng.uniform(params.domain_lo, params.domain_hi)),
        )
        for __ in range(count)
    ]


def make_select_join_queries(
    params: WorkloadParams,
    count: Optional[int] = None,
    rng: Optional[random.Random] = None,
    *,
    range_c_anchors: Optional[Sequence[float]] = None,
    anchor_sampler: Optional[ZipfSampler] = None,
) -> List[SelectJoinQuery]:
    """Equality-join queries with local selections per Table 1.

    With ``range_c_anchors`` the rangeC midpoints cluster on the anchors
    (each range contains its anchor), fixing the stabbing number; otherwise
    midpoints are uniform as in Table 1.
    """
    rng = rng if rng is not None else random.Random(params.seed + 2)
    count = params.query_count if count is None else count
    queries: List[SelectJoinQuery] = []
    for __ in range(count):
        a_mid = rng.normalvariate(params.range_a_mid_mean, params.range_a_mid_sigma)
        a_len = rng.normalvariate(params.range_a_len_mean, params.range_a_len_sigma)
        range_a = _interval(params, a_mid, a_len)
        if range_c_anchors is not None:
            range_c = _anchored_interval(params, rng, range_c_anchors, anchor_sampler,
                                         params.range_c_len_mean, params.range_c_len_sigma)
        else:
            c_mid = rng.uniform(params.domain_lo, params.domain_hi)
            c_len = rng.normalvariate(params.range_c_len_mean, params.range_c_len_sigma)
            range_c = _interval(params, c_mid, c_len)
        queries.append(SelectJoinQuery(range_a, range_c))
    return queries


def make_band_join_queries(
    params: WorkloadParams,
    count: Optional[int] = None,
    rng: Optional[random.Random] = None,
    *,
    band_anchors: Optional[Sequence[float]] = None,
    anchor_sampler: Optional[ZipfSampler] = None,
) -> List[BandJoinQuery]:
    """Band joins per Table 1: band midpoints uniform over the (centered)
    band domain, lengths Normal(mu3, sigma3).  Anchors fix the stabbing
    number, as for select-joins.
    """
    rng = rng if rng is not None else random.Random(params.seed + 3)
    count = params.query_count if count is None else count
    half = params.domain_width / 2.0
    queries: List[BandJoinQuery] = []
    for __ in range(count):
        if band_anchors is not None:
            idx = anchor_sampler.sample(rng) if anchor_sampler else rng.randrange(len(band_anchors))
            anchor = band_anchors[idx]
            left = abs(rng.normalvariate(params.band_len_mean / 2.0, params.band_len_sigma))
            right = abs(rng.normalvariate(params.band_len_mean / 2.0, params.band_len_sigma))
            band = Interval(anchor - left, anchor + right)
        else:
            mid = rng.uniform(-half, half)
            length = max(abs(rng.normalvariate(params.band_len_mean, params.band_len_sigma)), 1.0)
            band = Interval(mid - length / 2.0, mid + length / 2.0)
        queries.append(BandJoinQuery(band))
    return queries


def _anchored_interval(
    params: WorkloadParams,
    rng: random.Random,
    anchors: Sequence[float],
    sampler: Optional[ZipfSampler],
    len_mean: float,
    len_sigma: float,
) -> Interval:
    idx = sampler.sample(rng) if sampler else rng.randrange(len(anchors))
    anchor = anchors[idx]
    left = abs(rng.normalvariate(len_mean / 2.0, len_sigma))
    right = abs(rng.normalvariate(len_mean / 2.0, len_sigma))
    lo = max(params.domain_lo, anchor - left)
    hi = min(params.domain_hi, anchor + right)
    lo = min(lo, anchor)
    hi = max(hi, anchor)
    if lo == hi:
        hi = min(hi + 1.0, params.domain_hi)
        lo = max(lo - 1.0, params.domain_lo)
    return Interval(lo, hi)


def spread_anchors(params: WorkloadParams, count: int) -> List[float]:
    """``count`` anchor points spread evenly over the domain interior."""
    if count < 1:
        raise ValueError("need at least one anchor")
    width = params.domain_width
    return [
        params.domain_lo + width * (i + 1) / (count + 1) for i in range(count)
    ]


def clustered_intervals(
    params: WorkloadParams,
    count: int,
    anchors: Sequence[float],
    rng: Optional[random.Random] = None,
    *,
    sampler: Optional[ZipfSampler] = None,
    len_mean: Optional[float] = None,
    len_sigma: Optional[float] = None,
) -> List[Interval]:
    """Intervals drawn around anchors (each contains its anchor), so the
    canonical stabbing number is at most ``len(anchors)``."""
    rng = rng if rng is not None else random.Random(params.seed + 4)
    len_mean = params.range_c_len_mean if len_mean is None else len_mean
    len_sigma = params.range_c_len_sigma if len_sigma is None else len_sigma
    return [
        _anchored_interval(params, rng, anchors, sampler, len_mean, len_sigma)
        for __ in range(count)
    ]


def mixed_query_stream(
    queries: List,
    update_count: int,
    make_query,
    rng: Optional[random.Random] = None,
    *,
    insert_probability: float = 0.5,
    seed: int = 99,
):
    """A stream of query insertions/deletions for the Figure 11 benchmark.

    Yields ("insert", query) / ("delete", query) pairs; deletions pick a
    random live query, insertions call ``make_query(rng)``.  The live set
    starts as ``queries`` (not consumed) and the stream keeps it nonempty.
    """
    rng = rng if rng is not None else random.Random(seed)
    live = list(queries)
    for __ in range(update_count):
        if live and rng.random() >= insert_probability:
            idx = rng.randrange(len(live))
            live[idx], live[-1] = live[-1], live[idx]
            yield "delete", live.pop()
        else:
            query = make_query(rng)
            live.append(query)
            yield "insert", query
