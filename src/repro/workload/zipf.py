"""Zipf-distributed group popularity (Section 2.2, Figure 2).

The motivation for hotspots: if stabbing-group sizes follow a Zipf law with
exponent beta ~= 1, a small number of top groups covers most queries.
Figure 2 plots the coverage of the top-k groups out of 5000 for
beta in {1.0, 1.1, 1.2}; :func:`coverage_curve` reproduces it analytically
and :func:`sample_group` draws group assignments for synthetic workloads.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Sequence


def zipf_weights(group_count: int, beta: float) -> List[float]:
    """Unnormalized Zipf weights: the k-th largest group has weight
    proportional to k^-beta (k starting at 1)."""
    if group_count < 1:
        raise ValueError("need at least one group")
    if beta <= 0:
        raise ValueError("beta must be positive")
    return [(k + 1) ** -beta for k in range(group_count)]


def coverage_curve(group_count: int, beta: float, tops: Sequence[int]) -> List[float]:
    """Fraction of queries covered by the top-k groups, for each k in
    ``tops`` (the series of Figure 2)."""
    weights = zipf_weights(group_count, beta)
    prefix = list(itertools.accumulate(weights))
    total = prefix[-1]
    out: List[float] = []
    for k in tops:
        if k < 1:
            raise ValueError("top-k requires k >= 1")
        k = min(k, group_count)
        out.append(prefix[k - 1] / total)
    return out


class ZipfSampler:
    """Draws group indices (0 = most popular) with Zipf(beta) popularity."""

    def __init__(self, group_count: int, beta: float):
        weights = zipf_weights(group_count, beta)
        total = sum(weights)
        self._cumulative = list(itertools.accumulate(w / total for w in weights))

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect(self._cumulative, rng.random())

    @property
    def group_count(self) -> int:
        return len(self._cumulative)
