"""Continuous equality-join-with-local-selections strategies (Section 3.2).

Queries have the form ``sigma_{A in rangeA_i} R JOIN_{R.B=S.B}
sigma_{C in rangeC_i} S`` and are viewed as rectangles
``rangeC_i x rangeA_i`` in the product space S.C x R.A (Figure 5).  For an
incoming R-tuple ``r``, the join result points all lie on the line
``R.A = r.a``; a query is affected iff its rectangle covers one of them.

Strategies (Theorem 4 running times; n queries, m = |S|, m' joining tuples,
n' queries passing the R.A selection, g(n) = 2D stabbing cost, k = output):

* :class:`SJNaive`       — join first, then test every query against the
  ordered intermediate result: O(log m + n log m' + k).
* :class:`SJJoinFirst`   — join first, then one R-tree point stab per join
  result tuple: O(log m + m' g(n) + k).
* :class:`SJSelectFirst` — find queries passing the R.A selection first,
  then one composite-index scan per candidate: O(log n + n' log m + k).
* :class:`SJSSI`         — the paper's contribution: per stabbing group one
  composite B-tree probe plus at most two R-tree stabs:
  O(tau (log m + g(n)) + k).

All strategies support the symmetric arrival of S-tuples; SJ-SSI keeps the
"corresponding SSI constructed on rangeA" the paper calls for.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence

from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.partition_base import DynamicStabbingPartitionBase
from repro.core.ssi import StabbingSetIndex
from repro.dstruct.btree import BPlusTree, Cursor
from repro.dstruct.interval_tree import IntervalTree
from repro.dstruct.rtree import RTree
from repro.engine.queries import SelectJoinQuery, range_a_interval, range_c_interval
from repro.engine.table import RTuple, STuple, TableR, TableS

SelectResults = Dict[SelectJoinQuery, List[STuple]]
RSelectResults = Dict[SelectJoinQuery, List[RTuple]]


class SelectJoinStrategy:
    """Interface shared by all select-join processing strategies."""

    name: str = "abstract"

    def __init__(self, table_s: TableS, table_r: Optional[TableR] = None):
        self.table_s = table_s
        self.table_r = table_r if table_r is not None else TableR()
        self._queries: Dict[int, SelectJoinQuery] = {}

    def add_query(self, query: SelectJoinQuery) -> None:
        if query.qid in self._queries:
            raise ValueError(f"duplicate query id {query.qid}")
        self._queries[query.qid] = query
        self._index_query(query)

    def remove_query(self, query: SelectJoinQuery) -> None:
        del self._queries[query.qid]
        self._unindex_query(query)

    @property
    def query_count(self) -> int:
        return len(self._queries)

    @property
    def queries(self) -> List[SelectJoinQuery]:
        return list(self._queries.values())

    def process_r(self, r: RTuple) -> SelectResults:
        raise NotImplementedError

    def process_s(self, s: STuple) -> RSelectResults:
        raise NotImplementedError

    def _index_query(self, query: SelectJoinQuery) -> None:
        raise NotImplementedError

    def _unindex_query(self, query: SelectJoinQuery) -> None:
        raise NotImplementedError

    # -- shared probes -----------------------------------------------------

    def _joining_s(self, b: float) -> List[STuple]:
        """All S-tuples joining with join key ``b``, ordered by C."""
        out: List[STuple] = []
        cur = self.table_s.by_bc.cursor_ge((b,))
        while cur.valid and cur.key[0] == b:
            out.append(cur.value)
            cur.advance()
        return out

    def _joining_r(self, b: float) -> List[RTuple]:
        """All R-tuples joining with join key ``b``, ordered by A."""
        out: List[RTuple] = []
        cur = self.table_r.by_ba.cursor_ge((b,))
        while cur.valid and cur.key[0] == b:
            out.append(cur.value)
            cur.advance()
        return out


class SJNaive(SelectJoinStrategy):
    """NAIVE: materialize the C-ordered join result, then test every query."""

    name = "NAIVE"

    def _index_query(self, query: SelectJoinQuery) -> None:
        pass

    def _unindex_query(self, query: SelectJoinQuery) -> None:
        pass

    def process_r(self, r: RTuple) -> SelectResults:
        intermediate = self._joining_s(r.b)
        if not intermediate:
            return {}
        c_values = [s.c for s in intermediate]
        results: SelectResults = {}
        for query in self._queries.values():
            if not query.range_a.contains(r.a):
                continue
            lo = bisect.bisect_left(c_values, query.range_c.lo)
            hi = bisect.bisect_right(c_values, query.range_c.hi)
            if hi > lo:
                results[query] = intermediate[lo:hi]
        return results

    def process_s(self, s: STuple) -> RSelectResults:
        intermediate = self._joining_r(s.b)
        if not intermediate:
            return {}
        a_values = [r.a for r in intermediate]
        results: RSelectResults = {}
        for query in self._queries.values():
            if not query.range_c.contains(s.c):
                continue
            lo = bisect.bisect_left(a_values, query.range_a.lo)
            hi = bisect.bisect_right(a_values, query.range_a.hi)
            if hi > lo:
                results[query] = intermediate[lo:hi]
        return results


class SJJoinFirst(SelectJoinStrategy):
    """SJ-JoinFirst: join, then one 2D point-stabbing probe per join result."""

    name = "SJ-J"

    def __init__(self, table_s: TableS, table_r: Optional[TableR] = None, *, rtree_fanout: int = 16):
        super().__init__(table_s, table_r)
        self._rects: RTree[SelectJoinQuery] = RTree(rtree_fanout)

    def _index_query(self, query: SelectJoinQuery) -> None:
        self._rects.insert(query.rect, query)

    def _unindex_query(self, query: SelectJoinQuery) -> None:
        self._rects.remove(query.rect, query)

    def process_r(self, r: RTuple) -> SelectResults:
        results: SelectResults = {}
        for s in self._joining_s(r.b):
            for __, query in self._rects.stab(s.c, r.a):
                results.setdefault(query, []).append(s)
        return results

    def process_s(self, s: STuple) -> RSelectResults:
        results: RSelectResults = {}
        for r in self._joining_r(s.b):
            for __, query in self._rects.stab(s.c, r.a):
                results.setdefault(query, []).append(r)
        return results


class SJSelectFirst(SelectJoinStrategy):
    """SJ-SelectFirst: satisfy the local R.A selection first, then one
    composite-index range scan per candidate query."""

    name = "SJ-S"

    def __init__(self, table_s: TableS, table_r: Optional[TableR] = None):
        super().__init__(table_s, table_r)
        self._ranges_a: IntervalTree[SelectJoinQuery] = IntervalTree()
        self._ranges_c: IntervalTree[SelectJoinQuery] = IntervalTree()

    def _index_query(self, query: SelectJoinQuery) -> None:
        self._ranges_a.insert(query.range_a, query)
        self._ranges_c.insert(query.range_c, query)

    def _unindex_query(self, query: SelectJoinQuery) -> None:
        self._ranges_a.remove(query.range_a, query)
        self._ranges_c.remove(query.range_c, query)

    def process_r(self, r: RTuple) -> SelectResults:
        results: SelectResults = {}
        for __, query in self._ranges_a.iter_stab(r.a):
            cur = self.table_s.by_bc.cursor_ge((r.b, query.range_c.lo))
            hits = cur.collect_forward_prefix_le(r.b, query.range_c.hi) if cur.valid else []
            if hits:
                results[query] = hits
        return results

    def process_s(self, s: STuple) -> RSelectResults:
        results: RSelectResults = {}
        for __, query in self._ranges_c.iter_stab(s.c):
            cur = self.table_r.by_ba.cursor_ge((s.b, query.range_a.lo))
            hits = cur.collect_forward_prefix_le(s.b, query.range_a.hi) if cur.valid else []
            if hits:
                results[query] = hits
        return results


class SJSSI(SelectJoinStrategy):
    """SJ-SSI: SSIs on the selection ranges, R-trees per stabbing group.

    For the R-side, the SSI partitions queries by their rangeC projections.
    Processing r probes the composite B-tree on S(B, C) once per group at
    (r.b, p_j), locating the joining tuples q1/q2 whose C values straddle
    the stabbing point; at most two R-tree stabs at the corresponding join
    result points identify exactly the affected queries, and results are
    enumerated by walking the composite-index leaves outward.
    """

    name = "SJ-SSI"

    def __init__(
        self,
        table_s: TableS,
        table_r: Optional[TableR] = None,
        *,
        partition_c: Optional[DynamicStabbingPartitionBase[SelectJoinQuery]] = None,
        partition_a: Optional[DynamicStabbingPartitionBase[SelectJoinQuery]] = None,
        epsilon: float = 1.0,
        rtree_fanout: int = 16,
        symmetric: bool = True,
    ):
        super().__init__(table_s, table_r)
        self._fanout = rtree_fanout
        if partition_c is None:
            partition_c = LazyStabbingPartition(epsilon=epsilon, interval_of=range_c_interval)
        self._ssi_c: StabbingSetIndex[SelectJoinQuery, RTree] = StabbingSetIndex(
            partition_c,
            make_structure=self._make_rtree,
            add_item=lambda rt, q: rt.insert(q.rect, q),
            remove_item=lambda rt, q: rt.remove(q.rect, q),
        )
        self._ssi_a: Optional[StabbingSetIndex[SelectJoinQuery, RTree]] = None
        if symmetric:
            if partition_a is None:
                partition_a = LazyStabbingPartition(epsilon=epsilon, interval_of=range_a_interval)
            self._ssi_a = StabbingSetIndex(
                partition_a,
                make_structure=self._make_rtree,
                add_item=lambda rt, q: rt.insert(q.rect, q),
                remove_item=lambda rt, q: rt.remove(q.rect, q),
            )

    def _make_rtree(self) -> RTree:
        return RTree(self._fanout)

    @property
    def ssi(self) -> StabbingSetIndex:
        return self._ssi_c

    @property
    def group_count(self) -> int:
        return self._ssi_c.group_count()

    def _index_query(self, query: SelectJoinQuery) -> None:
        self._ssi_c.insert(query)
        if self._ssi_a is not None:
            self._ssi_a.insert(query)

    def _unindex_query(self, query: SelectJoinQuery) -> None:
        self._ssi_c.delete(query)
        if self._ssi_a is not None:
            self._ssi_a.delete(query)

    def process_r(self, r: RTuple) -> SelectResults:
        results: SelectResults = {}
        for point, rtree in self._ssi_c.groups():
            probe_select_group_r(self.table_s.by_bc, r, point, rtree, results)
        return results

    def process_s(self, s: STuple) -> RSelectResults:
        if self._ssi_a is None:
            raise RuntimeError("symmetric processing disabled for this SJSSI")
        results: RSelectResults = {}
        for point, rtree in self._ssi_a.groups():
            probe_select_group_s(self.table_r.by_ba, s, point, rtree, results)
        return results

    def process_r_batch(self, rs: Sequence[RTuple]) -> List[SelectResults]:
        """Batch fast path: probe a run of R-tuples against the current S
        state in one pass over the rangeC group table.  Delta-identical to
        calling :meth:`process_r` per tuple (against unchanged tables)."""
        from repro.fastpath.select import batch_probe_select_r

        results: List[SelectResults] = [{} for _ in rs]
        points, rtrees = self._ssi_c.group_table()
        batch_probe_select_r(self.table_s.by_bc, rs, points, rtrees, results)
        return results

    def process_s_batch(self, ss: Sequence[STuple]) -> List[RSelectResults]:
        """Symmetric batch fast path for a run of S-tuples."""
        if self._ssi_a is None:
            raise RuntimeError("symmetric processing disabled for this SJSSI")
        from repro.fastpath.select import batch_probe_select_s

        results: List[RSelectResults] = [{} for _ in ss]
        points, rtrees = self._ssi_a.group_table()
        batch_probe_select_s(self.table_r.by_ba, ss, points, rtrees, results)
        return results


def probe_select_group_r(
    by_bc: BPlusTree,
    r: RTuple,
    point: float,
    rtree: RTree,
    results: SelectResults,
) -> None:
    """The SJ-SSI per-group probe for an incoming R-tuple.

    One composite B-tree lookup at (r.b, point) locates the joining tuples
    q1/q2 whose C values straddle the stabbing point, then at most two
    R-tree stabs at the corresponding join result points yield exactly the
    affected queries; merged hits go into ``results``.  Shared between
    :class:`SJSSI` (applied to every group) and the hotspot-based processor
    (applied to hotspot groups only).
    """
    pred, succ = by_bc.surrounding((r.b, point))
    q1 = pred.value if pred.valid and pred.key[0] == r.b else None
    q2 = succ.value if succ.valid and succ.key[0] == r.b else None
    if q1 is None and q2 is None:
        return  # nothing joins with r near this stabbing point
    affected: Dict[int, SelectJoinQuery] = {}
    if q1 is not None:
        for __, query in rtree.stab(q1.c, r.a):
            affected[query.qid] = query
    if q2 is not None and (q1 is None or q2.c != q1.c):
        for __, query in rtree.stab(q2.c, r.a):
            affected.setdefault(query.qid, query)
    for query in affected.values():
        hits = _enumerate_outward(pred, succ, r.b, query.range_c.lo, query.range_c.hi)
        assert hits, "affected select-join produced no result"
        results[query] = hits


def probe_select_group_s(
    by_ba: BPlusTree,
    s: STuple,
    point: float,
    rtree: RTree,
    results: RSelectResults,
) -> None:
    """Symmetric per-group probe for an incoming S-tuple (SSI on rangeA)."""
    pred, succ = by_ba.surrounding((s.b, point))
    q1 = pred.value if pred.valid and pred.key[0] == s.b else None
    q2 = succ.value if succ.valid and succ.key[0] == s.b else None
    if q1 is None and q2 is None:
        return
    affected: Dict[int, SelectJoinQuery] = {}
    if q1 is not None:
        for __, query in rtree.stab(s.c, q1.a):
            affected[query.qid] = query
    if q2 is not None and (q1 is None or q2.a != q1.a):
        for __, query in rtree.stab(s.c, q2.a):
            affected.setdefault(query.qid, query)
    for query in affected.values():
        hits = _enumerate_outward(pred, succ, s.b, query.range_a.lo, query.range_a.hi)
        assert hits, "affected select-join produced no result"
        results[query] = hits


def _enumerate_outward(pred: Cursor, succ: Cursor, b: float, lo: float, hi: float) -> List:
    """Walk the composite-index leaves outward from the probe position,
    collecting entries with matching join key and second component in
    [lo, hi]; stops at "a different S.B value or a value outside the query
    range".  Touches only contributing entries plus one terminator per
    direction."""
    if succ.valid:
        left = succ.clone()
        left.retreat()
    else:
        left = pred
    hits = left.collect_backward_prefix_ge(b, lo) if left.valid else []
    if succ.valid:
        hits.extend(succ.collect_forward_prefix_le(b, hi))
    return hits


def make_select_strategies(
    table_s: TableS,
    table_r: Optional[TableR] = None,
    *,
    epsilon: float = 1.0,
) -> Dict[str, SelectJoinStrategy]:
    """All four strategies over shared tables, keyed by their paper names."""
    return {
        "NAIVE": SJNaive(table_s, table_r),
        "SJ-J": SJJoinFirst(table_s, table_r),
        "SJ-S": SJSelectFirst(table_s, table_r),
        "SJ-SSI": SJSSI(table_s, table_r, epsilon=epsilon),
    }
