"""Query-processing strategies: band joins, select-joins, hotspot-based
processing, and the Section 6 extensions (range/multi-attribute
subscriptions, band joins with selections, cost-based adaptivity)."""

from repro.operators.adaptive import AdaptiveSelectJoinProcessor
from repro.operators.band_join import (
    BandJoinStrategy,
    BJDOuter,
    BJMergeJoin,
    BJQOuter,
    BJSSI,
    make_band_strategies,
)
from repro.operators.band_select_join import (
    BandSelectJoinQuery,
    BSJPerQuery,
    BSJSSI,
    brute_force_band_select_join,
)
from repro.operators.hotspot_processor import (
    HotspotBandJoinProcessor,
    HotspotSelectJoinProcessor,
    TraditionalSelectJoinProcessor,
)
from repro.operators.multi_attribute import (
    BoxSubscription,
    RTreeBoxIndex,
    ScanBoxIndex,
    SSIBoxIndex,
)
from repro.operators.range_select import (
    HotspotRangeIndex,
    IntervalSkipListRangeIndex,
    IntervalTreeRangeIndex,
    RangeSubscription,
    ScanRangeIndex,
    SSIRangeIndex,
)
from repro.operators.select_join import (
    SelectJoinStrategy,
    SJJoinFirst,
    SJNaive,
    SJSelectFirst,
    SJSSI,
    make_select_strategies,
)

__all__ = [
    "AdaptiveSelectJoinProcessor",
    "BJDOuter",
    "BJMergeJoin",
    "BJQOuter",
    "BJSSI",
    "BSJPerQuery",
    "BSJSSI",
    "BandJoinStrategy",
    "BandSelectJoinQuery",
    "BoxSubscription",
    "HotspotBandJoinProcessor",
    "HotspotRangeIndex",
    "HotspotSelectJoinProcessor",
    "IntervalSkipListRangeIndex",
    "IntervalTreeRangeIndex",
    "RTreeBoxIndex",
    "RangeSubscription",
    "SJJoinFirst",
    "SJNaive",
    "SJSSI",
    "SJSelectFirst",
    "SSIBoxIndex",
    "SSIRangeIndex",
    "ScanBoxIndex",
    "ScanRangeIndex",
    "SelectJoinStrategy",
    "TraditionalSelectJoinProcessor",
    "brute_force_band_select_join",
    "make_band_strategies",
    "make_select_strategies",
]
