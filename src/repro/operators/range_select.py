"""Group processing of pure range-selection subscriptions.

The introduction's motivating case: continuous queries of the form
``sigma_{a_i <= A <= b_i} R`` are classically indexed as intervals (interval
tree / interval skip list), answering each incoming value with one stabbing
query in O(log n + k).  The SSI view does strictly better on clustered
subscriptions: maintain a stabbing partition of the ranges, and for an
incoming value x decide *per group* with stabbing point p and common
intersection C = [c_lo, c_hi]:

* x in C      -> every member contains x (C is the members' intersection);
* x < c_lo    -> a member contains x iff its left endpoint <= x (its right
  endpoint is >= c_lo > x automatically), so scan the ascending-left-
  endpoint order and stop at the first miss;
* x > c_hi    -> symmetric with the descending-right-endpoint order.

Every comparison after the first either reports a subscriber or terminates
the group, so processing costs O(tau + k) with **no** logarithmic factor
--- better than any single-structure stabbing index when tau is small.

Baselines with the same interface: :class:`IntervalTreeRangeIndex`
(classic O(log n + k)) and :class:`ScanRangeIndex` (brute force).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.partition_base import DynamicStabbingPartitionBase
from repro.core.ssi import StabbingSetIndex
from repro.dstruct.interval_tree import IntervalTree
from repro.dstruct.sorted_list import SortedKeyList


class RangeSubscription:
    """A standing range-selection subscription over a numeric attribute."""

    __slots__ = ("qid", "range")

    _ids = iter(range(1, 1 << 62))

    def __init__(self, range_: Interval, qid: Optional[int] = None):
        self.qid = qid if qid is not None else next(self._ids)
        self.range = range_

    def matches(self, x: float) -> bool:
        return self.range.contains(x)

    def __repr__(self) -> str:
        return f"RangeSubscription(qid={self.qid}, range={self.range})"


def subscription_interval(subscription: RangeSubscription) -> Interval:
    return subscription.range


class RangeIndexBase:
    """Interface shared by the range-subscription indexes."""

    name = "abstract"

    def __init__(self) -> None:
        self._subscriptions: Dict[int, RangeSubscription] = {}

    def add(self, subscription: RangeSubscription) -> None:
        if subscription.qid in self._subscriptions:
            raise ValueError(f"duplicate subscription id {subscription.qid}")
        self._subscriptions[subscription.qid] = subscription
        self._index(subscription)

    def remove(self, subscription: RangeSubscription) -> None:
        del self._subscriptions[subscription.qid]
        self._unindex(subscription)

    def __len__(self) -> int:
        return len(self._subscriptions)

    def match(self, x: float) -> List[RangeSubscription]:
        raise NotImplementedError

    def _index(self, subscription: RangeSubscription) -> None:
        raise NotImplementedError

    def _unindex(self, subscription: RangeSubscription) -> None:
        raise NotImplementedError


class ScanRangeIndex(RangeIndexBase):
    """Brute-force oracle: test every subscription."""

    name = "SCAN"

    def _index(self, subscription: RangeSubscription) -> None:
        pass

    def _unindex(self, subscription: RangeSubscription) -> None:
        pass

    def match(self, x: float) -> List[RangeSubscription]:
        return [s for s in self._subscriptions.values() if s.matches(x)]


class IntervalTreeRangeIndex(RangeIndexBase):
    """The classic approach: one stabbing query on an interval tree."""

    name = "ITREE"

    def __init__(self) -> None:
        super().__init__()
        self._tree: IntervalTree[RangeSubscription] = IntervalTree()

    def _index(self, subscription: RangeSubscription) -> None:
        self._tree.insert(subscription.range, subscription)

    def _unindex(self, subscription: RangeSubscription) -> None:
        self._tree.remove(subscription.range, subscription)

    def match(self, x: float) -> List[RangeSubscription]:
        return [s for __, s in self._tree.iter_stab(x)]


class IntervalSkipListRangeIndex(RangeIndexBase):
    """The other classic approach the paper names: one stabbing query on a
    Hanson-style interval skip list."""

    name = "ISLIST"

    def __init__(self) -> None:
        super().__init__()
        from repro.dstruct.interval_skip_list import IntervalSkipList

        self._list: "IntervalSkipList[RangeSubscription]" = IntervalSkipList()

    def _index(self, subscription: RangeSubscription) -> None:
        self._list.insert(subscription.range, subscription)

    def _unindex(self, subscription: RangeSubscription) -> None:
        self._list.remove(subscription.range, subscription)

    def match(self, x: float) -> List[RangeSubscription]:
        return [s for __, s in self._list.stab(x)]


class _RangeGroup:
    """Per-group structure: both endpoint orders."""

    __slots__ = ("by_lo", "by_hi_desc")

    def __init__(self) -> None:
        self.by_lo: SortedKeyList[RangeSubscription] = SortedKeyList(
            key=lambda s: s.range.lo
        )
        self.by_hi_desc: SortedKeyList[RangeSubscription] = SortedKeyList(
            key=lambda s: -s.range.hi
        )

    def add(self, subscription: RangeSubscription) -> None:
        self.by_lo.add(subscription)
        self.by_hi_desc.add(subscription)

    def remove(self, subscription: RangeSubscription) -> None:
        self.by_lo.remove(subscription)
        self.by_hi_desc.remove(subscription)


class SSIRangeIndex(RangeIndexBase):
    """SSI group processing applied to *every* group: O(tau + k) per event.

    Excellent when subscriptions cluster (tau small); on scattered
    workloads tau approaches n and the per-group iteration loses to the
    classic O(log n + k) indexes --- use :class:`HotspotRangeIndex` when
    the clusteredness is unknown."""

    name = "SSI"

    def __init__(
        self,
        *,
        partition: Optional[DynamicStabbingPartitionBase[RangeSubscription]] = None,
        epsilon: float = 1.0,
    ):
        super().__init__()
        if partition is None:
            partition = LazyStabbingPartition(
                epsilon=epsilon, interval_of=subscription_interval
            )
        self._ssi: StabbingSetIndex[RangeSubscription, _RangeGroup] = StabbingSetIndex(
            partition,
            make_structure=_RangeGroup,
            add_item=lambda g, s: g.add(s),
            remove_item=lambda g, s: g.remove(s),
        )

    @property
    def group_count(self) -> int:
        return self._ssi.group_count()

    def _index(self, subscription: RangeSubscription) -> None:
        self._ssi.insert(subscription)

    def _unindex(self, subscription: RangeSubscription) -> None:
        self._ssi.delete(subscription)

    def match(self, x: float) -> List[RangeSubscription]:
        out: List[RangeSubscription] = []
        for group in self._ssi.partition.groups:
            common = group.common
            structure = self._ssi.structure_of(group)
            _match_group(structure, common, x, out)
        return out


def _match_group(structure: _RangeGroup, common: Interval, x: float, out: List[RangeSubscription]) -> None:
    """The per-group decision shared by the SSI and hotspot range indexes."""
    if common.lo <= x <= common.hi:
        # x stabs the common intersection: every member matches.
        out.extend(structure.by_lo)
    elif x < common.lo:
        # Members reach x iff they start at or before it.
        for subscription in structure.by_lo:
            if subscription.range.lo > x:
                break
            out.append(subscription)
    else:
        for subscription in structure.by_hi_desc:
            if subscription.range.hi < x:
                break
            out.append(subscription)


class HotspotRangeIndex(RangeIndexBase):
    """Hotspot-filtered group processing (Section 2.2 applied to
    selections): SSI-style per-group matching for the hotspot groups, an
    interval tree over the scattered remainder.

    Per event: O(#hotspots + log |scattered| + k) --- the best of both
    worlds regardless of how clustered the subscriptions are.
    """

    name = "HOTSPOT"

    def __init__(self, *, alpha: float = 0.01, epsilon: float = 1.0):
        super().__init__()
        from repro.core.hotspot_tracker import HotspotTracker

        self._tracker: "HotspotTracker[RangeSubscription]" = HotspotTracker(
            alpha=alpha, epsilon=epsilon, interval_of=subscription_interval
        )
        self._tracker.add_listener(self)
        self._hot_structures: Dict[int, _RangeGroup] = {}
        self._scattered: Dict[int, RangeSubscription] = {}
        self._scattered_tree: IntervalTree[RangeSubscription] = IntervalTree()

    # -- tracker listener callbacks -------------------------------------

    def on_promoted(self, group) -> None:
        structure = _RangeGroup()
        for subscription in group:
            structure.add(subscription)
            if id(subscription) in self._scattered:
                del self._scattered[id(subscription)]
                self._scattered_tree.remove(subscription.range, subscription)
        self._hot_structures[id(group)] = structure

    def on_demoted(self, group) -> None:
        del self._hot_structures[id(group)]
        for subscription in group:
            self._add_scattered(subscription)

    def on_hot_item_added(self, group, subscription) -> None:
        self._hot_structures[id(group)].add(subscription)

    def on_hot_item_removed(self, group, subscription) -> None:
        self._hot_structures[id(group)].remove(subscription)

    def _add_scattered(self, subscription: RangeSubscription) -> None:
        if id(subscription) not in self._scattered:
            self._scattered[id(subscription)] = subscription
            self._scattered_tree.insert(subscription.range, subscription)

    # -- index interface --------------------------------------------------

    def _index(self, subscription: RangeSubscription) -> None:
        self._tracker.insert(subscription)
        if not self._tracker.is_hotspot_item(subscription):
            self._add_scattered(subscription)

    def _unindex(self, subscription: RangeSubscription) -> None:
        if id(subscription) in self._scattered:
            del self._scattered[id(subscription)]
            self._scattered_tree.remove(subscription.range, subscription)
        self._tracker.delete(subscription)

    @property
    def hotspot_coverage(self) -> float:
        return self._tracker.hotspot_coverage

    def match(self, x: float) -> List[RangeSubscription]:
        out: List[RangeSubscription] = []
        for group in self._tracker.hotspot_groups:
            _match_group(self._hot_structures[id(group)], group.common, x, out)
        out.extend(s for __, s in self._scattered_tree.iter_stab(x))
        return out

    def validate(self) -> None:
        self._tracker.validate()
        hot = {id(s) for g in self._tracker.hotspot_groups for s in g}
        assert hot.isdisjoint(self._scattered.keys())
        assert len(hot) + len(self._scattered) == len(self._subscriptions)
