"""Cost-based adaptive select-join processing (Section 6 future work).

The paper closes with: "we are developing a general cost-based
optimization framework for identifying the best processing strategy ...
we are making our system adaptive at much finer granularity --- every
incoming data update event can potentially be processed using a different
strategy."

This processor maintains both SJ-SelectFirst and SJ-SSI structures and
picks per event using the Theorem 4 cost model:

* SJ-SelectFirst costs ~ n'(event) * log m, where n' is the number of
  queries whose rangeA contains the event's A value;
* SJ-SSI costs ~ tau * (log m + g) plus the shared output.

n' is *estimated* with the Section 3.3 machinery: an SSI-HIST histogram
over the rangeA intervals ("estimating the number of continuous join
queries whose local selection conditions are satisfied by an incoming
tuple" is the use case the paper gives for it).  The histogram is rebuilt
lazily after enough subscription churn.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.queries import SelectJoinQuery
from repro.engine.table import RTuple, TableR, TableS
from repro.histogram import ssi_histogram
from repro.histogram.step import StepFunction
from repro.operators.select_join import SelectResults, SJSelectFirst, SJSSI


class AdaptiveSelectJoinProcessor:
    """Per-event choice between SJ-SelectFirst and SJ-SSI.

    Parameters
    ----------
    ssi_group_cost:
        Relative cost of one SSI group probe versus one SJ-SelectFirst
        candidate probe; SJ-SSI is chosen when
        ``estimated n' > ssi_group_cost * tau``.  Both probes are one
        composite-index descent plus output, so the default of 1.0 reflects
        the model; tune for a platform if needed.
    histogram_buckets / rebuild_every:
        Resolution and refresh cadence of the rangeA selectivity histogram.
    """

    name = "ADAPTIVE"

    def __init__(
        self,
        table_s: TableS,
        table_r: Optional[TableR] = None,
        *,
        epsilon: float = 1.0,
        ssi_group_cost: float = 1.0,
        histogram_buckets: int = 32,
        rebuild_every: int = 512,
    ):
        self.table_s = table_s
        self.table_r = table_r if table_r is not None else TableR()
        self._select_first = SJSelectFirst(table_s, self.table_r)
        self._ssi = SJSSI(table_s, self.table_r, epsilon=epsilon, symmetric=False)
        self._ssi_group_cost = ssi_group_cost
        self._buckets = histogram_buckets
        self._rebuild_every = rebuild_every
        self._histogram: Optional[StepFunction] = None
        self._updates_since_histogram = 0
        self.chosen: Dict[str, int] = {"SJ-S": 0, "SJ-SSI": 0}

    # -- maintenance ---------------------------------------------------------

    def add_query(self, query: SelectJoinQuery) -> None:
        self._select_first.add_query(query)
        self._ssi.add_query(query)
        self._note_churn()

    def remove_query(self, query: SelectJoinQuery) -> None:
        self._select_first.remove_query(query)
        self._ssi.remove_query(query)
        self._note_churn()

    @property
    def query_count(self) -> int:
        return self._ssi.query_count

    @property
    def group_count(self) -> int:
        return self._ssi.group_count

    def _note_churn(self) -> None:
        self._updates_since_histogram += 1
        # Refresh after the configured cadence, or sooner while the
        # subscription set is still small relative to the churn (so bulk
        # loading converges to an accurate histogram in O(log n) rebuilds).
        threshold = min(self._rebuild_every, max(8, self.query_count // 2))
        if self._histogram is None or self._updates_since_histogram >= threshold:
            self._refresh_histogram()

    def _refresh_histogram(self) -> None:
        self._updates_since_histogram = 0
        queries = self._ssi.queries
        if not queries:
            self._histogram = None
            return
        intervals = [query.range_a for query in queries]
        # Cost decisions need absolute candidate counts, so the histogram is
        # built under the absolute (V-optimal) per-group objective rather
        # than the relative one used for Figure 12.
        self._histogram = ssi_histogram(
            intervals, self._buckets, objective="absolute"
        ).histogram

    # -- estimation + processing ---------------------------------------------

    def estimate_candidates(self, a: float) -> float:
        """Estimated n': queries whose rangeA contains ``a``."""
        if self._histogram is None:
            return 0.0
        return max(self._histogram(a), 0.0)

    def choose(self, r: RTuple) -> str:
        """The strategy the cost model picks for this event."""
        estimated = self.estimate_candidates(r.a)
        threshold = self._ssi_group_cost * max(self._ssi.group_count, 1)
        return "SJ-S" if estimated <= threshold else "SJ-SSI"

    def process_r(self, r: RTuple) -> SelectResults:
        strategy = self.choose(r)
        self.chosen[strategy] += 1
        if strategy == "SJ-S":
            return self._select_first.process_r(r)
        return self._ssi.process_r(r)
