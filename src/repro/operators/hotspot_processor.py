"""Hotspot-based query processing (Section 2.2 applied to Section 3; Fig 9).

The "purist" SSI strategies apply group processing to *every* stabbing
group, paying per-group overhead even for tiny groups.  The hotspot-based
processors instead maintain a :class:`~repro.core.hotspot_tracker.
HotspotTracker` over the query ranges and

* run the SSI per-group probe only on the hotspot groups (at most 2/alpha of
  them, so O(alpha^-1 (log m + g(n)) + k) for the hotspot queries), and
* fall back to a traditional algorithm for the scattered remainder
  (SJ-SelectFirst for select-joins, a per-query window scan for band joins),

exactly the TRADITIONAL vs HOTSPOT-BASED comparison of Figure 9.  The
per-hotspot index structures (an R-tree of query rectangles, or the two
endpoint orders for band joins) are built on promotion and dropped on
demotion via the tracker's listener callbacks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.hotspot_tracker import HotspotTracker
from repro.core.partition_base import DynamicGroup
from repro.dstruct.interval_tree import IntervalTree
from repro.dstruct.rtree import RTree
from repro.engine.queries import (
    BandJoinQuery,
    SelectJoinQuery,
    band_interval,
    range_c_interval,
)
from repro.engine.table import RTuple, STuple, TableR, TableS
from repro.operators.band_join import (
    BandResults,
    _BandGroupIndex,
    probe_band_group_r,
)
from repro.operators.select_join import (
    RSelectResults,
    SelectResults,
    probe_select_group_r,
)


class HotspotSelectJoinProcessor:
    """HOTSPOT-BASED select-join processing: SJ-SSI on the hotspots,
    SJ-SelectFirst on the scattered queries."""

    name = "HOTSPOT-BASED"

    def __init__(
        self,
        table_s: TableS,
        table_r: Optional[TableR] = None,
        *,
        alpha: float,
        epsilon: float = 1.0,
        rtree_fanout: int = 16,
    ):
        self.table_s = table_s
        self.table_r = table_r if table_r is not None else TableR()
        self._fanout = rtree_fanout
        self._queries: Dict[int, SelectJoinQuery] = {}
        # Hotspot side: one R-tree of query rectangles per hotspot group.
        self._hot_rtrees: Dict[int, RTree] = {}
        # Scattered side: SJ-SelectFirst structures over scattered queries.
        self._scattered: Dict[int, SelectJoinQuery] = {}
        self._scattered_a: IntervalTree[SelectJoinQuery] = IntervalTree()
        self.tracker: HotspotTracker[SelectJoinQuery] = HotspotTracker(
            alpha=alpha, epsilon=epsilon, interval_of=range_c_interval
        )
        self.tracker.add_listener(self)

    # -- tracker listener callbacks ------------------------------------------

    def on_promoted(self, group: DynamicGroup[SelectJoinQuery]) -> None:
        rtree: RTree[SelectJoinQuery] = RTree(self._fanout)
        for query in group:
            rtree.insert(query.rect, query)
            self._drop_scattered(query)
        self._hot_rtrees[id(group)] = rtree

    def on_demoted(self, group: DynamicGroup[SelectJoinQuery]) -> None:
        del self._hot_rtrees[id(group)]
        for query in group:
            self._add_scattered(query)

    def on_hot_item_added(self, group: DynamicGroup[SelectJoinQuery], query: SelectJoinQuery) -> None:
        self._hot_rtrees[id(group)].insert(query.rect, query)

    def on_hot_item_removed(self, group: DynamicGroup[SelectJoinQuery], query: SelectJoinQuery) -> None:
        self._hot_rtrees[id(group)].remove(query.rect, query)

    def _add_scattered(self, query: SelectJoinQuery) -> None:
        if id(query) not in self._scattered:
            self._scattered[id(query)] = query
            self._scattered_a.insert(query.range_a, query)

    def _drop_scattered(self, query: SelectJoinQuery) -> None:
        if id(query) in self._scattered:
            del self._scattered[id(query)]
            self._scattered_a.remove(query.range_a, query)

    # -- query maintenance -------------------------------------------------------

    def add_query(self, query: SelectJoinQuery) -> None:
        if query.qid in self._queries:
            raise ValueError(f"duplicate query id {query.qid}")
        self._queries[query.qid] = query
        self.tracker.insert(query)
        if not self.tracker.is_hotspot_item(query):
            self._add_scattered(query)

    def remove_query(self, query: SelectJoinQuery) -> None:
        del self._queries[query.qid]
        self._drop_scattered(query)
        self.tracker.delete(query)

    @property
    def query_count(self) -> int:
        return len(self._queries)

    @property
    def hotspot_coverage(self) -> float:
        return self.tracker.hotspot_coverage

    # -- event processing ------------------------------------------------------------

    def process_r(self, r: RTuple) -> SelectResults:
        results: SelectResults = {}
        # Hotspot queries: SSI group probes, one per hotspot.
        for group in self.tracker.hotspot_groups:
            probe_select_group_r(
                self.table_s.by_bc, r, group.stabbing_point,
                self._hot_rtrees[id(group)], results,
            )
        # Scattered queries: SJ-SelectFirst.
        for __, query in self._scattered_a.iter_stab(r.a):
            cur = self.table_s.by_bc.cursor_ge((r.b, query.range_c.lo))
            hits = cur.collect_forward_prefix_le(r.b, query.range_c.hi) if cur.valid else []
            if hits:
                results[query] = hits
        return results

    def process_s(self, s: STuple):
        """Symmetric S-arrival processing, one composite-index scan per
        query passing the C selection (traditional; the hotspot tracker is
        keyed on rangeC projections, which group R-side probes only)."""
        results = {}
        for query in self._queries.values():
            if not query.range_c.contains(s.c):
                continue
            cur = self.table_r.by_ba.cursor_ge((s.b, query.range_a.lo))
            hits = cur.collect_forward_prefix_le(s.b, query.range_a.hi) if cur.valid else []
            if hits:
                results[query] = hits
        return results

    def process_r_batch(self, rs: Sequence[RTuple]) -> List[SelectResults]:
        """Batch fast path: the hotspot groups take the batched SSI probe;
        the scattered remainder runs SJ-SelectFirst with per-query state
        hoisted out of the row loop.  Delta-identical to per-event
        :meth:`process_r` against unchanged tables."""
        from repro.fastpath.select import batch_probe_select_r

        results: List[SelectResults] = [{} for _ in rs]
        groups = self.tracker.hotspot_groups
        if groups:
            points = [group.stabbing_point for group in groups]
            rtrees = [self._hot_rtrees[id(group)] for group in groups]
            batch_probe_select_r(self.table_s.by_bc, rs, points, rtrees, results)
        by_bc = self.table_s.by_bc
        for i, r in enumerate(rs):
            res = results[i]
            for __, query in self._scattered_a.iter_stab(r.a):
                cur = by_bc.cursor_ge((r.b, query.range_c.lo))
                hits = cur.collect_forward_prefix_le(r.b, query.range_c.hi) if cur.valid else []
                if hits:
                    res[query] = hits
        return results

    def process_s_batch(self, ss: Sequence[STuple]) -> List[RSelectResults]:
        """Batch S-arrival processing: queries outer, rows inner, so the
        per-query range checks and attribute lookups are paid once per
        batch instead of once per tuple."""
        results: List[RSelectResults] = [{} for _ in ss]
        by_ba = self.table_r.by_ba
        for query in self._queries.values():
            range_c = query.range_c
            a_lo = query.range_a.lo
            a_hi = query.range_a.hi
            for i, s in enumerate(ss):
                if not range_c.contains(s.c):
                    continue
                cur = by_ba.cursor_ge((s.b, a_lo))
                hits = cur.collect_forward_prefix_le(s.b, a_hi) if cur.valid else []
                if hits:
                    results[i][query] = hits
        return results

    def validate(self) -> None:
        """Check hot/scattered bookkeeping against the tracker (tests)."""
        self.tracker.validate()
        hot = {id(q) for g in self.tracker.hotspot_groups for q in g}
        assert hot.isdisjoint(self._scattered.keys())
        assert len(hot) + len(self._scattered) == len(self._queries)
        assert set(self._hot_rtrees) == {id(g) for g in self.tracker.hotspot_groups}
        for group in self.tracker.hotspot_groups:
            assert len(self._hot_rtrees[id(group)]) == group.size


class TraditionalSelectJoinProcessor:
    """TRADITIONAL baseline of Figure 9: plain SJ-SelectFirst over all
    queries, indifferent to clusteredness."""

    name = "TRADITIONAL"

    def __init__(self, table_s: TableS, table_r: Optional[TableR] = None):
        from repro.operators.select_join import SJSelectFirst

        self._inner = SJSelectFirst(table_s, table_r)

    def add_query(self, query: SelectJoinQuery) -> None:
        self._inner.add_query(query)

    def remove_query(self, query: SelectJoinQuery) -> None:
        self._inner.remove_query(query)

    @property
    def query_count(self) -> int:
        return self._inner.query_count

    def process_r(self, r: RTuple) -> SelectResults:
        return self._inner.process_r(r)


class HotspotBandJoinProcessor:
    """Hotspot-based band-join processing: BJ-SSI per-group probes on the
    hotspots, per-query ordered-index scans (BJ-QOuter style) on the
    scattered remainder."""

    name = "HOTSPOT-BASED-BJ"

    def __init__(
        self,
        table_s: TableS,
        table_r: Optional[TableR] = None,
        *,
        alpha: float,
        epsilon: float = 1.0,
    ):
        self.table_s = table_s
        self.table_r = table_r if table_r is not None else TableR()
        self._queries: Dict[int, BandJoinQuery] = {}
        self._hot_indexes: Dict[int, _BandGroupIndex] = {}
        self._scattered: Dict[int, BandJoinQuery] = {}
        self.tracker: HotspotTracker[BandJoinQuery] = HotspotTracker(
            alpha=alpha, epsilon=epsilon, interval_of=band_interval
        )
        self.tracker.add_listener(self)

    # -- tracker listener callbacks ---------------------------------------------

    def on_promoted(self, group: DynamicGroup[BandJoinQuery]) -> None:
        index = _BandGroupIndex()
        for query in group:
            index.add(query)
            self._scattered.pop(id(query), None)
        self._hot_indexes[id(group)] = index

    def on_demoted(self, group: DynamicGroup[BandJoinQuery]) -> None:
        del self._hot_indexes[id(group)]
        for query in group:
            self._scattered[id(query)] = query

    def on_hot_item_added(self, group: DynamicGroup[BandJoinQuery], query: BandJoinQuery) -> None:
        self._hot_indexes[id(group)].add(query)

    def on_hot_item_removed(self, group: DynamicGroup[BandJoinQuery], query: BandJoinQuery) -> None:
        self._hot_indexes[id(group)].remove(query)

    # -- query maintenance ------------------------------------------------------------

    def add_query(self, query: BandJoinQuery) -> None:
        if query.qid in self._queries:
            raise ValueError(f"duplicate query id {query.qid}")
        self._queries[query.qid] = query
        self.tracker.insert(query)
        if not self.tracker.is_hotspot_item(query):
            self._scattered[id(query)] = query

    def remove_query(self, query: BandJoinQuery) -> None:
        del self._queries[query.qid]
        self._scattered.pop(id(query), None)
        self.tracker.delete(query)

    @property
    def query_count(self) -> int:
        return len(self._queries)

    @property
    def hotspot_coverage(self) -> float:
        return self.tracker.hotspot_coverage

    # -- event processing ----------------------------------------------------------------

    def process_r(self, r: RTuple) -> BandResults:
        results: BandResults = {}
        for group in self.tracker.hotspot_groups:
            probe_band_group_r(
                self.table_s.by_b, r, group.stabbing_point,
                self._hot_indexes[id(group)], results,
            )
        for query in self._scattered.values():
            window = query.s_window(r)
            hits = self.table_s.by_b.range_values(window.lo, window.hi)
            if hits:
                results[query] = hits
        return results

    def process_s(self, s: STuple):
        """Symmetric S-arrival processing: per-query window scan over R
        (traditional; the hotspot structures group R-side probes only)."""
        results = {}
        for query in self._queries.values():
            window = query.r_window(s)
            hits = self.table_r.by_b.range_values(window.lo, window.hi)
            if hits:
                results[query] = hits
        return results

    def process_r_batch(self, rs: Sequence[RTuple]) -> List[BandResults]:
        """Batch fast path: hotspot groups take the batched BJ-SSI probe;
        scattered queries run their window scans with per-query state
        hoisted.  Delta-identical to per-event :meth:`process_r` against
        unchanged tables."""
        from repro.fastpath.band import batch_probe_band_r

        results: List[BandResults] = [{} for _ in rs]
        groups = self.tracker.hotspot_groups
        if groups:
            points = [group.stabbing_point for group in groups]
            structures = [self._hot_indexes[id(group)] for group in groups]
            batch_probe_band_r(self.table_s.by_b, rs, points, structures, results)
        by_b = self.table_s.by_b
        for query in self._scattered.values():
            band = query.band
            lo = band.lo
            hi = band.hi
            for i, r in enumerate(rs):
                hits = by_b.range_values(lo + r.b, hi + r.b)
                if hits:
                    results[i][query] = hits
        return results

    def process_s_batch(self, ss: Sequence[STuple]) -> List:
        """Batch S-arrival processing: queries outer, rows inner."""
        results: List[Dict] = [{} for _ in ss]
        by_b = self.table_r.by_b
        for query in self._queries.values():
            band = query.band
            lo = band.lo
            hi = band.hi
            for i, s in enumerate(ss):
                hits = by_b.range_values(s.b - hi, s.b - lo)
                if hits:
                    results[i][query] = hits
        return results

    def validate(self) -> None:
        self.tracker.validate()
        hot = {id(q) for g in self.tracker.hotspot_groups for q in g}
        assert hot.isdisjoint(self._scattered.keys())
        assert len(hot) + len(self._scattered) == len(self._queries)
        for group in self.tracker.hotspot_groups:
            assert len(self._hot_indexes[id(group)].by_lo) == group.size
