"""Continuous band-join processing strategies (Section 3.1).

All strategies answer the same question for an incoming R-tuple ``r``: which
of the registered band joins ``R JOIN S ON S.B - R.B IN rangeB_i`` gain new
result tuples, and what are they?  Each returns a dict mapping affected
queries to their new S-side matches.  The symmetric S-side arrival is also
supported (``process_s``).

Strategies (Theorem 3 running times for an incoming R-tuple; n = number of
queries, m = |S|, tau = stabbing number, k = output size):

* :class:`BJQOuter`   — queries as outer relation, one B-tree range scan per
  query: O(n log m + k).
* :class:`BJDOuter`   — data as outer relation, one interval-tree stab per
  S-tuple: O(m log n + k).
* :class:`BJMergeJoin`— merge join of the shifted windows with S in sorted
  order: O(m + n + k) (our active-window heap adds a log factor on the
  windows simultaneously open).
* :class:`BJSSI`      — the paper's contribution: one B-tree probe per
  stabbing group plus output-sensitive scans: O(tau log m + k).

Every strategy supports dynamic query insertion/deletion so the Figure 11
maintenance benchmark can replay identical subscription streams against all
of them.
"""

from __future__ import annotations

import heapq
from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence

from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.partition_base import DynamicStabbingPartitionBase
from repro.core.ssi import StabbingSetIndex
from repro.dstruct.btree import Cursor
from repro.dstruct.interval_tree import IntervalTree
from repro.dstruct.sorted_list import SortedKeyList
from repro.engine.queries import BandJoinQuery, band_interval
from repro.engine.table import RTuple, STuple, TableR, TableS

BandResults = Dict[BandJoinQuery, List[STuple]]
RBandResults = Dict[BandJoinQuery, List[RTuple]]


class BandJoinStrategy:
    """Interface shared by all band-join processing strategies."""

    name: str = "abstract"

    def __init__(self, table_s: TableS, table_r: Optional[TableR] = None):
        self.table_s = table_s
        self.table_r = table_r if table_r is not None else TableR()
        self._queries: Dict[int, BandJoinQuery] = {}

    def add_query(self, query: BandJoinQuery) -> None:
        if query.qid in self._queries:
            raise ValueError(f"duplicate query id {query.qid}")
        self._queries[query.qid] = query
        self._index_query(query)

    def remove_query(self, query: BandJoinQuery) -> None:
        del self._queries[query.qid]
        self._unindex_query(query)

    @property
    def query_count(self) -> int:
        return len(self._queries)

    @property
    def queries(self) -> List[BandJoinQuery]:
        return list(self._queries.values())

    def process_r(self, r: RTuple) -> BandResults:
        """New results caused by the arrival of an R-tuple."""
        raise NotImplementedError

    def process_s(self, s: STuple) -> RBandResults:
        """New results caused by the arrival of an S-tuple (symmetric)."""
        raise NotImplementedError

    def _index_query(self, query: BandJoinQuery) -> None:
        raise NotImplementedError

    def _unindex_query(self, query: BandJoinQuery) -> None:
        raise NotImplementedError


class BJQOuter(BandJoinStrategy):
    """BJ-QOuter: iterate queries, one ordered-index range scan each."""

    name = "BJ-Q"

    def _index_query(self, query: BandJoinQuery) -> None:
        pass  # the query registry is the whole structure

    def _unindex_query(self, query: BandJoinQuery) -> None:
        pass

    def process_r(self, r: RTuple) -> BandResults:
        results: BandResults = {}
        for query in self._queries.values():
            window = query.s_window(r)
            hits = self.table_s.by_b.range_values(window.lo, window.hi)
            if hits:
                results[query] = hits
        return results

    def process_s(self, s: STuple) -> RBandResults:
        results: RBandResults = {}
        for query in self._queries.values():
            window = query.r_window(s)
            hits = self.table_r.by_b.range_values(window.lo, window.hi)
            if hits:
                results[query] = hits
        return results


class BJDOuter(BandJoinStrategy):
    """BJ-DOuter: iterate data, one interval-tree stabbing query each."""

    name = "BJ-D"

    def __init__(self, table_s: TableS, table_r: Optional[TableR] = None):
        super().__init__(table_s, table_r)
        self._bands: IntervalTree[BandJoinQuery] = IntervalTree()

    def _index_query(self, query: BandJoinQuery) -> None:
        self._bands.insert(query.band, query)

    def _unindex_query(self, query: BandJoinQuery) -> None:
        self._bands.remove(query.band, query)

    def process_r(self, r: RTuple) -> BandResults:
        results: BandResults = {}
        for s in self.table_s.scan_by_b():
            for __, query in self._bands.iter_stab(s.b - r.b):
                results.setdefault(query, []).append(s)
        return results

    def process_s(self, s: STuple) -> RBandResults:
        results: RBandResults = {}
        for r in self.table_r.scan_by_b():
            for __, query in self._bands.iter_stab(s.b - r.b):
                results.setdefault(query, []).append(r)
        return results


class BJMergeJoin(BandJoinStrategy):
    """BJ-MJ: merge the windows (sorted by left endpoint) with sorted S."""

    name = "BJ-MJ"

    def __init__(self, table_s: TableS, table_r: Optional[TableR] = None):
        super().__init__(table_s, table_r)
        self._by_lo: SortedKeyList[BandJoinQuery] = SortedKeyList(key=lambda q: q.band.lo)
        self._by_hi_desc: SortedKeyList[BandJoinQuery] = SortedKeyList(key=lambda q: -q.band.hi)

    def _index_query(self, query: BandJoinQuery) -> None:
        self._by_lo.add(query)
        self._by_hi_desc.add(query)

    def _unindex_query(self, query: BandJoinQuery) -> None:
        self._by_lo.remove(query)
        self._by_hi_desc.remove(query)

    def process_r(self, r: RTuple) -> BandResults:
        results: BandResults = {}
        idx = 0
        n = len(self._by_lo)
        # Active windows currently containing the sweep point, keyed by
        # right endpoint so expired windows pop cheaply.
        active: List = []
        for __, s in self.table_s.by_b.items():
            point = s.b - r.b
            while idx < n and self._by_lo[idx].band.lo <= point:
                query = self._by_lo[idx]
                heapq.heappush(active, (query.band.hi, query.qid, query))
                idx += 1
            while active and active[0][0] < point:
                heapq.heappop(active)
            for __, __, query in active:
                results.setdefault(query, []).append(s)
        return results

    def process_s(self, s: STuple) -> RBandResults:
        # Symmetric sweep: as r.b increases the probe point s.b - r.b
        # decreases, so windows enter in descending-right-endpoint order and
        # expire once their left endpoint exceeds the point.
        results: RBandResults = {}
        idx = 0
        n = len(self._by_hi_desc)
        active: List = []
        for __, r in self.table_r.by_b.items():
            point = s.b - r.b
            while idx < n and self._by_hi_desc[idx].band.hi >= point:
                query = self._by_hi_desc[idx]
                heapq.heappush(active, (-query.band.lo, query.qid, query))
                idx += 1
            while active and -active[0][0] > point:
                heapq.heappop(active)
            for __, __, query in active:
                results.setdefault(query, []).append(r)
        return results


class _BandGroupIndex:
    """Per-group SSI structure: member windows in ascending-left-endpoint
    and descending-right-endpoint order (the sequences I^l_j and I^r_j).

    Stored columnar: plain query lists parallel to ``array('d')`` endpoint
    columns (left endpoints ascending; right endpoints negated so they too
    sort ascending).  The per-event probes iterate the query lists exactly
    as they iterated the former :class:`SortedKeyList`; the batch fast path
    runs vectorized ``searchsorted`` directly over the key columns.
    """

    __slots__ = ("by_lo", "lo_keys", "hi_by_lo", "by_hi_desc", "neg_hi_keys", "lo_by_hi")

    def __init__(self) -> None:
        self.by_lo: List[BandJoinQuery] = []
        self.lo_keys = array("d")
        self.hi_by_lo = array("d")  # band.hi, parallel to by_lo
        self.by_hi_desc: List[BandJoinQuery] = []
        self.neg_hi_keys = array("d")
        self.lo_by_hi = array("d")  # band.lo, parallel to by_hi_desc

    def add(self, query: BandJoinQuery) -> None:
        lo = query.band.lo
        hi = query.band.hi
        idx = bisect_right(self.lo_keys, lo)
        self.by_lo.insert(idx, query)
        self.lo_keys.insert(idx, lo)
        self.hi_by_lo.insert(idx, hi)
        idx = bisect_right(self.neg_hi_keys, -hi)
        self.by_hi_desc.insert(idx, query)
        self.neg_hi_keys.insert(idx, -hi)
        self.lo_by_hi.insert(idx, lo)

    def remove(self, query: BandJoinQuery) -> None:
        self._remove(self.lo_keys, self.by_lo, self.hi_by_lo, query.band.lo, query)
        self._remove(self.neg_hi_keys, self.by_hi_desc, self.lo_by_hi, -query.band.hi, query)

    @staticmethod
    def _remove(keys, queries, other_keys, key: float, query: BandJoinQuery) -> None:
        idx = bisect_left(keys, key)
        while idx < len(keys) and keys[idx] == key:
            if queries[idx] is query:
                del queries[idx]
                del keys[idx]
                del other_keys[idx]
                return
            idx += 1
        raise ValueError(f"query not found: {query!r}")


class BJSSI(BandJoinStrategy):
    """BJ-SSI: one B-tree probe per stabbing group, output-sensitive scans.

    For each group with stabbing point ``p_j`` the strategy looks up
    ``p_j + r.b`` in the B-tree on S(B), finds the adjacent entries s1/s2
    surrounding it, and scans the group's two endpoint orders only as far as
    the affected queries reach (STEP 1 of Section 3.1).  Result tuples are
    then produced by walking the B-tree leaves outward from the probe point
    (STEP 2), so no S-tuple is touched unless it joins.
    """

    name = "BJ-SSI"

    def __init__(
        self,
        table_s: TableS,
        table_r: Optional[TableR] = None,
        *,
        partition: Optional[DynamicStabbingPartitionBase[BandJoinQuery]] = None,
        epsilon: float = 1.0,
    ):
        super().__init__(table_s, table_r)
        if partition is None:
            partition = LazyStabbingPartition(epsilon=epsilon, interval_of=band_interval)
        self._ssi: StabbingSetIndex[BandJoinQuery, _BandGroupIndex] = StabbingSetIndex(
            partition,
            make_structure=_BandGroupIndex,
            add_item=lambda st, q: st.add(q),
            remove_item=lambda st, q: st.remove(q),
        )

    @property
    def ssi(self) -> StabbingSetIndex:
        return self._ssi

    @property
    def group_count(self) -> int:
        return self._ssi.group_count()

    def _index_query(self, query: BandJoinQuery) -> None:
        self._ssi.insert(query)

    def _unindex_query(self, query: BandJoinQuery) -> None:
        self._ssi.delete(query)

    def process_r(self, r: RTuple) -> BandResults:
        results: BandResults = {}
        for point, structure in self._ssi.groups():
            probe_band_group_r(self.table_s.by_b, r, point, structure, results)
        return results

    def process_s(self, s: STuple) -> RBandResults:
        """Symmetric processing of an S-tuple against the same SSI.

        A query is affected iff some r satisfies ``s.b - r.b in band``; with
        r1/r2 the R(B) entries surrounding ``s.b - p_j`` this mirrors STEP 1
        with the two endpoint orders swapping roles.
        """
        results: RBandResults = {}
        for point, structure in self._ssi.groups():
            probe_band_group_s(self.table_r.by_b, s, point, structure, results)
        return results

    def process_r_batch(self, rs: Sequence[RTuple]) -> List[BandResults]:
        """Batch fast path: probe a run of R-tuples against the current S
        state in one pass over the group table.  Delta-identical to calling
        :meth:`process_r` per tuple (against unchanged tables)."""
        from repro.fastpath.band import batch_probe_band_r

        results: List[BandResults] = [{} for _ in rs]
        points, structures = self._ssi.group_table()
        batch_probe_band_r(self.table_s.by_b, rs, points, structures, results)
        return results

    def process_s_batch(self, ss: Sequence[STuple]) -> List[RBandResults]:
        """Symmetric batch fast path for a run of S-tuples."""
        from repro.fastpath.band import batch_probe_band_s

        results: List[RBandResults] = [{} for _ in ss]
        points, structures = self._ssi.group_table()
        batch_probe_band_s(self.table_r.by_b, ss, points, structures, results)
        return results


def probe_band_group_r(
    by_b, r: RTuple, point: float, structure: _BandGroupIndex, results: BandResults
) -> None:
    """The BJ-SSI per-group probe for an incoming R-tuple (STEPs 1 and 2 of
    Section 3.1).  Shared between :class:`BJSSI` (applied to every group)
    and the hotspot-based processor (applied to hotspot groups only)."""
    pred, succ = by_b.surrounding(point + r.b)
    if not pred.valid and not succ.valid:
        return  # S is empty
    affected: Dict[int, BandJoinQuery] = {}
    if pred.valid:
        bound = pred.key - r.b  # s1 - b
        for query in structure.by_lo:
            if query.band.lo > bound:
                break
            affected[query.qid] = query
    if succ.valid:
        bound = succ.key - r.b  # s2 - b
        for query in structure.by_hi_desc:
            if query.band.hi < bound:
                break
            affected.setdefault(query.qid, query)
    for query in affected.values():
        hits = _enumerate_window(pred, succ, query.s_window(r))
        assert hits, "affected band join produced no result"
        results[query] = hits


def probe_band_group_s(
    by_b, s: STuple, point: float, structure: _BandGroupIndex, results: RBandResults
) -> None:
    """Symmetric per-group probe for an incoming S-tuple: with r1/r2 the
    R(B) entries surrounding ``s.b - p_j``, the two endpoint orders swap
    roles."""
    pred, succ = by_b.surrounding(s.b - point)
    if not pred.valid and not succ.valid:
        return
    affected: Dict[int, BandJoinQuery] = {}
    if pred.valid:
        bound = s.b - pred.key  # >= point; matched by hi >= bound
        for query in structure.by_hi_desc:
            if query.band.hi < bound:
                break
            affected[query.qid] = query
    if succ.valid:
        bound = s.b - succ.key  # <= point; matched by lo <= bound
        for query in structure.by_lo:
            if query.band.lo > bound:
                break
            affected.setdefault(query.qid, query)
    for query in affected.values():
        hits = _enumerate_window(pred, succ, query.r_window(s))
        assert hits, "affected band join produced no result"
        results[query] = hits


def _enumerate_window(pred: Cursor, succ: Cursor, window: Interval) -> List:
    """Walk the B-tree leaves outward from the probe point, collecting
    entries inside ``window``; touches only contributing entries (plus one
    terminator per direction)."""
    if succ.valid:
        left = succ.clone()
        left.retreat()
    else:
        left = pred
    hits = left.collect_backward_ge(window.lo) if left.valid else []
    if succ.valid:
        hits.extend(succ.collect_forward_le(window.hi))
    return hits


def make_band_strategies(
    table_s: TableS,
    table_r: Optional[TableR] = None,
    *,
    epsilon: float = 1.0,
) -> Dict[str, BandJoinStrategy]:
    """All four strategies over shared tables, keyed by their paper names."""
    return {
        "BJ-Q": BJQOuter(table_s, table_r),
        "BJ-D": BJDOuter(table_s, table_r),
        "BJ-MJ": BJMergeJoin(table_s, table_r),
        "BJ-SSI": BJSSI(table_s, table_r, epsilon=epsilon),
    }
