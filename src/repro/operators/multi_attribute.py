"""Multi-attribute selection subscriptions via box stabbing partitions.

The multi-dimensional counterpart of :mod:`repro.operators.range_select`:
subscriptions constrain several attributes at once (a box in attribute
space), events are attribute tuples (points).  The group-processing trick
carries over:

* if the event point lies inside a group's *common box*, every member of
  the group matches --- reported in O(output) with zero per-member tests;
* otherwise only that group's members can still partially match, tested
  against the group's own R-tree (d = 2) or by a member scan (other d).

Clustered multi-attribute workloads (the common case the paper's hotspot
premise predicts) thus pay roughly O(tau + k) per event, against
O(g(n) + k) for one flat R-tree over all subscriptions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.multidim import Box, DynamicBoxPartition
from repro.dstruct.rtree import Rect, RTree


class BoxSubscription:
    """A standing multi-attribute selection subscription."""

    __slots__ = ("qid", "box")

    _ids = iter(range(1, 1 << 62))

    def __init__(self, box: Box, qid: Optional[int] = None):
        self.qid = qid if qid is not None else next(self._ids)
        self.box = box

    def matches(self, point: Sequence[float]) -> bool:
        return self.box.contains(point)

    def __repr__(self) -> str:
        return f"BoxSubscription(qid={self.qid}, box={self.box})"


def _subscription_box(subscription: BoxSubscription) -> Box:
    return subscription.box


def _as_rect(box: Box) -> Rect:
    assert box.dimensions == 2
    return Rect(box.lo[0], box.lo[1], box.hi[0], box.hi[1])


class MultiAttributeIndexBase:
    """Interface shared by the multi-attribute subscription indexes."""

    name = "abstract"

    def __init__(self, dimensions: int):
        if dimensions < 1:
            raise ValueError("need at least one dimension")
        self.dimensions = dimensions
        self._subscriptions: Dict[int, BoxSubscription] = {}

    def add(self, subscription: BoxSubscription) -> None:
        if subscription.box.dimensions != self.dimensions:
            raise ValueError("subscription dimensionality mismatch")
        if subscription.qid in self._subscriptions:
            raise ValueError(f"duplicate subscription id {subscription.qid}")
        self._subscriptions[subscription.qid] = subscription
        self._index(subscription)

    def remove(self, subscription: BoxSubscription) -> None:
        del self._subscriptions[subscription.qid]
        self._unindex(subscription)

    def __len__(self) -> int:
        return len(self._subscriptions)

    def match(self, point: Sequence[float]) -> List[BoxSubscription]:
        raise NotImplementedError

    def _index(self, subscription: BoxSubscription) -> None:
        raise NotImplementedError

    def _unindex(self, subscription: BoxSubscription) -> None:
        raise NotImplementedError


class ScanBoxIndex(MultiAttributeIndexBase):
    """Brute-force oracle."""

    name = "SCAN"

    def _index(self, subscription: BoxSubscription) -> None:
        pass

    def _unindex(self, subscription: BoxSubscription) -> None:
        pass

    def match(self, point: Sequence[float]) -> List[BoxSubscription]:
        return [s for s in self._subscriptions.values() if s.matches(point)]


class RTreeBoxIndex(MultiAttributeIndexBase):
    """Flat R-tree over all subscription boxes (2-D only): the standard
    single-structure approach, O(g(n) + k) per event."""

    name = "RTREE"

    def __init__(self, dimensions: int = 2, *, fanout: int = 16):
        if dimensions != 2:
            raise ValueError("RTreeBoxIndex supports exactly 2 dimensions")
        super().__init__(dimensions)
        self._rtree: RTree[BoxSubscription] = RTree(fanout)

    def _index(self, subscription: BoxSubscription) -> None:
        self._rtree.insert(_as_rect(subscription.box), subscription)

    def _unindex(self, subscription: BoxSubscription) -> None:
        self._rtree.remove(_as_rect(subscription.box), subscription)

    def match(self, point: Sequence[float]) -> List[BoxSubscription]:
        return [s for __, s in self._rtree.stab(point[0], point[1])]


class SSIBoxIndex(MultiAttributeIndexBase):
    """Box-stabbing-partition group processing (the Section 6 extension).

    Per group: the common-box fast path, then an R-tree (d = 2) or member
    scan fallback for events outside the common box.
    """

    name = "SSI"

    def __init__(self, dimensions: int = 2, *, epsilon: float = 1.0, fanout: int = 16):
        super().__init__(dimensions)
        self._fanout = fanout
        self._partition: DynamicBoxPartition[BoxSubscription] = DynamicBoxPartition(
            epsilon=epsilon, box_of=_subscription_box
        )
        self._rtrees: Dict[int, RTree[BoxSubscription]] = {}
        self._rebuild_structures()

    @property
    def group_count(self) -> int:
        return len(self._partition)

    def _use_rtrees(self) -> bool:
        return self.dimensions == 2

    def _rebuild_structures(self) -> None:
        if not self._use_rtrees():
            return
        self._rtrees = {}
        for group in self._partition.groups:
            rtree: RTree[BoxSubscription] = RTree(self._fanout)
            for subscription in group:
                rtree.insert(_as_rect(subscription.box), subscription)
            self._rtrees[id(group)] = rtree

    def _index(self, subscription: BoxSubscription) -> None:
        before = self._partition.reconstruction_count
        self._partition.insert(subscription)
        if self._partition.reconstruction_count != before:
            self._rebuild_structures()
        elif self._use_rtrees():
            group = self._partition.group_of(subscription)
            rtree = self._rtrees.get(id(group))
            if rtree is None:
                rtree = RTree(self._fanout)
                self._rtrees[id(group)] = rtree
            rtree.insert(_as_rect(subscription.box), subscription)

    def _unindex(self, subscription: BoxSubscription) -> None:
        group = self._partition.group_of(subscription)
        before = self._partition.reconstruction_count
        self._partition.delete(subscription)
        if self._partition.reconstruction_count != before:
            self._rebuild_structures()
        elif self._use_rtrees():
            rtree = self._rtrees[id(group)]
            rtree.remove(_as_rect(subscription.box), subscription)
            if group.size == 0:
                del self._rtrees[id(group)]

    def match(self, point: Sequence[float]) -> List[BoxSubscription]:
        if self.dimensions == 2:
            return self._match_2d(point[0], point[1])
        out: List[BoxSubscription] = []
        for group in self._partition.groups:
            common = group.common
            if common is not None and common.contains(point):
                out.extend(group)
            else:
                out.extend(s for s in group if s.matches(point))
        return out

    def _match_2d(self, x: float, y: float) -> List[BoxSubscription]:
        """2-D hot path with the common-box test inlined."""
        out: List[BoxSubscription] = []
        rtrees = self._rtrees
        for group in self._partition.groups:
            common = group.common
            if common is not None:
                lo = common.lo
                hi = common.hi
                if lo[0] <= x <= hi[0] and lo[1] <= y <= hi[1]:
                    out.extend(group)
                    continue
            out.extend(s for __, s in rtrees[id(group)].stab(x, y))
        return out
