"""Band joins with local selections (Section 6 future work).

Example 2's full query is "a band join with local selections":

    sigma_{A in rangeA_i} R
        JOIN_{S.B - R.B in band_i} sigma_{C in rangeC_i} S

The paper notes that "it remains a challenging problem to develop methods
for composing group-processing techniques for more complex queries"; this
module composes them the pragmatic way:

* the SSI is built on the band windows (the join condition dominates the
  sharing opportunity, as in Section 3.1);
* STEP 1 runs unchanged and yields band-affected *candidates*; each
  candidate is filtered by its R.A selection in O(1);
* STEP 2's outward leaf walk filters each S-tuple by the candidate's C
  selection.

Unlike pure BJ-SSI the result is not fully output-sensitive: a candidate
may pass the band test yet produce no results once the C selection
applies, and filtered walk entries are touched without contributing.  The
processor still inherits the tau-bound probe structure, which is what the
composition keeps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.partition_base import DynamicStabbingPartitionBase
from repro.core.ssi import StabbingSetIndex
from repro.dstruct.sorted_list import SortedKeyList
from repro.engine.table import RTuple, STuple, TableR, TableS

BandSelectResults = Dict["BandSelectJoinQuery", List[STuple]]


class BandSelectJoinQuery:
    """A continuous band join with local selections on both inputs."""

    __slots__ = ("qid", "band", "range_a", "range_c")

    _ids = iter(range(1, 1 << 62))

    def __init__(
        self,
        band: Interval,
        range_a: Interval,
        range_c: Interval,
        qid: Optional[int] = None,
    ):
        self.qid = qid if qid is not None else next(self._ids)
        self.band = band
        self.range_a = range_a
        self.range_c = range_c

    def matches(self, r: RTuple, s: STuple) -> bool:
        return (
            self.band.contains(s.b - r.b)
            and self.range_a.contains(r.a)
            and self.range_c.contains(s.c)
        )

    def s_window(self, r: RTuple) -> Interval:
        return self.band.shift(r.b)

    def __repr__(self) -> str:
        return (
            f"BandSelectJoinQuery(qid={self.qid}, band={self.band}, "
            f"rangeA={self.range_a}, rangeC={self.range_c})"
        )


def band_of(query: BandSelectJoinQuery) -> Interval:
    return query.band


def brute_force_band_select_join(
    queries: Iterable[BandSelectJoinQuery], r: RTuple, table_s: TableS
) -> BandSelectResults:
    results: BandSelectResults = {}
    for query in queries:
        hits = [s for s in table_s if query.matches(r, s)]
        if hits:
            results[query] = sorted(hits, key=lambda s: (s.b, s.c, s.sid))
    return results


class BandSelectStrategy:
    """Interface shared by band-select-join strategies."""

    name = "abstract"

    def __init__(self, table_s: TableS, table_r: Optional[TableR] = None):
        self.table_s = table_s
        self.table_r = table_r if table_r is not None else TableR()
        self._queries: Dict[int, BandSelectJoinQuery] = {}

    def add_query(self, query: BandSelectJoinQuery) -> None:
        if query.qid in self._queries:
            raise ValueError(f"duplicate query id {query.qid}")
        self._queries[query.qid] = query
        self._index_query(query)

    def remove_query(self, query: BandSelectJoinQuery) -> None:
        del self._queries[query.qid]
        self._unindex_query(query)

    @property
    def query_count(self) -> int:
        return len(self._queries)

    def process_r(self, r: RTuple) -> BandSelectResults:
        raise NotImplementedError

    def _index_query(self, query: BandSelectJoinQuery) -> None:
        raise NotImplementedError

    def _unindex_query(self, query: BandSelectJoinQuery) -> None:
        raise NotImplementedError


class BSJPerQuery(BandSelectStrategy):
    """Baseline: per-query window scan with both selections applied."""

    name = "BSJ-Q"

    def _index_query(self, query: BandSelectJoinQuery) -> None:
        pass

    def _unindex_query(self, query: BandSelectJoinQuery) -> None:
        pass

    def process_r(self, r: RTuple) -> BandSelectResults:
        results: BandSelectResults = {}
        for query in self._queries.values():
            if not query.range_a.contains(r.a):
                continue
            window = query.s_window(r)
            hits = [
                s
                for s in self.table_s.by_b.range_values(window.lo, window.hi)
                if query.range_c.contains(s.c)
            ]
            if hits:
                results[query] = hits
        return results


class _BandSelectGroup:
    """Per-group structure: both endpoint orders of the band windows."""

    __slots__ = ("by_lo", "by_hi_desc")

    def __init__(self) -> None:
        self.by_lo: SortedKeyList[BandSelectJoinQuery] = SortedKeyList(
            key=lambda q: q.band.lo
        )
        self.by_hi_desc: SortedKeyList[BandSelectJoinQuery] = SortedKeyList(
            key=lambda q: -q.band.hi
        )

    def add(self, query: BandSelectJoinQuery) -> None:
        self.by_lo.add(query)
        self.by_hi_desc.add(query)

    def remove(self, query: BandSelectJoinQuery) -> None:
        self.by_lo.remove(query)
        self.by_hi_desc.remove(query)


class BSJSSI(BandSelectStrategy):
    """SSI on the band windows; selections applied during the group probe."""

    name = "BSJ-SSI"

    def __init__(
        self,
        table_s: TableS,
        table_r: Optional[TableR] = None,
        *,
        partition: Optional[DynamicStabbingPartitionBase[BandSelectJoinQuery]] = None,
        epsilon: float = 1.0,
    ):
        super().__init__(table_s, table_r)
        if partition is None:
            partition = LazyStabbingPartition(epsilon=epsilon, interval_of=band_of)
        self._ssi: StabbingSetIndex[BandSelectJoinQuery, _BandSelectGroup] = (
            StabbingSetIndex(
                partition,
                make_structure=_BandSelectGroup,
                add_item=lambda g, q: g.add(q),
                remove_item=lambda g, q: g.remove(q),
            )
        )

    @property
    def group_count(self) -> int:
        return self._ssi.group_count()

    def _index_query(self, query: BandSelectJoinQuery) -> None:
        self._ssi.insert(query)

    def _unindex_query(self, query: BandSelectJoinQuery) -> None:
        self._ssi.delete(query)

    def process_r(self, r: RTuple) -> BandSelectResults:
        results: BandSelectResults = {}
        tree = self.table_s.by_b
        for point, structure in self._ssi.groups():
            pred, succ = tree.surrounding(point + r.b)
            if not pred.valid and not succ.valid:
                continue
            candidates: Dict[int, BandSelectJoinQuery] = {}
            if pred.valid:
                bound = pred.key - r.b
                for query in structure.by_lo:
                    if query.band.lo > bound:
                        break
                    if query.range_a.contains(r.a):
                        candidates[query.qid] = query
            if succ.valid:
                bound = succ.key - r.b
                for query in structure.by_hi_desc:
                    if query.band.hi < bound:
                        break
                    if query.range_a.contains(r.a):
                        candidates.setdefault(query.qid, query)
            for query in candidates.values():
                window = query.s_window(r)
                if succ.valid:
                    left = succ.clone()
                    left.retreat()
                else:
                    left = pred
                hits = (
                    left.collect_backward_ge(window.lo) if left.valid else []
                )
                if succ.valid:
                    hits.extend(succ.collect_forward_le(window.hi))
                hits = [s for s in hits if query.range_c.contains(s.c)]
                if hits:
                    results[query] = hits
        return results
