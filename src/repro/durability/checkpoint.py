"""Per-shard checkpoints: atomic snapshots that bound WAL replay.

A checkpoint is a directory ``checkpoint-<next_seq 20 digits>/`` holding
one binary snapshot file per shard plus a JSON manifest::

    checkpoint-00000000000000004096/
        manifest.json
        shard-0.snap
        shard-1.snap
        ...

``next_seq`` is the first WAL sequence number *not* reflected in the
snapshot; recovery restores the snapshot and replays the WAL from there.
Each ``shard-k.snap`` is a concatenation of codec records covering shard
``k``'s slice of the durable state, partitioned the same way the router
partitions the select plane (R rows by ``B``, S rows by ``C``, queries by
their first placement shard) — slices are disjoint, so restoring is the
union of all files.  Within a file rows precede subscriptions, and
recovery applies *all* rows before *any* subscription: a freshly
subscribed query emits no deltas for pre-existing rows, so restore order
row-then-query reproduces exactly the structures an uninterrupted run
would hold.

Writes are crash-safe by construction: everything is written into a
``.tmp`` sibling, fsynced, then published with one atomic ``os.replace``.
A reader either sees a complete checkpoint or none.  The manifest stores a
CRC32 per snapshot file; validation failure (bad CRC, missing file, bad
version) makes recovery skip that checkpoint and fall back to an older
one — or to full-WAL replay.

The manifest's ``created_at_unix`` field is *metadata only* (operator
forensics: "how stale is this snapshot?").  Nothing on the recovery or
replay path reads it — progress is measured in sequence numbers — which is
why the RA001 determinism rule allowlists wall-clock reads in exactly this
module and nowhere else in the subsystem.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.codec import (
    CODEC_VERSION,
    DurabilityError,
    DecodedRecord,
    decode_stream,
)
from repro.engine.events import DataEvent

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "LoadedCheckpoint",
    "checkpoint_dirs",
    "write_checkpoint",
    "load_latest_checkpoint",
    "prune_checkpoints",
]

CHECKPOINT_VERSION = 1
MANIFEST_NAME = "manifest.json"
CHECKPOINT_PREFIX = "checkpoint-"


class CheckpointError(DurabilityError):
    """A checkpoint could not be written or no candidate is loadable."""


@dataclass(slots=True)
class LoadedCheckpoint:
    """A validated snapshot, decoded and split into restore phases."""

    next_seq: int
    config: Dict[str, Any]
    rows: List[DecodedRecord] = field(default_factory=list)
    subscriptions: List[DecodedRecord] = field(default_factory=list)
    path: Optional[Path] = None


def checkpoint_dirs(directory: Path) -> List[Path]:
    """Checkpoint directories, oldest first (the name embeds next_seq)."""
    return sorted(
        p
        for p in Path(directory).glob(f"{CHECKPOINT_PREFIX}*")
        if p.is_dir() and not p.name.endswith(".tmp")
    )


def _dir_for(directory: Path, next_seq: int) -> Path:
    return Path(directory) / f"{CHECKPOINT_PREFIX}{next_seq:020d}"


def write_checkpoint(
    directory: Path,
    *,
    next_seq: int,
    shard_payloads: List[bytes],
    config: Dict[str, Any],
) -> Path:
    """Write one checkpoint atomically; returns the published directory.

    ``shard_payloads[k]`` is shard ``k``'s concatenated codec records.  The
    temp directory is fully materialized (files fsynced) before the single
    ``os.replace`` that makes it visible.
    """
    final = _dir_for(directory, next_seq)
    tmp = final.with_name(final.name + ".tmp")
    if tmp.exists():
        _remove_tree(tmp)
    tmp.mkdir(parents=True)
    shard_entries: List[Dict[str, Any]] = []
    for index, payload in enumerate(shard_payloads):
        name = f"shard-{index}.snap"
        _write_file(tmp / name, payload)
        shard_entries.append(
            {"file": name, "crc32": zlib.crc32(payload), "bytes": len(payload)}
        )
    manifest = {
        "version": CHECKPOINT_VERSION,
        "codec_version": CODEC_VERSION,
        "next_seq": next_seq,
        "num_shards": len(shard_payloads),
        "shards": shard_entries,
        "config": dict(config),
        # Metadata only: never read by recovery (see module docstring).
        "created_at_unix": time.time(),
    }
    _write_file(
        tmp / MANIFEST_NAME,
        json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
    )
    if final.exists():
        _remove_tree(final)
    os.replace(tmp, final)
    return final


def _write_file(path: Path, payload: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())


def _remove_tree(path: Path) -> None:
    for child in sorted(path.iterdir()):
        child.unlink()
    path.rmdir()


def _load_one(path: Path) -> LoadedCheckpoint:
    """Validate and decode one checkpoint directory; raises
    :class:`CheckpointError` on any inconsistency."""
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise CheckpointError(f"{path.name}: missing {MANIFEST_NAME}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError as exc:
        raise CheckpointError(f"{path.name}: unreadable manifest: {exc}") from exc
    if manifest.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path.name}: unsupported checkpoint version {manifest.get('version')}"
        )
    if manifest.get("codec_version") != CODEC_VERSION:
        raise CheckpointError(
            f"{path.name}: codec version {manifest.get('codec_version')}, "
            f"expected {CODEC_VERSION}"
        )
    loaded = LoadedCheckpoint(
        next_seq=int(manifest["next_seq"]),
        config=dict(manifest.get("config", {})),
        path=path,
    )
    for entry in manifest["shards"]:
        snap = path / entry["file"]
        if not snap.exists():
            raise CheckpointError(f"{path.name}: missing snapshot {entry['file']}")
        payload = snap.read_bytes()
        if zlib.crc32(payload) != entry["crc32"]:
            raise CheckpointError(f"{path.name}: CRC mismatch in {entry['file']}")
        for record in decode_stream(payload):
            if isinstance(record, DataEvent):
                loaded.rows.append(record)
            else:
                loaded.subscriptions.append(record)
    return loaded


def load_latest_checkpoint(
    directory: Path,
) -> Tuple[Optional[LoadedCheckpoint], List[str]]:
    """Newest checkpoint that validates, plus a note per candidate skipped.

    Candidates are tried newest-first; a damaged one is recorded and the
    scan falls back, so a bad final checkpoint degrades recovery to the
    previous checkpoint (or a full WAL replay), never to a crash.
    """
    skipped: List[str] = []
    for path in reversed(checkpoint_dirs(directory)):
        try:
            return _load_one(path), skipped
        except DurabilityError as exc:
            skipped.append(str(exc))
    return None, skipped


def prune_checkpoints(directory: Path, keep: Path) -> List[Path]:
    """Remove every checkpoint directory other than ``keep`` (called after
    a successful write; superseded snapshots only slow the next scan)."""
    removed: List[Path] = []
    for path in checkpoint_dirs(directory):
        if path != keep:
            _remove_tree(path)
            removed.append(path)
    return removed
