"""Crash recovery: newest valid checkpoint + sequence-deduped WAL replay.

The recovery invariant this module delivers: after ``recover_into`` a
fresh system holds *exactly* the state of the crashed run up to its last
durable WAL record, and every delta it produces from then on is
byte-identical to what an uninterrupted run would have produced.  The
argument rests on two properties of the engine:

1. **Delta identity.**  Per-query result deltas depend only on the live
   row and subscription sets at event time, never on the order internal
   structures were built in (the fuzzer enforces this continuously), so
   rebuilding state by re-application reproduces all future behaviour.
2. **Sequence-driven progress.**  WAL sequence numbers are assigned in
   submission order, so "where we were" is a single integer.  Recovery
   restores a checkpoint covering ``[0, cp.next_seq)``, then replays only
   WAL records with ``seq >= cp.next_seq`` — records below that (retention
   prunes whole segments, so overlap is normal) are deduplicated by
   sequence number, not re-applied.  No wall clock is consulted anywhere
   on this path (lint rule RA001 enforces that structurally).

A torn final record — the expected signature of a crash mid-write — is
tolerated and reported; CRC damage elsewhere raises
:class:`~repro.durability.wal.WalCorruptionError` out of recovery, because
silently dropping interior records would violate the invariant above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.codec import (
    DecodedRecord,
    DurabilityError,
    Unsubscribe,
    decode_record,
)
from repro.durability.checkpoint import load_latest_checkpoint
from repro.durability.wal import read_wal
from repro.engine.events import QueryEvent

__all__ = ["RecoveryError", "RecoveryReport", "apply_record", "recover_into", "recover_system"]


class RecoveryError(DurabilityError):
    """Recovery could not reconstruct a consistent state."""


@dataclass(slots=True)
class RecoveryReport:
    """What one recovery pass did, in sequence-number terms."""

    next_seq: int = 0
    checkpoint_seq: Optional[int] = None
    checkpoint_rows: int = 0
    checkpoint_subscriptions: int = 0
    replayed_events: int = 0
    deduped_records: int = 0
    torn_tail: bool = False
    skipped_checkpoints: List[str] = field(default_factory=list)

    @property
    def recovered_events(self) -> int:
        return self.checkpoint_rows + self.checkpoint_subscriptions + self.replayed_events

    def summary(self) -> str:
        source = (
            f"checkpoint@{self.checkpoint_seq}"
            if self.checkpoint_seq is not None
            else "no checkpoint"
        )
        tail = " (torn tail sealed)" if self.torn_tail else ""
        return (
            f"recovery: {source} + {self.replayed_events} WAL record(s) replayed"
            f" ({self.deduped_records} deduped by seq); resuming at seq "
            f"{self.next_seq}{tail}"
        )


def apply_record(target: Any, record: DecodedRecord) -> None:
    """Apply one decoded record to a system or pipeline.

    Targets expose either the pipeline surface (``submit`` accepts data and
    subscription events alike) or the synchronous system surface
    (``apply``/``subscribe``/``unsubscribe``); both resolve ``Unsubscribe``
    through ``query_by_id`` since the original query object died with the
    old process.
    """
    if isinstance(record, Unsubscribe):
        try:
            query = target.query_by_id(record.qid)
        except KeyError as exc:
            raise RecoveryError(
                f"unsubscribe of unknown query id {record.qid} during replay"
            ) from exc
        target.unsubscribe(query)
        return
    submit = getattr(target, "submit", None)
    if submit is not None:
        submit(record)
        return
    if isinstance(record, QueryEvent):
        target.subscribe(record.query)
    else:
        target.apply(record)


def recover_into(target: Any, directory: Path) -> RecoveryReport:
    """Restore ``directory``'s durable state into a *fresh* ``target``.

    Phase 1 applies the newest valid checkpoint (all rows before any
    subscription — see ``checkpoint.py`` for why that order is exact);
    phase 2 replays the WAL tail with sequence-number dedupe.  The caller
    is responsible for suppressing re-logging while this runs (see
    :class:`~repro.durability.manager.DurabilityManager.attach`).
    """
    directory = Path(directory)
    report = RecoveryReport()
    loaded, skipped = load_latest_checkpoint(directory)
    report.skipped_checkpoints = skipped
    replay_from = 0
    if loaded is not None:
        report.checkpoint_seq = loaded.next_seq
        replay_from = loaded.next_seq
        for record in loaded.rows:
            apply_record(target, record)
        for record in loaded.subscriptions:
            apply_record(target, record)
        report.checkpoint_rows = len(loaded.rows)
        report.checkpoint_subscriptions = len(loaded.subscriptions)
    scan = read_wal(directory)
    report.torn_tail = scan.torn_tail
    for wal_record in scan.records:
        if wal_record.seq < replay_from:
            report.deduped_records += 1
            continue
        apply_record(target, decode_record(wal_record.payload))
        report.replayed_events += 1
    drain = getattr(target, "drain", None)
    if drain is not None:
        drain()
    report.next_seq = max(replay_from, scan.next_seq)
    return report


def recover_system(
    directory: Path,
    *,
    num_shards: int = 4,
    alpha: Optional[float] = 0.01,
    epsilon: float = 1.0,
    domain_lo: Optional[float] = None,
    domain_hi: Optional[float] = None,
) -> Tuple[Any, RecoveryReport]:
    """Build a :class:`ShardedContinuousQuerySystem` from durable state.

    Construction parameters come from the checkpoint manifest's recorded
    config when one exists (the snapshot partitioning assumes the same
    routing), falling back to the keyword defaults for WAL-only
    recovery.  Returns ``(system, report)``.
    """
    from repro.runtime.sharding import (
        DOMAIN_HI,
        DOMAIN_LO,
        ShardedContinuousQuerySystem,
    )

    loaded, __ = load_latest_checkpoint(Path(directory))
    config: Dict[str, Any] = loaded.config if loaded is not None else {}
    system = ShardedContinuousQuerySystem(
        num_shards=int(config.get("num_shards", num_shards)),
        alpha=config.get("alpha", alpha),
        epsilon=float(config.get("epsilon", epsilon)),
        domain_lo=float(
            config.get("domain_lo", DOMAIN_LO if domain_lo is None else domain_lo)
        ),
        domain_hi=float(
            config.get("domain_hi", DOMAIN_HI if domain_hi is None else domain_hi)
        ),
    )
    report = recover_into(system, directory)
    return system, report
