"""Versioned binary codec for the durability log and checkpoint snapshots.

Every record the runtime persists — a data event or a subscription change —
is encoded as one tagged, fixed-layout ``struct`` frame.  The format is
deliberately *not* pickle: pickle payloads execute code on load, change
shape across refactors, and cannot be validated byte-by-byte.  A tagged
struct layout gives a stable on-disk contract the recovery path can
CRC-check and reject precisely.

Layouts (little-endian; ``q`` = int64, ``d`` = float64)::

    tag 1  INSERT R   <Bqdd>    rid, a, b
    tag 2  DELETE R   <Bqdd>    rid, a, b
    tag 3  INSERT S   <Bqdd>    sid, b, c
    tag 4  DELETE S   <Bqdd>    sid, b, c
    tag 5  SUB band   <Bqdd>    qid, band.lo, band.hi
    tag 6  SUB select <Bqdddd>  qid, a.lo, a.hi, c.lo, c.hi
    tag 7  UNSUB      <Bq>      qid

Rows are frozen dataclasses with value equality, so a row decoded from its
coordinates deletes the original from any table; queries are reconstructed
with their original explicit ``qid``, which is how the engine identifies
subscriptions across the restart boundary.  ``UNSUB`` carries only the qid
— at replay time the target resolves it against its live subscription set.

``CODEC_VERSION`` is stamped into every WAL segment header and checkpoint
manifest; decoding refuses payloads from a different major version instead
of misinterpreting them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Union

from repro.core.intervals import Interval
from repro.engine.events import DataEvent, EventKind, QueryEvent
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.table import RTuple, STuple

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "DurabilityError",
    "Unsubscribe",
    "DecodedRecord",
    "encode_event",
    "decode_record",
    "decode_stream",
]

CODEC_VERSION = 1


class DurabilityError(Exception):
    """Base class for every durability-subsystem failure."""


class CodecError(DurabilityError):
    """A persisted record does not match the wire format."""


TAG_INSERT_R = 1
TAG_DELETE_R = 2
TAG_INSERT_S = 3
TAG_DELETE_S = 4
TAG_SUB_BAND = 5
TAG_SUB_SELECT = 6
TAG_UNSUB = 7

_ROW = struct.Struct("<Bqdd")
_SUB_BAND = struct.Struct("<Bqdd")
_SUB_SELECT = struct.Struct("<Bqdddd")
_UNSUB = struct.Struct("<Bq")

_SIZES = {
    TAG_INSERT_R: _ROW.size,
    TAG_DELETE_R: _ROW.size,
    TAG_INSERT_S: _ROW.size,
    TAG_DELETE_S: _ROW.size,
    TAG_SUB_BAND: _SUB_BAND.size,
    TAG_SUB_SELECT: _SUB_SELECT.size,
    TAG_UNSUB: _UNSUB.size,
}


@dataclass(frozen=True, slots=True)
class Unsubscribe:
    """A decoded subscription cancellation.

    The original query object does not survive the restart, so replay
    resolves ``qid`` against whatever subscription the target currently
    holds under that id.
    """

    qid: int


DecodedRecord = Union[DataEvent, QueryEvent, Unsubscribe]


def encode_event(event: object) -> bytes:
    """Encode one pipeline event as a self-describing binary record."""
    if isinstance(event, DataEvent):
        row = event.row
        if event.relation == "R":
            tag = TAG_INSERT_R if event.kind is EventKind.INSERT else TAG_DELETE_R
            return _ROW.pack(tag, row.rid, row.a, row.b)
        tag = TAG_INSERT_S if event.kind is EventKind.INSERT else TAG_DELETE_S
        return _ROW.pack(tag, row.sid, row.b, row.c)
    if isinstance(event, QueryEvent):
        query = event.query
        if event.kind is EventKind.DELETE:
            return _UNSUB.pack(TAG_UNSUB, query.qid)
        if isinstance(query, BandJoinQuery):
            return _SUB_BAND.pack(
                TAG_SUB_BAND, query.qid, query.band.lo, query.band.hi
            )
        if isinstance(query, SelectJoinQuery):
            return _SUB_SELECT.pack(
                TAG_SUB_SELECT,
                query.qid,
                query.range_a.lo,
                query.range_a.hi,
                query.range_c.lo,
                query.range_c.hi,
            )
        raise CodecError(f"unsupported query type: {type(query).__name__}")
    raise CodecError(f"unsupported event type: {type(event).__name__}")


def decode_record(payload: bytes) -> DecodedRecord:
    """Decode one record payload back into an applicable event."""
    if not payload:
        raise CodecError("empty record payload")
    tag = payload[0]
    expected = _SIZES.get(tag)
    if expected is None:
        raise CodecError(f"unknown record tag {tag}")
    if len(payload) != expected:
        raise CodecError(
            f"record tag {tag} expects {expected} bytes, got {len(payload)}"
        )
    if tag in (TAG_INSERT_R, TAG_DELETE_R):
        __, rid, a, b = _ROW.unpack(payload)
        kind = EventKind.INSERT if tag == TAG_INSERT_R else EventKind.DELETE
        return DataEvent(kind, "R", RTuple(rid, a, b))
    if tag in (TAG_INSERT_S, TAG_DELETE_S):
        __, sid, b, c = _ROW.unpack(payload)
        kind = EventKind.INSERT if tag == TAG_INSERT_S else EventKind.DELETE
        return DataEvent(kind, "S", STuple(sid, b, c))
    if tag == TAG_SUB_BAND:
        __, qid, lo, hi = _SUB_BAND.unpack(payload)
        return QueryEvent(EventKind.INSERT, BandJoinQuery(Interval(lo, hi), qid=qid))
    if tag == TAG_SUB_SELECT:
        __, qid, a_lo, a_hi, c_lo, c_hi = _SUB_SELECT.unpack(payload)
        return QueryEvent(
            EventKind.INSERT,
            SelectJoinQuery(Interval(a_lo, a_hi), Interval(c_lo, c_hi), qid=qid),
        )
    __, qid = _UNSUB.unpack(payload)
    return Unsubscribe(qid)


def decode_stream(data: bytes) -> List[DecodedRecord]:
    """Decode a back-to-back concatenation of records (checkpoint snapshot
    payload).  Raises :class:`CodecError` on any malformed or trailing
    bytes — snapshots are CRC-protected, so damage is never tolerated."""
    records: List[DecodedRecord] = []
    offset = 0
    total = len(data)
    while offset < total:
        tag = data[offset]
        expected = _SIZES.get(tag)
        if expected is None:
            raise CodecError(f"unknown record tag {tag} at offset {offset}")
        if offset + expected > total:
            raise CodecError(
                f"truncated record (tag {tag}) at offset {offset}: "
                f"{total - offset} of {expected} bytes"
            )
        records.append(decode_record(data[offset : offset + expected]))
        offset += expected
    return records
