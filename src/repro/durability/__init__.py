"""repro.durability: event-sourced durability for the sharded runtime.

The subsystem gives :class:`~repro.runtime.pipeline.EventPipeline` and
:class:`~repro.runtime.sharding.ShardedContinuousQuerySystem` a crash
story: every submitted event is logged to a segmented, CRC-framed
write-ahead log *before* it is applied (:mod:`repro.durability.wal`,
:mod:`repro.durability.codec`), periodic per-shard checkpoints bound the
replay tail (:mod:`repro.durability.checkpoint`), and recovery restores
the newest valid checkpoint plus a sequence-deduped WAL replay, tolerating
the torn final record a crash leaves behind
(:mod:`repro.durability.recovery`).  :class:`DurabilityManager` is the
single handle the runtime wires in (:mod:`repro.durability.manager`).

Everything on the recovery path runs on the deterministic sequence-number
plane (lint rule RA001 covers this package); wall clocks appear only as
checkpoint manifest metadata.  Entry points: ``repro serve --wal-dir`` and
``repro recover``.
"""

from repro.durability.codec import (
    CODEC_VERSION,
    CodecError,
    DurabilityError,
    Unsubscribe,
    decode_record,
    decode_stream,
    encode_event,
)
from repro.durability.checkpoint import (
    CheckpointError,
    LoadedCheckpoint,
    load_latest_checkpoint,
    prune_checkpoints,
    write_checkpoint,
)
from repro.durability.manager import DurabilityManager
from repro.durability.recovery import (
    RecoveryError,
    RecoveryReport,
    recover_into,
    recover_system,
)
from repro.durability.wal import (
    WalCorruptionError,
    WalReadResult,
    WalRecord,
    WriteAheadLog,
    read_wal,
)

__all__ = [
    "CODEC_VERSION",
    "CheckpointError",
    "CodecError",
    "DurabilityError",
    "DurabilityManager",
    "LoadedCheckpoint",
    "RecoveryError",
    "RecoveryReport",
    "Unsubscribe",
    "WalCorruptionError",
    "WalReadResult",
    "WalRecord",
    "WriteAheadLog",
    "decode_record",
    "decode_stream",
    "encode_event",
    "load_latest_checkpoint",
    "prune_checkpoints",
    "read_wal",
    "recover_into",
    "recover_system",
    "write_checkpoint",
]
