"""Segmented, CRC-framed write-ahead log.

Layout on disk: a WAL directory holds segment files named
``wal-<first_seq 20 digits>.seg``.  Each segment starts with a fixed
header and then a run of framed records::

    header  <4sHHQ>   magic b"RWAL", wal version, codec version, first_seq
    frame   <IIQ>     payload_len, crc32(seq_le8 + payload), seq
            payload   payload_len bytes (codec record)

Sequence numbers are assigned by the log, monotonically, across segment
boundaries; they are the runtime's only notion of progress (recovery is
sequence-driven, never clock-driven).  Segments rotate when the active
file crosses ``segment_bytes``, which bounds both the unit of retention
pruning and the blast radius of corruption.

Torn-tail contract (what crash-injection exercises): a process can die
mid-``write``, leaving the *final* frame of the *last* segment incomplete.
Readers tolerate exactly that — an incomplete trailing frame (or a
truncated header of the last segment) ends the scan cleanly with
``torn_tail=True``.  Everything else is damage that truncation cannot
produce — a CRC mismatch on a complete frame, a short non-final segment, a
bad magic — and raises :class:`WalCorruptionError` instead of being
silently skipped.

Fsync policy trades durability for throughput:

* ``always`` — flush + fsync after every append (no acknowledged record is
  ever lost, slowest);
* ``batch``  — fsync only at ``sync()`` boundaries; the pipeline syncs
  per micro-batch, so a crash loses at most one batch of acknowledged
  events;
* ``never``  — leave flushing to the OS (tests/benchmarks; a crash may
  lose anything after the last OS writeback).
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.durability.codec import CODEC_VERSION, DurabilityError
from repro.runtime.metrics import MetricsRegistry

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "WalCorruptionError",
    "WalRecord",
    "WalReadResult",
    "WriteAheadLog",
    "segment_path",
    "list_segments",
    "read_wal",
]

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1
SEGMENT_SUFFIX = ".seg"
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Sanity bound on a single record; real payloads are tens of bytes, so a
#: length field beyond this is corruption, not a large record.
MAX_PAYLOAD = 1 << 20

_HEADER = struct.Struct("<4sHHQ")
_FRAME = struct.Struct("<IIQ")
_SEQ = struct.Struct("<Q")


class WalCorruptionError(DurabilityError):
    """The log contains damage that truncation alone cannot explain."""


@dataclass(frozen=True, slots=True)
class WalRecord:
    seq: int
    payload: bytes


@dataclass(slots=True)
class WalReadResult:
    """Every valid record plus what the scan learned about the tail."""

    records: List[WalRecord] = field(default_factory=list)
    torn_tail: bool = False

    @property
    def next_seq(self) -> int:
        return self.records[-1].seq + 1 if self.records else 0


def segment_path(directory: Path, first_seq: int) -> Path:
    return directory / f"wal-{first_seq:020d}{SEGMENT_SUFFIX}"


def list_segments(directory: Path) -> List[Path]:
    """Segment files in first_seq order (the name embeds the sequence)."""
    return sorted(Path(directory).glob(f"wal-*{SEGMENT_SUFFIX}"))


def _crc(seq: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(_SEQ.pack(seq)))


def _read_segment(
    path: Path, is_last: bool, result: WalReadResult, last_seq: Optional[int]
) -> Optional[int]:
    """Append ``path``'s valid records to ``result``; returns the highest
    seq seen (for cross-segment monotonicity checking)."""
    data = path.read_bytes()
    if not data:
        return last_seq  # empty segment: a crash between create and write
    if len(data) < _HEADER.size:
        if is_last:
            result.torn_tail = True
            return last_seq
        raise WalCorruptionError(f"{path.name}: truncated header in non-final segment")
    magic, version, codec_version, first_seq = _HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise WalCorruptionError(f"{path.name}: bad magic {magic!r}")
    if version != WAL_VERSION:
        raise WalCorruptionError(f"{path.name}: unsupported WAL version {version}")
    if codec_version != CODEC_VERSION:
        raise WalCorruptionError(
            f"{path.name}: codec version {codec_version}, expected {CODEC_VERSION}"
        )
    offset = _HEADER.size
    total = len(data)
    while offset < total:
        if offset + _FRAME.size > total:
            if is_last:
                result.torn_tail = True
                return last_seq
            raise WalCorruptionError(
                f"{path.name}: truncated frame header at offset {offset} "
                "in non-final segment"
            )
        payload_len, crc, seq = _FRAME.unpack_from(data, offset)
        if payload_len > MAX_PAYLOAD:
            raise WalCorruptionError(
                f"{path.name}: implausible payload length {payload_len} "
                f"at offset {offset}"
            )
        body_start = offset + _FRAME.size
        if body_start + payload_len > total:
            if is_last:
                result.torn_tail = True
                return last_seq
            raise WalCorruptionError(
                f"{path.name}: truncated payload at offset {offset} "
                "in non-final segment"
            )
        payload = data[body_start : body_start + payload_len]
        if _crc(seq, payload) != crc:
            raise WalCorruptionError(
                f"{path.name}: CRC mismatch for seq {seq} at offset {offset}"
            )
        if last_seq is not None and seq <= last_seq:
            raise WalCorruptionError(
                f"{path.name}: sequence regression {last_seq} -> {seq}"
            )
        if seq < first_seq:
            raise WalCorruptionError(
                f"{path.name}: seq {seq} below segment first_seq {first_seq}"
            )
        result.records.append(WalRecord(seq, payload))
        last_seq = seq
        offset = body_start + payload_len
    return last_seq


def read_wal(directory: Path) -> WalReadResult:
    """Scan every segment in order, enforcing the torn-tail contract.

    Gaps *between* segments are legal (retention pruning removes covered
    segments; post-recovery the log resumes in a fresh segment past a
    checkpoint), but sequence numbers must stay strictly increasing.
    """
    result = WalReadResult()
    segments = list_segments(Path(directory))
    last_seq: Optional[int] = None
    for index, path in enumerate(segments):
        last_seq = _read_segment(
            path, index == len(segments) - 1, result, last_seq
        )
    return result


class WriteAheadLog:
    """Append side of the log.

    Opening always starts a *fresh* segment at ``start_seq`` (recovery
    computes that as its resume point); prior segments are never appended
    to, so a torn tail left by a crash is sealed in place rather than
    overwritten, and the reader's last-segment tolerance still applies to
    the new active segment.
    """

    def __init__(
        self,
        directory: Path,
        *,
        start_seq: int = 0,
        fsync: str = "batch",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if fsync not in ("always", "batch", "never"):
            raise ValueError(f"unknown fsync policy {fsync!r} (always|batch|never)")
        if segment_bytes < _HEADER.size + _FRAME.size:
            raise ValueError("segment_bytes too small to hold a record")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.segment_bytes = segment_bytes
        self._metrics = metrics
        self._fsync_counter = (
            metrics.counter("durability/wal_fsync_total") if metrics else None
        )
        self._next_seq = start_seq
        self._file = None
        self._active: Optional[Path] = None
        self._active_bytes = 0
        self._dirty = False
        self._closed = False
        self._open_segment(start_seq)

    # -- segment lifecycle ---------------------------------------------------

    def _open_segment(self, first_seq: int) -> None:
        path = segment_path(self.directory, first_seq)
        if path.exists():
            # A crash directly after rotation can leave a same-named segment
            # holding only torn bytes past the recovery point; replace it.
            path.unlink()
        self._file = open(path, "wb")
        header = _HEADER.pack(WAL_MAGIC, WAL_VERSION, CODEC_VERSION, first_seq)
        self._file.write(header)
        self._active = path
        self._active_bytes = len(header)
        self._dirty = True

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def active_segment(self) -> Path:
        assert self._active is not None
        return self._active

    # -- appending -----------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Frame and buffer one record; returns its sequence number."""
        if self._closed:
            raise DurabilityError("append to a closed WAL")
        if len(payload) > MAX_PAYLOAD:
            raise DurabilityError(f"payload of {len(payload)} bytes exceeds bound")
        seq = self._next_seq
        self._next_seq += 1
        frame = _FRAME.pack(len(payload), _crc(seq, payload), seq)
        assert self._file is not None
        self._file.write(frame)
        self._file.write(payload)
        self._active_bytes += len(frame) + len(payload)
        self._dirty = True
        if self.fsync_policy == "always":
            self._fsync()
        if self._active_bytes >= self.segment_bytes:
            self._rotate()
        return seq

    def _rotate(self) -> None:
        self._seal_active()
        self._open_segment(self._next_seq)

    def _seal_active(self) -> None:
        assert self._file is not None
        self._file.flush()
        if self.fsync_policy != "never" and self._dirty:
            os.fsync(self._file.fileno())
            self._count_fsync()
        self._file.close()
        self._dirty = False

    def _fsync(self) -> None:
        assert self._file is not None
        self._file.flush()
        os.fsync(self._file.fileno())
        self._dirty = False
        self._count_fsync()

    def _count_fsync(self) -> None:
        if self._fsync_counter is not None:
            self._fsync_counter.inc()

    def flush(self) -> None:
        """Push buffered bytes to the OS without forcing them to media
        (what a crashed process would have left behind at best)."""
        if self._file is not None and not self._closed:
            self._file.flush()

    def sync(self) -> None:
        """Durability barrier: everything appended so far reaches media.
        Under ``batch`` this is the per-micro-batch call; ``never`` keeps
        even explicit syncs as plain flushes."""
        if self._closed:
            return
        if self.fsync_policy == "never":
            self.flush()
        elif self._dirty:
            self._fsync()

    # -- retention -----------------------------------------------------------

    def prune(self, upto_seq: int) -> List[Path]:
        """Delete closed segments whose every record is below ``upto_seq``
        (i.e. fully covered by a checkpoint).  A segment is covered iff the
        *next* segment starts at or below ``upto_seq``; the active segment
        is never deleted."""
        segments = list_segments(self.directory)
        removed: List[Path] = []
        for path, successor in zip(segments, segments[1:]):
            if path == self._active:
                break
            successor_first = int(successor.name[4:-len(SEGMENT_SUFFIX)])
            if successor_first <= upto_seq:
                path.unlink()
                removed.append(path)
            else:
                break
        return removed

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._seal_active()
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
