"""`DurabilityManager`: the runtime's one handle on the durability stack.

Wiring contract (both :class:`~repro.runtime.pipeline.EventPipeline` and
:class:`~repro.runtime.sharding.ShardedContinuousQuerySystem` accept a
manager at construction):

* **log-before-apply** — the host calls :meth:`log_event` for every
  submitted event *before* any shard sees it, so the WAL is always a
  superset of applied state and replaying it can only move state forward;
* **sync at batch boundaries** — the host calls :meth:`sync` before
  applying a drained micro-batch, which is what the ``batch`` fsync
  policy means: every event a shard has applied is already durable;
* **checkpoint trigger** — after applying events the host checks
  :attr:`checkpoint_due` and calls :meth:`checkpoint`, which drains the
  host, snapshots per-shard state atomically, and prunes covered WAL
  segments.  The trigger is *count-based* (events since last checkpoint),
  not time-based, keeping the whole subsystem on the deterministic
  sequence plane.

Metrics (registered under ``durability/``): ``wal_append_seconds``
(histogram), ``wal_fsync_total`` (counter, incremented by the WAL),
``checkpoint_duration_seconds`` (histogram), ``checkpoints_total`` and
``recovered_events_total`` (counters).

A manager must be :meth:`attach`\\ ed before logging: attach recovers any
existing durable state into the host (with logging suppressed, so replay
is not re-logged) and opens the WAL for append at the recovered sequence
number.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.durability.checkpoint import prune_checkpoints, write_checkpoint
from repro.durability.codec import DurabilityError, encode_event
from repro.durability.recovery import RecoveryReport, recover_into
from repro.durability.wal import DEFAULT_SEGMENT_BYTES, WriteAheadLog
from repro.engine.events import DataEvent, EventKind, QueryEvent
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.runtime.metrics import MetricsRegistry

__all__ = ["DurabilityManager"]


class DurabilityManager:
    """Owns one WAL directory and its checkpoints on behalf of a host."""

    def __init__(
        self,
        directory: Path,
        *,
        fsync: str = "batch",
        checkpoint_every: Optional[int] = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.checkpoint_every = checkpoint_every
        self.segment_bytes = segment_bytes
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self._append_seconds = self.metrics.histogram("durability/wal_append_seconds")
        self._checkpoint_seconds = self.metrics.histogram(
            "durability/checkpoint_duration_seconds"
        )
        self._wal: Optional[WriteAheadLog] = None
        self._replaying = False
        self._events_since_checkpoint = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def attach(self, target: Any) -> RecoveryReport:
        """Recover existing durable state into ``target`` (which must be
        fresh), then open the WAL for append at the recovered sequence."""
        if self._wal is not None:
            raise DurabilityError("manager is already attached")
        self._replaying = True
        try:
            report = recover_into(target, self.directory)
        finally:
            self._replaying = False
        self.metrics.counter("durability/recovered_events_total").inc(
            report.recovered_events
        )
        self._wal = WriteAheadLog(
            self.directory,
            start_seq=report.next_seq,
            fsync=self.fsync_policy,
            segment_bytes=self.segment_bytes,
            metrics=self.metrics,
        )
        return report

    @property
    def attached(self) -> bool:
        return self._wal is not None

    @property
    def replaying(self) -> bool:
        return self._replaying

    @property
    def next_seq(self) -> int:
        if self._wal is None:
            raise DurabilityError("manager is not attached")
        return self._wal.next_seq

    @property
    def wal(self) -> WriteAheadLog:
        if self._wal is None:
            raise DurabilityError("manager is not attached")
        return self._wal

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- logging -------------------------------------------------------------

    def log_event(self, event: object) -> Optional[int]:
        """Append one event to the WAL (log-before-apply); returns its
        sequence number, or None while recovery replay is in flight (the
        records being replayed are already durable)."""
        if self._replaying:
            return None
        if self._wal is None:
            raise DurabilityError("log_event before attach()")
        payload = encode_event(event)
        # Timing instrumentation only; nothing downstream reads this clock.
        with self.tracer.span("wal.append"):
            start = time.perf_counter()
            seq = self._wal.append(payload)
            self._append_seconds.observe(time.perf_counter() - start)
        self._events_since_checkpoint += 1
        return seq

    def sync(self) -> None:
        """Durability barrier before a batch is applied (fsync under the
        ``batch`` policy; no-op under ``never``)."""
        if self._wal is not None:
            with self.tracer.span("wal.sync"):
                self._wal.sync()

    # -- checkpointing -------------------------------------------------------

    @property
    def checkpoint_due(self) -> bool:
        return (
            self.checkpoint_every is not None
            and self._events_since_checkpoint >= self.checkpoint_every
        )

    def checkpoint(self, source: Any) -> Path:
        """Snapshot ``source``'s state, publish it atomically, and prune
        WAL segments and checkpoints it supersedes.

        ``source`` is the attached host: it is drained first (pending
        micro-batches must reach the shards before the snapshot claims to
        cover their sequence numbers), then its shard state is partitioned
        into per-shard payloads along the router's select-plane split.
        """
        if self._wal is None:
            raise DurabilityError("checkpoint before attach()")
        with self.tracer.span("checkpoint"):
            start = time.perf_counter()
            drain = getattr(source, "drain", None)
            if drain is not None:
                drain()
            self._wal.sync()
            next_seq = self._wal.next_seq
            path = write_checkpoint(
                self.directory,
                next_seq=next_seq,
                shard_payloads=self._shard_payloads(source),
                config=self._config_of(source),
            )
            prune_checkpoints(self.directory, keep=path)
            self._wal.prune(next_seq)
            self._events_since_checkpoint = 0
            self.metrics.counter("durability/checkpoints_total").inc()
            elapsed = time.perf_counter() - start
            self._checkpoint_seconds.observe(elapsed)
            return path

    def maybe_checkpoint(self, source: Any) -> Optional[Path]:
        if self.checkpoint_due:
            return self.checkpoint(source)
        return None

    def _shard_payloads(self, source: Any) -> List[bytes]:
        """Partition live state into per-shard snapshot payloads.

        Shard 0's band plane holds full replicas of both tables, so it is
        the authoritative row set; the payload partition follows the
        router's value split (R by ``B``, S by ``C``, queries by first
        placement shard) purely to bound per-file size — restore unions
        all files, so the split never has to match a future shard count.
        """
        router = source.router
        shards = source.shards
        chunks: List[List[bytes]] = [[] for _ in range(router.num_shards)]
        authoritative = shards[0]
        for row in sorted(authoritative.table_r, key=lambda r: r.rid):
            record = encode_event(DataEvent(EventKind.INSERT, "R", row))
            chunks[router.shard_for_value(row.b)].append(record)
        for row in sorted(authoritative.table_s_band, key=lambda s: s.sid):
            record = encode_event(DataEvent(EventKind.INSERT, "S", row))
            chunks[router.shard_for_value(row.c)].append(record)
        for qid in sorted(source._queries):
            query = source._queries[qid]
            record = encode_event(QueryEvent(EventKind.INSERT, query))
            chunks[router.shards_for_query(query)[0]].append(record)
        return [b"".join(chunk) for chunk in chunks]

    @staticmethod
    def _config_of(source: Any) -> Dict[str, Any]:
        router = source.router
        return {
            "num_shards": router.num_shards,
            "alpha": getattr(source, "alpha", None),
            "epsilon": getattr(source, "epsilon", 1.0),
            "domain_lo": router.domain_lo,
            "domain_hi": router.domain_hi,
        }
