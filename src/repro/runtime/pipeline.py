"""The event-processing pipeline: bounded ingress, micro-batches, workers.

``EventPipeline`` stacks the runtime layers on top of the sharded system:

1. **ingress** — submitted :class:`~repro.engine.events.DataEvent`\\ s queue
   in a bounded :class:`~repro.runtime.batching.MicroBatcher`.  When the
   queue is full the configured :class:`BackpressurePolicy` decides:
   ``block`` flushes a batch immediately (the caller absorbs the latency),
   ``drop-oldest`` evicts the oldest pending event, ``reject`` refuses the
   new one (``submit`` returns False).  Every outcome is counted.
2. **batching** — a batch flushes when ``batch_size`` events are pending or
   the oldest pending event exceeds ``max_delay`` seconds.  Pending
   insert+delete pairs coalesce away before dispatch (batch-atomic
   visibility; see ``batching.py``).
3. **execution** — each batch fans out to one task per affected shard.
   ``mode="inline"`` runs shards sequentially on the caller's thread
   (deterministic, zero overhead — the right choice for replay/benchmarks
   on CPython), ``mode="thread"`` uses a worker-per-shard
   ``ThreadPoolExecutor``, ``mode="process"`` pins each shard to its own
   single-worker ``ProcessPoolExecutor`` so shard state lives in a
   dedicated process (opt-in: real parallelism, but events and queries are
   pickled across the boundary).
4. **merge** — per-shard deltas are merged by sequence number into one
   per-event result dict, deterministically (sorted rows), then dispatched
   to subscription callbacks in arrival order.

:class:`~repro.engine.events.QueryEvent`\\ s act as barriers: pending data
events flush before a subscription change applies, preserving the exact
stream order an unsharded system would see.
"""

from __future__ import annotations

import enum
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Protocol, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (durability → runtime)
    from repro.durability.manager import DurabilityManager

from repro.engine.events import DataEvent, EventKind, QueryEvent
from repro.runtime.transport import frames as _frames
from repro.runtime.transport.shm import RingTimeoutError, ShmRing, TransportError
from repro.runtime.transport.worker import shard_worker_main
from repro.obs.hotspot_telemetry import HeadroomSample
from repro.obs.remote import merge_telemetry
from repro.obs.tracing import NULL_TRACER, RingTracer, Tracer
from repro.runtime.batching import BatchEntry, MicroBatcher, _row_key
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.sharding import (
    DOMAIN_HI,
    DOMAIN_LO,
    Delta,
    ResultCallback,
    Shard,
    ShardEntry,
    ShardRouter,
    scaled_alpha,
    merge_deltas,
)

# Per-shard batch outcome: elapsed seconds plus (seq, deltas) pairs.
ShardBatchResults = Dict[int, Tuple[float, List[Tuple[int, Delta]]]]


class BackpressurePolicy(str, enum.Enum):
    """What ``submit`` does when the ingress queue is at capacity."""

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    REJECT = "reject"


# -- execution backends ------------------------------------------------------


class _Backend(Protocol):
    """What the pipeline needs from an execution backend.

    ``ingest_ns`` parallels each shard's entry list with submitter-side
    monotonic ingest timestamps; backends that cannot use them (inline,
    thread, pickle-process) simply ignore the argument — the pipeline
    measures end-to-end latency itself on the emission side.
    """

    def subscribe(self, indices: Sequence[int], query: Any) -> None: ...

    def unsubscribe(self, indices: Sequence[int], query: Any) -> None: ...

    def apply_shard_batches(
        self,
        shard_entries: Dict[int, List[ShardEntry]],
        ingest_ns: Optional[Dict[int, List[int]]] = None,
    ) -> ShardBatchResults: ...

    def close(self) -> None: ...


class _InlineBackend:
    """Shards applied sequentially on the calling thread."""

    def __init__(self, shards: List[Shard], tracer: Tracer = NULL_TRACER):
        self.shards = shards
        self.tracer = tracer

    def subscribe(self, indices: Sequence[int], query: Any) -> None:
        for index in indices:
            self.shards[index].subscribe(query)

    def unsubscribe(self, indices: Sequence[int], query: Any) -> None:
        for index in indices:
            self.shards[index].unsubscribe(query)

    def _timed_apply(
        self, index: int, entries: List[ShardEntry]
    ) -> Tuple[float, List[Tuple[int, Delta]]]:
        with self.tracer.span("shard.apply", shard=index, events=len(entries)):
            start = time.perf_counter()
            results = self.shards[index].apply_batch(entries)
            return time.perf_counter() - start, results

    def apply_shard_batches(
        self,
        shard_entries: Dict[int, List[ShardEntry]],
        ingest_ns: Optional[Dict[int, List[int]]] = None,
    ) -> ShardBatchResults:
        return {
            index: self._timed_apply(index, entries)
            for index, entries in shard_entries.items()
        }

    def close(self) -> None:
        pass


class _ThreadBackend(_InlineBackend):
    """Worker-per-shard thread pool (default).

    On CPython, threads interleave rather than truly parallelize the pure-
    Python probe work, but shard batches overlap any releasing operations
    and the structure matches what a free-threaded build exploits fully.
    """

    def __init__(self, shards: List[Shard], tracer: Tracer = NULL_TRACER):
        super().__init__(shards, tracer)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(shards)), thread_name_prefix="repro-shard"
        )

    def apply_shard_batches(
        self,
        shard_entries: Dict[int, List[ShardEntry]],
        ingest_ns: Optional[Dict[int, List[int]]] = None,
    ) -> ShardBatchResults:
        futures = {
            index: self._pool.submit(self._timed_apply, index, entries)
            for index, entries in shard_entries.items()
        }
        return {index: future.result() for index, future in futures.items()}

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# Process-mode worker state: one Shard per worker process, pinned by using
# single-worker pools (ProcessPoolExecutor does not route tasks by key).
# Queries unpickle to fresh objects on every call and the engine tracks
# them by identity, so the worker keeps its own qid -> object registry and
# unsubscribes by qid.
_WORKER_SHARD: Optional[Shard] = None
_WORKER_QUERIES: Dict[int, Any] = {}


def _process_init(index: int, alpha: Optional[float], epsilon: float) -> None:
    global _WORKER_SHARD
    _WORKER_SHARD = Shard(index, alpha=alpha, epsilon=epsilon)
    _WORKER_QUERIES.clear()


def _process_subscribe(query: Any) -> bool:
    assert _WORKER_SHARD is not None, "worker process not initialized"
    _WORKER_QUERIES[query.qid] = query
    _WORKER_SHARD.subscribe(query)
    return True


def _process_unsubscribe(qid: int) -> bool:
    assert _WORKER_SHARD is not None, "worker process not initialized"
    _WORKER_SHARD.unsubscribe(_WORKER_QUERIES.pop(qid))
    return True


def _process_apply(entries: List[ShardEntry]) -> Tuple[float, List[Tuple[int, Delta]]]:
    assert _WORKER_SHARD is not None, "worker process not initialized"
    start = time.perf_counter()
    out: List[Tuple[int, Delta]] = []
    for seq, deltas in _WORKER_SHARD.apply_batch(entries):
        out.append((seq, {query.qid: rows for query, rows in deltas.items()}))
    return time.perf_counter() - start, out


class _ProcessBackend:
    """Shard state pinned to dedicated worker processes.

    Queries and events cross the boundary by pickling; returned deltas are
    keyed by qid and resolved back to the caller's query objects.
    """

    def __init__(
        self,
        num_shards: int,
        alpha: Optional[float],
        epsilon: float,
        resolve_query: Callable[[int], Any],
    ):
        self._resolve = resolve_query
        self._pools = [
            ProcessPoolExecutor(
                max_workers=1, initializer=_process_init, initargs=(i, alpha, epsilon)
            )
            for i in range(num_shards)
        ]

    def subscribe(self, indices: Sequence[int], query: Any) -> None:
        for index in indices:
            self._pools[index].submit(_process_subscribe, query).result()

    def unsubscribe(self, indices: Sequence[int], query: Any) -> None:
        for index in indices:
            self._pools[index].submit(_process_unsubscribe, query.qid).result()

    def apply_shard_batches(
        self,
        shard_entries: Dict[int, List[ShardEntry]],
        ingest_ns: Optional[Dict[int, List[int]]] = None,
    ) -> ShardBatchResults:
        futures = {
            index: self._pools[index].submit(_process_apply, entries)
            for index, entries in shard_entries.items()
        }
        out: ShardBatchResults = {}
        for index, future in futures.items():
            elapsed, results = future.result()
            out[index] = (
                elapsed,
                [
                    (seq, {self._resolve(qid): rows for qid, rows in deltas.items()})
                    for seq, deltas in results
                ],
            )
        return out

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)


class _ProcessShmBackend:
    """Shard state pinned to worker processes behind shared-memory rings.

    The pickle-free process data plane (``docs/RUNTIME.md``): one
    persistent worker per shard, each owning a request ring and a response
    ring (:mod:`repro.runtime.transport`).  Batches cross the boundary as
    columnar frames, results come back as row tables plus
    (seq, qid, sign, row-ref) tuples resolved to the caller's query
    objects; subscribe/unsubscribe travel as control frames with ACKs.

    The protocol is one frame in flight per shard, so dispatch sends every
    shard's batch first and only then collects responses — shard workers
    overlap.  ``close()`` is idempotent and unlinks every segment even
    after a worker crash (shutdown frame → join with timeout → kill →
    unlink).

    Telemetry (PR 10): every ``telemetry_every``-th batch roundtrip sets
    the BATCH telemetry flag, so each worker follows its RESULT with one
    TELEMETRY frame — spans since the last ship plus metric deltas —
    which merges into the parent registry (``shard<N>/`` prefixes for
    unscoped names) and, when the parent tracer records, into one unified
    trace with per-process lanes.  ``drain_telemetry()`` forces a ship
    via empty flagged batches (used by the reporting interval and on
    close, so the final stats include the workers' last increments).
    """

    def __init__(
        self,
        num_shards: int,
        alpha: Optional[float],
        epsilon: float,
        resolve_query: Callable[[int], Any],
        metrics: MetricsRegistry,
        tracer: Tracer = NULL_TRACER,
        ring_capacity: int = 4 << 20,
        timeout: float = 60.0,
        telemetry_every: int = 16,
    ):
        self._resolve = resolve_query
        self.metrics = metrics
        self.tracer = tracer
        self.telemetry_every = max(1, telemetry_every)
        self._round = 0
        self._timeout = timeout
        self._closed = False
        if isinstance(tracer, RingTracer):
            tracer.set_process_name(tracer.pid, "pipeline (parent)")
        self._requests: List[ShmRing] = []
        self._responses: List[ShmRing] = []
        self._workers: List[multiprocessing.process.BaseProcess] = []
        ctx = multiprocessing.get_context()
        try:
            for index in range(num_shards):
                request_bell = ctx.Semaphore(0)
                response_bell = ctx.Semaphore(0)
                self._requests.append(
                    ShmRing.create(ring_capacity, doorbell=request_bell)
                )
                self._responses.append(
                    ShmRing.create(ring_capacity, doorbell=response_bell)
                )
                worker = ctx.Process(
                    target=shard_worker_main,
                    args=(
                        index,
                        alpha,
                        epsilon,
                        self._requests[index].name,
                        self._responses[index].name,
                        request_bell,
                        response_bell,
                    ),
                    name=f"repro-shm-shard-{index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        except BaseException:
            self.close()
            raise

    # -- framed request/response ---------------------------------------------

    def _await_raw(self, index: int) -> bytes:
        """Block for one response frame, failing fast if the worker died."""
        ring = self._responses[index]
        deadline = time.monotonic() + self._timeout
        while True:
            payload = ring.recv(timeout=0.05)
            if payload is not None:
                return payload
            if not self._workers[index].is_alive():
                raise TransportError(
                    f"shard {index} worker exited "
                    f"(exitcode {self._workers[index].exitcode}) mid-request"
                )
            if time.monotonic() >= deadline:
                raise RingTimeoutError(
                    f"no response from shard {index} within {self._timeout:.1f}s"
                )

    def _expect_ack(self, index: int) -> None:
        frame_type, body = _frames.decode_frame(self._await_raw(index))
        if frame_type == _frames.FRAME_ERROR:
            raise TransportError(str(body))
        if frame_type != _frames.FRAME_ACK:
            raise TransportError(
                f"shard {index}: expected ACK, got frame type {frame_type}"
            )

    def _send(self, index: int, payload: bytes) -> None:
        self._requests[index].send(payload, timeout=self._timeout)
        self.metrics.counter("transport/bytes_out").inc(len(payload))
        self.metrics.gauge(f"transport/ring/{index}/request_bytes").set(
            self._requests[index].occupancy()
        )

    # -- backend protocol ----------------------------------------------------

    def subscribe(self, indices: Sequence[int], query: Any) -> None:
        payload = _frames.encode_control_frame(QueryEvent(EventKind.INSERT, query))
        for index in indices:
            self._send(index, payload)
            self._expect_ack(index)

    def unsubscribe(self, indices: Sequence[int], query: Any) -> None:
        payload = _frames.encode_control_frame(QueryEvent(EventKind.DELETE, query))
        for index in indices:
            self._send(index, payload)
            self._expect_ack(index)

    def _merge_telemetry_frame(self, index: int) -> None:
        """Read one TELEMETRY frame from a shard and fold it in."""
        frame_type, body = _frames.decode_frame(self._await_raw(index))
        if frame_type != _frames.FRAME_TELEMETRY:
            raise TransportError(
                f"shard {index}: expected TELEMETRY, got frame type {frame_type}"
            )
        merge_telemetry(
            self.metrics,
            self.tracer if isinstance(self.tracer, RingTracer) else None,
            body,
        )

    def apply_shard_batches(
        self,
        shard_entries: Dict[int, List[ShardEntry]],
        ingest_ns: Optional[Dict[int, List[int]]] = None,
    ) -> ShardBatchResults:
        out: ShardBatchResults = {}
        self._round += 1
        want_telemetry = self._round % self.telemetry_every == 0
        trace_id = getattr(self.tracer, "trace_id", 0)
        with self.tracer.span(
            "transport.roundtrip", shards=len(shard_entries)
        ) as roundtrip:
            parent_span_id = getattr(roundtrip, "span_id", 0)
            start = time.perf_counter()
            payloads = {
                index: _frames.encode_batch_frame(
                    entries,
                    ingest_ns=ingest_ns.get(index) if ingest_ns else None,
                    trace_id=trace_id,
                    parent_span_id=parent_span_id,
                    want_telemetry=want_telemetry,
                )
                for index, entries in shard_entries.items()
            }
            self.metrics.histogram("transport/encode_us").observe(
                (time.perf_counter() - start) * 1e6
            )
            # Dispatch everything before collecting anything: one frame in
            # flight per shard, all shards in flight at once.
            for index, payload in payloads.items():
                self._send(index, payload)
            bytes_in = self.metrics.counter("transport/bytes_in")
            decode_us = self.metrics.histogram("transport/decode_us")
            for index in payloads:
                raw = self._await_raw(index)
                bytes_in.inc(len(raw))
                self.metrics.gauge(f"transport/ring/{index}/response_bytes").set(
                    self._responses[index].occupancy()
                )
                start = time.perf_counter()
                frame_type, body = _frames.decode_frame(raw)
                decode_us.observe((time.perf_counter() - start) * 1e6)
                if frame_type == _frames.FRAME_ERROR:
                    # The worker sends its telemetry follow-up even after a
                    # failed batch (frame alignment) — consume it so the
                    # ring stays consistent for whoever catches this.
                    if want_telemetry:
                        try:
                            self._merge_telemetry_frame(index)
                        except TransportError:
                            pass
                    raise TransportError(str(body))
                if frame_type != _frames.FRAME_RESULT:
                    raise TransportError(
                        f"shard {index}: expected RESULT, got frame type {frame_type}"
                    )
                elapsed, results = body
                out[index] = (
                    elapsed,
                    [
                        (seq, {self._resolve(qid): rows for qid, rows in deltas.items()})
                        for seq, deltas in results
                    ],
                )
                if want_telemetry:
                    self._merge_telemetry_frame(index)
        return out

    def drain_telemetry(self) -> None:
        """Pull every live worker's pending telemetry now.

        Sends an empty telemetry-flagged BATCH per shard (harmless: zero
        entries apply nothing) and folds the responses in.  Used by the
        reporting interval — worker gauges refresh on demand rather than
        on the batch cadence — and by ``close()`` for the final merge.
        """
        if self._closed:
            return
        payload = _frames.encode_batch_frame(
            [],
            trace_id=getattr(self.tracer, "trace_id", 0),
            want_telemetry=True,
        )
        live = [
            index
            for index, worker in enumerate(self._workers)
            if worker.is_alive()
        ]
        for index in live:
            self._send(index, payload)
        for index in live:
            frame_type, body = _frames.decode_frame(self._await_raw(index))
            if frame_type == _frames.FRAME_ERROR:
                raise TransportError(str(body))
            if frame_type != _frames.FRAME_RESULT:
                raise TransportError(
                    f"shard {index}: expected RESULT, got frame type {frame_type}"
                )
            self._merge_telemetry_frame(index)

    def close(self) -> None:
        """Stop workers and unlink every segment.  Idempotent; tolerates
        workers that already crashed or never started."""
        if self._closed:
            return
        try:
            # Final telemetry merge so closing stats include the workers'
            # last increments; best-effort — a crashed worker already lost
            # its registry.
            self.drain_telemetry()
        except TransportError:
            pass
        self._closed = True
        shutdown = _frames.encode_shutdown_frame()
        for index, worker in enumerate(self._workers):
            if worker.is_alive():
                try:
                    self._requests[index].send(shutdown, timeout=1.0)
                except TransportError:
                    pass
        for worker in self._workers:
            worker.join(timeout=5.0)
        for worker in self._workers:
            if worker.is_alive():  # pragma: no cover — crash-path hammer
                worker.kill()
                worker.join(timeout=5.0)
        for ring in (*self._requests, *self._responses):
            ring.close()
            ring.unlink()


# -- the pipeline ------------------------------------------------------------


class EventPipeline:
    """Sharded, micro-batched event processing with backpressure.

    Parameters mirror the knobs documented in ``docs/RUNTIME.md``.  Results
    are delivered through per-subscription callbacks (``subscribe``) and/or
    returned by ``flush``/``run`` as ``(seq, event, deltas)`` triples in
    arrival order.
    """

    def __init__(
        self,
        *,
        num_shards: int = 4,
        alpha: Optional[float] = 0.01,
        epsilon: float = 1.0,
        domain_lo: float = DOMAIN_LO,
        domain_hi: float = DOMAIN_HI,
        batch_size: int = 32,
        max_delay: Optional[float] = None,
        queue_capacity: int = 1024,
        backpressure: BackpressurePolicy | str = BackpressurePolicy.BLOCK,
        mode: str = "thread",
        coalesce: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        durability: Optional["DurabilityManager"] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if durability is not None:
            # Log-before-apply assumes every logged event is eventually
            # applied; drop-oldest/reject would let the WAL diverge from
            # shard state.  Process mode keeps shard state out of reach of
            # the checkpointer.
            if BackpressurePolicy(backpressure) is not BackpressurePolicy.BLOCK:
                raise ValueError("durability requires the 'block' backpressure policy")
            if mode in ("process", "process-shm"):
                raise ValueError("durability is not supported in process mode")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.router = ShardRouter(num_shards, domain_lo=domain_lo, domain_hi=domain_hi)
        self.batch_size = batch_size
        self.max_delay = max_delay
        self.queue_capacity = queue_capacity
        self.backpressure = BackpressurePolicy(backpressure)
        self.coalesce = coalesce
        self.mode = mode
        self.alpha = alpha
        self.epsilon = epsilon
        self.durability = durability
        self._batcher = MicroBatcher(max_batch=batch_size)
        self._queries: Dict[int, Any] = {}
        self._placements: Dict[int, List[int]] = {}
        self._callbacks: Dict[int, ResultCallback] = {}
        self._seq = 0
        self._oldest_pending_at: Optional[float] = None
        self._sink: Optional[List[Tuple[int, DataEvent, Delta]]] = None
        self.dropped_seqs: List[int] = []
        self.rejected_seqs: List[int] = []
        # Rows whose INSERT was refused (evicted by drop-oldest or rejected):
        # the row never reached any shard, so a later DELETE of it must be
        # refused too — deleting state that was never installed would corrupt
        # the shards.  A successful re-submit of the insert clears the mark.
        # Assumes surrogate ids are not reused, as with the repo's generators.
        self._lost_rows: Set[Tuple[str, int]] = set()
        per_shard_alpha = scaled_alpha(alpha, num_shards)
        self._backend: _Backend
        if mode == "inline":
            self._backend = _InlineBackend(
                [Shard(i, alpha=per_shard_alpha, epsilon=epsilon, metrics=self.metrics,
                       tracer=tracer)
                 for i in range(num_shards)],
                tracer,
            )
        elif mode == "thread":
            self._backend = _ThreadBackend(
                [Shard(i, alpha=per_shard_alpha, epsilon=epsilon, metrics=self.metrics,
                       tracer=tracer)
                 for i in range(num_shards)],
                tracer,
            )
        elif mode == "process":
            # Worker shards live in other processes, so per-shard spans and
            # hotspot telemetry stay off in process mode; only the caller-side
            # "batch" span and pipeline counters are recorded.
            self._backend = _ProcessBackend(
                num_shards, per_shard_alpha, epsilon, self._queries.__getitem__
            )
        elif mode == "process-shm":
            # Same process-isolation model, pickle-free data plane: batches
            # and deltas cross worker boundaries as columnar shared-memory
            # frames (repro.runtime.transport).  Caller-side transport
            # metrics and the transport.roundtrip span are recorded here;
            # per-shard spans/telemetry stay off as in process mode.
            self._backend = _ProcessShmBackend(
                num_shards,
                per_shard_alpha,
                epsilon,
                self._queries.__getitem__,
                self.metrics,
                tracer,
            )
        else:
            raise ValueError(
                f"unknown mode {mode!r} (inline|thread|process|process-shm)"
            )

    # -- subscriptions (barrier semantics) -----------------------------------

    def subscribe(self, query: Any, on_results: Optional[ResultCallback] = None) -> Any:
        """Register a continuous query.  Pending data events flush first so
        the subscription observes exactly the prefix of the stream that
        preceded it."""
        self.drain()
        if query.qid in self._placements:
            raise ValueError(f"duplicate query id {query.qid}")
        indices = self.router.shards_for_query(query)
        self._backend.subscribe(indices, query)
        self._placements[query.qid] = indices
        self._queries[query.qid] = query
        self.router.note_query(query, indices, +1)
        if on_results is not None:
            self._callbacks[query.qid] = on_results
        return query

    def unsubscribe(self, query: Any) -> None:
        self.drain()
        # Resolve by qid: after recovery the registered instance is a decoded
        # copy, and the engine indexes subscriptions by object identity.
        query = self._queries.get(query.qid, query)
        indices = self._placements.pop(query.qid)
        self._backend.unsubscribe(indices, query)
        self._queries.pop(query.qid)
        self.router.note_query(query, indices, -1)
        self._callbacks.pop(query.qid, None)

    @property
    def subscription_count(self) -> int:
        return len(self._placements)

    def query_by_id(self, qid: int) -> Any:
        return self._queries[qid]

    # -- ingress -------------------------------------------------------------

    def submit(self, event: object) -> bool:
        """Enqueue one event.  Returns False iff the event was rejected by
        the ``reject`` backpressure policy."""
        if self.durability is not None and not self.durability.replaying:
            # Log-before-apply: the WAL sees the event before any shard.
            self.durability.log_event(event)
        if isinstance(event, QueryEvent):
            self.metrics.counter("pipeline/query_events").inc()
            if event.kind is EventKind.INSERT:
                self.subscribe(event.query)
            else:
                self.unsubscribe(event.query)
            self._maybe_checkpoint()
            return True
        if not isinstance(event, DataEvent):
            raise TypeError(f"unsupported event type: {type(event).__name__}")
        seq = self._seq
        self._seq += 1
        self.metrics.counter("pipeline/events_submitted").inc()
        if self._lost_rows and event.kind is EventKind.DELETE:
            key = _row_key(event)
            if key in self._lost_rows:
                self._lost_rows.discard(key)
                if self.backpressure is BackpressurePolicy.REJECT:
                    self.metrics.counter("pipeline/events_rejected").inc()
                    self.rejected_seqs.append(seq)
                    return False
                self.metrics.counter("pipeline/events_dropped").inc()
                self.dropped_seqs.append(seq)
                return True
        if len(self._batcher) >= self.queue_capacity:
            if self.backpressure is BackpressurePolicy.REJECT:
                if event.kind is EventKind.INSERT:
                    self._lost_rows.add(_row_key(event))
                self.metrics.counter("pipeline/events_rejected").inc()
                self.rejected_seqs.append(seq)
                return False
            if self.backpressure is BackpressurePolicy.DROP_OLDEST:
                dropped = self._batcher.drop_oldest()
                if dropped is not None:
                    if dropped.event.kind is EventKind.INSERT:
                        self._lost_rows.add(_row_key(dropped.event))
                    self.metrics.counter("pipeline/events_dropped").inc()
                    self.dropped_seqs.append(dropped.seq)
            else:  # BLOCK: make room by processing a batch now.
                self.metrics.counter("pipeline/backpressure_blocks").inc()
                self.flush()
        if self._lost_rows and event.kind is EventKind.INSERT:
            self._lost_rows.discard(_row_key(event))
        if not len(self._batcher):
            self._oldest_pending_at = time.monotonic()
        self._batcher.add(
            BatchEntry(seq, event, ingest_ns=time.perf_counter_ns())
        )
        self.metrics.histogram("pipeline/queue_depth").observe(len(self._batcher))
        if self._batcher.is_due or self._deadline_exceeded():
            self.flush()
        self._maybe_checkpoint()
        return True

    def _maybe_checkpoint(self) -> None:
        if self.durability is not None and self.durability.checkpoint_due:
            self.durability.checkpoint(self)

    def _deadline_exceeded(self) -> bool:
        return (
            self.max_delay is not None
            and self._oldest_pending_at is not None
            and time.monotonic() - self._oldest_pending_at >= self.max_delay
        )

    @property
    def pending(self) -> int:
        return len(self._batcher)

    @property
    def cancelled_pairs(self) -> List[Tuple[int, int]]:
        """All ``(insert_seq, delete_seq)`` pairs coalesced away so far."""
        return self._batcher.stats.cancelled

    # -- batch execution -----------------------------------------------------

    def flush(self) -> List[Tuple[int, DataEvent, Delta]]:
        """Process one pending batch; returns ``(seq, event, deltas)`` in
        arrival order (empty if nothing was pending)."""
        batch = self._batcher.drain(coalesce=self.coalesce)
        if not batch:
            return []
        with self.tracer.span("batch", events=len(batch)):
            return self._flush_batch(batch)

    def _flush_batch(
        self, batch: List[BatchEntry]
    ) -> List[Tuple[int, DataEvent, Delta]]:
        if self.durability is not None:
            # Batch-boundary durability barrier: every event a shard is
            # about to apply is already on media (fsync policy permitting).
            self.durability.sync()
        self._oldest_pending_at = time.monotonic() if len(self._batcher) else None
        shard_entries: Dict[int, List[ShardEntry]] = {}
        shard_ingest: Dict[int, List[int]] = {}
        shards_by_seq: Dict[int, List[int]] = {}
        for entry in batch:
            route = self.router.route_event(entry.event)
            self.router.note_event(route)
            shards_by_seq[entry.seq] = list(route.shards)
            for index in route.shards:
                select_probe, select_state = route.flags(index, entry.event.relation)
                shard_entries.setdefault(index, []).append(
                    (entry.seq, entry.event, select_probe, select_state)
                )
                shard_ingest.setdefault(index, []).append(entry.ingest_ns)
        by_seq: Dict[int, List[Delta]] = {entry.seq: [] for entry in batch}
        for index, (elapsed, results) in sorted(
            self._backend.apply_shard_batches(shard_entries, shard_ingest).items()
        ):
            self.metrics.histogram(f"shard/{index}/batch_us").observe(elapsed * 1e6)
            self.metrics.counter(f"shard/{index}/events").inc(
                len(shard_entries[index])
            )
            for seq, deltas in results:
                by_seq[seq].append(deltas)
        out: List[Tuple[int, DataEvent, Delta]] = []
        results_counter = self.metrics.counter("pipeline/results_produced")
        e2e_global = self.metrics.histogram("pipeline/e2e_us")
        e2e_by_shard: Dict[int, Any] = {}
        for entry in batch:
            merged = merge_deltas(by_seq[entry.seq])
            for query, matches in merged.items():
                results_counter.inc(len(matches))
                callback = self._callbacks.get(query.qid)
                if callback is not None:
                    callback(query, entry.event.row, matches)
            # End-to-end latency: ingress stamp → delta emission (now,
            # after this event's callbacks ran).  Per shard and global.
            if entry.ingest_ns:
                e2e_us = (time.perf_counter_ns() - entry.ingest_ns) / 1_000.0
                e2e_global.observe(e2e_us)
                for index in shards_by_seq.get(entry.seq, ()):
                    hist = e2e_by_shard.get(index)
                    if hist is None:
                        hist = self.metrics.histogram(f"shard/{index}/e2e_us")
                        e2e_by_shard[index] = hist
                    hist.observe(e2e_us)
            out.append((entry.seq, entry.event, merged))
        self.metrics.counter("pipeline/events_applied").inc(len(batch))
        self.metrics.counter("pipeline/batches").inc()
        self.metrics.histogram("pipeline/batch_size").observe(len(batch))
        if self._sink is not None:
            self._sink.extend(out)
        return out

    def drain(self) -> List[Tuple[int, DataEvent, Delta]]:
        """Flush until no events are pending."""
        out: List[Tuple[int, DataEvent, Delta]] = []
        while len(self._batcher):
            out.extend(self.flush())
        return out

    def run(
        self, events: Iterable[object]
    ) -> List[Tuple[int, DataEvent, Delta]]:
        """Submit an event stream, drain, and return every applied event's
        ``(seq, event, deltas)`` in sequence order.

        Every flush during the run (batch-size triggers, barriers,
        backpressure blocks) feeds the same collection, so the caller sees
        one ordered result list for the whole stream."""
        collected: List[Tuple[int, DataEvent, Delta]] = []
        outer_sink, self._sink = self._sink, collected
        try:
            for event in events:
                self.submit(event)
            self.drain()
        finally:
            self._sink = outer_sink
        collected.sort(key=lambda item: item[0])
        if self._sink is not None:
            self._sink.extend(collected)
        return collected

    @property
    def shards(self) -> List[Shard]:
        """The in-process shard list (inline/thread backends; the durable
        checkpointer snapshots these directly)."""
        if not isinstance(self._backend, _InlineBackend):
            raise RuntimeError("shard state is not in-process in process mode")
        return self._backend.shards

    def sample_hotspots(self) -> List[HeadroomSample]:
        """Refresh and return every shard plane's I2 headroom sample.

        Each sample recomputes that plane's tau by a full sweep, so this
        belongs on the reporting interval, not the event path.  Returns
        ``[]`` in process mode — shard state lives elsewhere — but in
        ``process-shm`` mode it still drains worker telemetry first, so
        the registry's merged ``obs/shard/...`` gauges (each worker
        samples its own headroom before shipping) are fresh when the
        caller snapshots.  Also ``[]`` when the hotspot tracker is
        disabled (``alpha=None``).
        """
        if isinstance(self._backend, _ProcessShmBackend):
            self._backend.drain_telemetry()
            return []
        if not isinstance(self._backend, _InlineBackend):
            return []
        samples: List[HeadroomSample] = []
        for shard in self._backend.shards:
            samples.extend(shard.sample_telemetry())
        return samples

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.drain()
        if self.durability is not None:
            self.durability.sync()
            self.durability.close()
        self._backend.close()

    def __enter__(self) -> "EventPipeline":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
