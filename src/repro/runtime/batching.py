"""Micro-batching of pending data events.

The pipeline coalesces updates before they reach the shard workers: events
accumulate in a :class:`MicroBatcher` up to a size bound (and, in the
pipeline, a latency bound), then flush as one batch.  Coalescing cancels
matched insert+delete pairs — a row inserted and deleted while both events
are still pending was never visible under the batch's atomic visibility
contract, so neither event needs to touch a shard.  Survivors keep their
original arrival order, so per-key (and in fact total) event order is
preserved for everything that is actually applied.

A delete whose insert already flushed in an earlier batch is *not*
cancelled — it must reach the shards to remove installed state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.events import DataEvent, EventKind


def _row_key(event: DataEvent) -> Tuple[str, int]:
    """Identity of the row an event refers to (relation + surrogate id)."""
    row = event.row
    rid = row.rid if event.relation == "R" else row.sid
    return (event.relation, rid)


@dataclass(slots=True)
class BatchEntry:
    """One pending event, tagged with its global sequence number and the
    select-plane routing flags the router computed at submission.

    ``ingest_ns`` is the submitter's ``perf_counter_ns`` reading at
    ingress (0 = unknown) — the anchor for end-to-end latency, carried
    through batching and across the shm transport so both the worker and
    the parent can measure against the same monotonic clock.
    """

    seq: int
    event: DataEvent
    select_probe: bool = True
    select_state: bool = True
    ingest_ns: int = 0


@dataclass(slots=True)
class BatchStats:
    """Lifetime coalescing accounting for one batcher."""

    events_in: int = 0
    events_out: int = 0
    coalesced_pairs: int = 0
    batches: int = 0
    cancelled: List[Tuple[int, int]] = field(default_factory=list)


class MicroBatcher:
    """Accumulates pending :class:`BatchEntry` items and drains them as
    coalesced batches.

    ``max_batch`` is the flush threshold (``is_due`` turns true);
    ``drain()`` returns up to ``max_batch`` oldest survivors after
    cancelling insert+delete pairs that are both still pending.
    """

    __slots__ = ("max_batch", "_pending", "stats")

    def __init__(self, max_batch: int = 64):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self._pending: List[BatchEntry] = []
        self.stats = BatchStats()

    def add(self, entry: BatchEntry) -> None:
        self._pending.append(entry)
        self.stats.events_in += 1

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def is_due(self) -> bool:
        return len(self._pending) >= self.max_batch

    def peek_oldest(self) -> Optional[BatchEntry]:
        return self._pending[0] if self._pending else None

    def drop_oldest(self) -> Optional[BatchEntry]:
        """Evict the oldest pending entry (drop-oldest backpressure)."""
        if not self._pending:
            return None
        return self._pending.pop(0)

    def coalesce_pending(self) -> List[Tuple[int, int]]:
        """Cancel insert+delete pairs among the pending events.

        Returns the cancelled ``(insert_seq, delete_seq)`` pairs.  Only a
        delete *following* a pending insert of the same row cancels; the
        relative order of all surviving events is untouched.
        """
        pending_inserts: Dict[Tuple[str, int], int] = {}
        cancelled_positions: Set[int] = set()
        pairs: List[Tuple[int, int]] = []
        for pos, entry in enumerate(self._pending):
            key = _row_key(entry.event)
            if entry.event.kind is EventKind.INSERT:
                pending_inserts[key] = pos
            else:
                insert_pos = pending_inserts.pop(key, None)
                if insert_pos is not None:
                    cancelled_positions.add(insert_pos)
                    cancelled_positions.add(pos)
                    pairs.append(
                        (self._pending[insert_pos].seq, entry.seq)
                    )
        if cancelled_positions:
            self._pending = [
                entry
                for pos, entry in enumerate(self._pending)
                if pos not in cancelled_positions
            ]
            self.stats.coalesced_pairs += len(pairs)
            self.stats.cancelled.extend(pairs)
        return pairs

    def drain(self, *, coalesce: bool = True) -> List[BatchEntry]:
        """Remove and return the next batch (oldest-first survivors)."""
        if coalesce:
            self.coalesce_pending()
        batch = self._pending[: self.max_batch]
        self._pending = self._pending[self.max_batch :]
        if batch:
            self.stats.events_out += len(batch)
            self.stats.batches += 1
        return batch
