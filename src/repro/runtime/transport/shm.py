"""SPSC ring buffer over POSIX shared memory.

One ring carries framed records in one direction between exactly two
parties: a single producer process and a single consumer process.  The
pipeline owns a *request* ring (pipeline → worker) and a *response* ring
(worker → pipeline) per shard, so neither side ever contends with a peer
and no locks are needed — each counter has exactly one writer.

Layout (little-endian)::

    offset 0   u32  magic      "RING" — attach refuses foreign segments
    offset 4   u32  version    layout version, attach refuses mismatches
    offset 8   u64  capacity   data-region size in bytes
    offset 16  u64  head       bytes consumed (written by the consumer only)
    offset 24  u64  tail       bytes produced (written by the producer only)
    offset 32  ...  data       byte ring of ``capacity`` bytes

``head`` and ``tail`` are monotonically increasing byte counters (never
wrapped), so ``tail - head`` is the exact occupancy and the full/empty
ambiguity of wrapped indices never arises.  Each record is framed as
``[u32 length][u32 crc32][payload]`` where the CRC is seeded with the
length prefix — an all-zero header can therefore never self-validate as
an empty frame (``crc32(b"") == 0`` would otherwise make eight zero bytes
a valid record).  Payload bytes wrap around the data region byte-wise.
The producer writes the frame first and publishes ``tail`` last; the
consumer validates the CRC before advancing ``head``.

Each side keeps its *own* position in process memory and only publishes
it through the segment — the producer never reads back its own tail, the
consumer never reads back its own head.  Shared reads are therefore
limited to the peer's counter and the frame bytes, and both are treated
as untrusted: a peer-counter read that implies negative or
over-capacity occupancy is ignored and retried, and a frame that fails
validation is re-read for a short grace period before
:class:`FrameCorruptionError` is raised.  This matters in practice:
VM-backed hosts have been observed to serve transient zero pages on
shared mappings (reads that return zeros, then heal within a
millisecond) — with a naive layout those windows forge empty frames and
reset counters; with local positions and a length-seeded CRC they are
indistinguishable from "peer not ready yet" and simply retry.

Backpressure is block-with-deadline: ``send`` on a full ring spins
(yielding the CPU) until space frees or the deadline passes, then raises
:class:`RingTimeoutError` — frames are never dropped.  ``recv`` mirrors
the same wait and returns ``None`` on timeout so callers can interleave
liveness checks (is the peer process still alive?) with short waits.

Lifecycle: the creating side ``create()``\\ s and eventually ``unlink()``\\ s;
attaching sides ``attach()`` and only ``close()`` (see :meth:`ShmRing.attach`
for how :mod:`multiprocessing.resource_tracker` is handled).  ``close`` and
``unlink`` are both idempotent so crash-path teardown can call them
unconditionally.
"""

from __future__ import annotations

import struct
import time
import zlib
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from multiprocessing.synchronize import Semaphore

__all__ = [
    "TransportError",
    "RingTimeoutError",
    "FrameCorruptionError",
    "ShmRing",
]


class TransportError(Exception):
    """Base class for every shared-memory-transport failure."""


class RingTimeoutError(TransportError):
    """A blocking ring operation exceeded its deadline."""


class FrameCorruptionError(TransportError):
    """A framed record failed its CRC32 or length validation."""


_MAGIC = 0x52494E47  # "RING"
_LAYOUT_VERSION = 2  # v2: frame CRC is seeded with the length prefix

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_FRAME = struct.Struct("<II")  # payload length, crc32(length || payload)

_OFF_MAGIC = 0
_OFF_VERSION = 4
_OFF_CAPACITY = 8
_OFF_HEAD = 16
_OFF_TAIL = 24
_DATA = 32

#: Wait-loop backoff: one free yield, then exponentially growing sleeps.
#: Real sleeps matter more than spin latency here — ``sched_yield`` is
#: nearly a no-op under CFS, so a spinning waiter competes with the very
#: peer it is waiting for (ruinous on single-core hosts).  The ceiling
#: keeps worst-case wake-up latency well under a batch's compute time.
_WAIT_FLOOR = 50e-6
_WAIT_CEIL = 0.002

#: How long a consumer re-reads a frame that fails validation before
#: declaring it corrupt.  Transient zero-page reads heal within ~1ms;
#: genuine corruption stays broken and still fails loudly.
_CORRUPTION_GRACE = 0.05


def _frame_crc(payload: bytes) -> int:
    """CRC32 chained over the length prefix and the payload bytes."""
    return zlib.crc32(payload, zlib.crc32(_U32.pack(len(payload))))


class ShmRing:
    """A fixed-capacity SPSC byte ring over one shared-memory segment."""

    __slots__ = (
        "_shm",
        "_buf",
        "_capacity",
        "_owner",
        "_closed",
        "_next_tail",
        "_next_head",
        "_doorbell",
    )

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        capacity: int,
        owner: bool,
        doorbell: Optional["Semaphore"] = None,
    ) -> None:
        self._shm = shm
        self._buf = shm.buf
        self._capacity = capacity
        self._owner = owner
        self._closed = False
        # Optional wake-up semaphore: the producer releases it after
        # publishing a frame, the consumer blocks on it instead of
        # sleep-polling.  Purely a wake hint — emptiness is always
        # re-checked against ``tail`` — so spurious or stale counts are
        # harmless.  It cuts consumer wake-up latency from the polling
        # backoff ceiling (~2ms) to a scheduler wake, which dominates the
        # per-batch round-trip on ping-pong workloads.
        self._doorbell = doorbell
        # This process's authoritative positions — published to, never
        # read back from, the segment (see the module docstring).  Ring
        # construction precedes any traffic in this transport's lifecycle,
        # so both shared counters are still zero here; same-process
        # loopback (one object sending to itself, handy in tests and
        # micro-benchmarks) works because the roles keep separate slots.
        self._next_tail = 0  # guarded-by: spsc:send
        self._next_head = 0  # guarded-by: spsc:recv

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        capacity: int,
        name: Optional[str] = None,
        doorbell: Optional["Semaphore"] = None,
    ) -> "ShmRing":
        """Create a fresh ring with a ``capacity``-byte data region."""
        if capacity < _FRAME.size + 1:
            raise ValueError(f"ring capacity {capacity} is too small")
        shm = shared_memory.SharedMemory(name=name, create=True, size=_DATA + capacity)
        _U32.pack_into(shm.buf, _OFF_MAGIC, _MAGIC)
        _U32.pack_into(shm.buf, _OFF_VERSION, _LAYOUT_VERSION)
        _U64.pack_into(shm.buf, _OFF_CAPACITY, capacity)
        _U64.pack_into(shm.buf, _OFF_HEAD, 0)
        _U64.pack_into(shm.buf, _OFF_TAIL, 0)
        return cls(shm, capacity, owner=True, doorbell=doorbell)

    @classmethod
    def attach(
        cls, name: str, doorbell: Optional["Semaphore"] = None
    ) -> "ShmRing":
        """Attach to an existing ring by segment name.

        Attaching re-registers the segment with the resource tracker
        (unavoidable before Python 3.13's ``track=False``).  Under the
        fork start method the tracker is shared with the creator, so the
        duplicate register is a set-idempotent no-op and the creator's
        ``unlink`` settles the books; unregistering here instead would
        erase the creator's own registration.  Under spawn the attaching
        process owns a separate tracker that unlinks at its exit — which
        in this transport's lifecycle coincides with the creator's
        teardown, whose ``unlink`` tolerates the already-removed segment.
        """
        shm = shared_memory.SharedMemory(name=name)
        (magic,) = _U32.unpack_from(shm.buf, _OFF_MAGIC)
        (version,) = _U32.unpack_from(shm.buf, _OFF_VERSION)
        if magic != _MAGIC:
            shm.close()
            raise TransportError(f"segment {name!r} is not a transport ring")
        if version != _LAYOUT_VERSION:
            shm.close()
            raise TransportError(
                f"ring {name!r} has layout version {version}, "
                f"expected {_LAYOUT_VERSION}"
            )
        (capacity,) = _U64.unpack_from(shm.buf, _OFF_CAPACITY)
        return cls(shm, capacity, owner=False, doorbell=doorbell)

    @property
    def name(self) -> str:
        """The segment name (pass to :meth:`attach` in the peer process)."""
        return self._shm.name

    @property
    def capacity(self) -> int:
        return self._capacity

    # -- counters ------------------------------------------------------------

    def _head(self) -> int:
        return int(_U64.unpack_from(self._buf, _OFF_HEAD)[0])

    def _tail(self) -> int:
        return int(_U64.unpack_from(self._buf, _OFF_TAIL)[0])

    def occupancy(self) -> int:
        """Bytes currently enqueued (frame headers included).

        Advisory — both counters are shared reads, so the result is
        clamped rather than trusted (see the module docstring).
        """
        return max(0, self._tail() - self._head())

    # -- byte-wise ring access -----------------------------------------------

    def _write(self, pos: int, data: bytes) -> None:
        off = pos % self._capacity
        first = min(len(data), self._capacity - off)
        self._buf[_DATA + off : _DATA + off + first] = data[:first]
        rest = len(data) - first
        if rest:
            self._buf[_DATA : _DATA + rest] = data[first:]

    def _read(self, pos: int, count: int) -> bytes:
        off = pos % self._capacity
        first = min(count, self._capacity - off)
        out = bytes(self._buf[_DATA + off : _DATA + off + first])
        rest = count - first
        if rest:
            out += bytes(self._buf[_DATA : _DATA + rest])
        return out

    @staticmethod
    def _wait(spins: int) -> None:
        if spins == 0:
            time.sleep(0.0)
            return
        time.sleep(min(_WAIT_FLOOR * (1 << min(spins - 1, 6)), _WAIT_CEIL))

    # -- producer side -------------------------------------------------------

    def send(self, payload: bytes, timeout: Optional[float] = None) -> None:
        """Enqueue one framed record, blocking while the ring is full.

        Raises :class:`RingTimeoutError` if ``timeout`` seconds pass
        without enough space freeing up; the frame is never dropped or
        truncated.
        """
        if self._closed:
            raise TransportError("send on a closed ring")
        need = _FRAME.size + len(payload)
        if need > self._capacity:
            raise TransportError(
                f"frame of {need} bytes exceeds ring capacity {self._capacity}"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        tail = self._next_tail
        while True:
            head = self._head()
            # A sane head never exceeds our own tail and never implies
            # negative free space; anything else is a transient bad read
            # and is waited out exactly like a genuinely full ring.
            if head <= tail and tail - head <= self._capacity - need:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise RingTimeoutError(
                    f"ring {self.name!r} full for {timeout:.3f}s "
                    f"({self.occupancy()}/{self._capacity} bytes)"
                )
            self._wait(spins)
            spins += 1
        self._write(tail, _FRAME.pack(len(payload), _frame_crc(payload)))
        self._write(tail + _FRAME.size, payload)
        # Publish last: the consumer never sees a frame before its bytes.
        self._next_tail = tail + need
        _U64.pack_into(self._buf, _OFF_TAIL, self._next_tail)
        if self._doorbell is not None:
            self._doorbell.release()

    # -- consumer side -------------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """Dequeue one record; ``None`` if the ring stays empty past
        ``timeout`` (so callers can interleave peer-liveness checks).
        With ``timeout=None`` waits indefinitely.
        """
        if self._closed:
            raise TransportError("recv on a closed ring")
        deadline = None if timeout is None else time.monotonic() + timeout
        spins = 0
        head = self._next_head
        while self._tail() <= head:  # a transient zero read stays "empty"
            if deadline is not None and time.monotonic() >= deadline:
                return None
            if self._doorbell is not None:
                if deadline is None:
                    self._doorbell.acquire()
                else:
                    self._doorbell.acquire(
                        timeout=max(0.0, deadline - time.monotonic())
                    )
            else:
                self._wait(spins)
                spins += 1
        grace: Optional[float] = None
        while True:
            length, crc = _FRAME.unpack(self._read(head, _FRAME.size))
            if _FRAME.size + length <= self._capacity:
                payload = self._read(head + _FRAME.size, length)
                if _frame_crc(payload) == crc:
                    break
            # Tail said a frame is here but its bytes do not validate:
            # either a transient bad read (heals in ~1ms) or genuine
            # corruption.  Re-read briefly before failing loudly.
            now = time.monotonic()
            if grace is None:
                grace = now + _CORRUPTION_GRACE
            elif now >= grace:
                raise FrameCorruptionError(
                    f"frame at ring offset {head} failed validation "
                    f"(length={length}) for {_CORRUPTION_GRACE:.3f}s"
                )
            time.sleep(_WAIT_FLOOR)
        self._next_head = head + _FRAME.size + length
        _U64.pack_into(self._buf, _OFF_HEAD, self._next_head)
        return payload

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._buf = memoryview(b"")
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system.  Idempotent; safe after the
        peer crashed (missing segments are ignored)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
        if self._owner:
            self.unlink()
