"""The persistent shard-worker loop for ``mode="process-shm"``.

One worker process owns one :class:`~repro.runtime.sharding.Shard` and a
pair of rings: it blocks on the *request* ring, applies whatever arrives,
and answers on the *response* ring.  The protocol is strictly
request/response — the pipeline never has more than one frame in flight
per shard — so worker-side ring sends can use a short deadline: a full
response ring means the pipeline stopped consuming, and dying loudly beats
blocking forever.

Queries unpickle— *decode* — to fresh objects on every control frame and
the engine tracks subscriptions by identity, so the worker keeps its own
qid → object registry, exactly like the pickle-based process backend.

Observability (PR 10): the worker runs its *own*
:class:`~repro.obs.tracing.RingTracer` and
:class:`~repro.runtime.metrics.MetricsRegistry` — the shard wires its
hotspot telemetry and fastpath spans into them exactly as the inline
backend would.  Each BATCH frame carries the parent's trace id and the
open roundtrip span id; the worker adopts both so its spans join the
parent's trace, and it observes per-entry ingest-to-apply latency from
the batch's monotonic ingest timestamps (CLOCK_MONOTONIC is shared
across processes on one host).  When a BATCH requests telemetry (flag
bit0), the worker follows its response with one TELEMETRY frame — deltas
collected by :class:`~repro.obs.remote.TelemetryCollector` — preserving
the one-request/one-logical-response protocol (the pipeline reads RESULT
then TELEMETRY).  The telemetry follow-up is sent even when the batch
itself failed, so both sides stay frame-aligned.

Exceptions inside a request are reported back as ERROR frames (the
pipeline re-raises them as :class:`TransportError`); the loop itself only
exits on a SHUTDOWN frame or an unrecoverable transport failure.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:
    from multiprocessing.synchronize import Semaphore

from repro.durability.codec import Unsubscribe
from repro.engine.events import QueryEvent
from repro.obs.remote import TelemetryCollector
from repro.obs.tracing import RingTracer
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.sharding import Shard
from repro.runtime.transport import frames
from repro.runtime.transport.shm import ShmRing, TransportError

__all__ = ["shard_worker_main"]

#: Response-ring send deadline (see module docstring).
_RESPONSE_TIMEOUT = 30.0

#: Worker span rings are smaller than the parent default — only the spans
#: since the last telemetry ship need to survive, and telemetry rides on
#: the batch cadence.
_WORKER_TRACE_CAPACITY = 16_384


def _apply_batch(
    shard: Shard,
    batch: frames.DecodedBatch,
    tracer: RingTracer,
    registry: MetricsRegistry,
) -> Tuple[float, frames.SeqResults]:
    tracer.adopt_trace_id(batch.trace_id)
    tracer.set_remote_parent(batch.parent_span_id)
    start_ns = time.perf_counter_ns()
    with tracer.span(
        "worker.batch", shard=shard.index, events=len(batch.entries)
    ):
        results: frames.SeqResults = [
            (seq, {query.qid: rows for query, rows in deltas.items()})
            for seq, deltas in shard.apply_batch(batch.entries)
        ]
    end_ns = time.perf_counter_ns()
    if batch.ingest_ns:
        e2e = registry.histogram("worker/e2e/ingest_to_apply_us")
        for ingest in batch.ingest_ns:
            if ingest > 0:
                e2e.observe((end_ns - ingest) / 1_000.0)
    return (end_ns - start_ns) / 1e9, results


def _handle(
    shard: Shard,
    queries: Dict[int, Any],
    frame_type: int,
    body: Any,
    tracer: RingTracer,
    registry: MetricsRegistry,
) -> bytes:
    if frame_type == frames.FRAME_BATCH:
        elapsed, results = _apply_batch(shard, body, tracer, registry)
        return frames.encode_result_frame(elapsed, results)
    if frame_type == frames.FRAME_CONTROL:
        if isinstance(body, Unsubscribe):
            shard.unsubscribe(queries.pop(body.qid))
        elif isinstance(body, QueryEvent):
            queries[body.query.qid] = body.query
            shard.subscribe(body.query)
        else:
            raise TransportError(
                f"unsupported control record: {type(body).__name__}"
            )
        return frames.encode_ack_frame()
    raise TransportError(f"unexpected request frame type {frame_type}")


def shard_worker_main(
    index: int,
    alpha: Optional[float],
    epsilon: float,
    request_ring: str,
    response_ring: str,
    request_doorbell: Optional["Semaphore"] = None,
    response_doorbell: Optional["Semaphore"] = None,
) -> None:
    """Drain ``request_ring`` into a freshly built shard until SHUTDOWN.

    The doorbell semaphores (created by the pipeline, inherited through
    the :class:`~multiprocessing.Process` arguments) give both sides
    blocking wake-ups instead of sleep-polling — see
    :class:`~repro.runtime.transport.shm.ShmRing`.
    """
    requests = ShmRing.attach(request_ring, doorbell=request_doorbell)
    responses = ShmRing.attach(response_ring, doorbell=response_doorbell)
    registry = MetricsRegistry()
    tracer = RingTracer(capacity=_WORKER_TRACE_CAPACITY)
    shard = Shard(index, alpha=alpha, epsilon=epsilon, metrics=registry,
                  tracer=tracer)
    collector = TelemetryCollector(index, registry, tracer)
    queries: Dict[int, Any] = {}
    try:
        while True:
            payload = requests.recv(timeout=None)
            assert payload is not None  # timeout=None never yields None
            try:
                frame_type, body = frames.decode_frame(payload)
            except frames.FrameError as exc:
                # The protocol is strictly one frame in flight, so a
                # malformed request still gets its response — the pipeline
                # re-raises it; only SHUTDOWN ends the loop.
                responses.send(
                    frames.encode_error_frame(
                        f"shard {index} worker: bad request frame: {exc}"
                    ),
                    timeout=_RESPONSE_TIMEOUT,
                )
                continue
            if frame_type == frames.FRAME_SHUTDOWN:
                break
            try:
                response = _handle(
                    shard, queries, frame_type, body, tracer, registry
                )
            except Exception as exc:  # surfaced to the pipeline, not lost
                response = frames.encode_error_frame(
                    f"shard {index} worker: {type(exc).__name__}: {exc}"
                )
            responses.send(response, timeout=_RESPONSE_TIMEOUT)
            # A telemetry-flagged BATCH gets its follow-up frame even when
            # the batch errored — the parent reads a fixed number of
            # responses per request, so skipping it would desynchronize
            # the rings.
            if (
                frame_type == frames.FRAME_BATCH
                and isinstance(body, frames.DecodedBatch)
                and body.want_telemetry
            ):
                shard.sample_telemetry()  # refresh headroom gauges
                responses.send(
                    frames.encode_telemetry_frame(collector.collect()),
                    timeout=_RESPONSE_TIMEOUT,
                )
    finally:
        requests.close()
        responses.close()
