"""Versioned columnar frame codec for the shard data plane.

Same philosophy as :mod:`repro.durability.codec` (tagged little-endian
``struct`` layouts, no pickle: pickle executes code on load, changes shape
across refactors, and cannot be validated byte-by-byte) — but framed for
*throughput* rather than durability: a micro-batch crosses the process
boundary as a handful of flat arrays instead of one pickled object per
event.

Every frame starts ``[u8 frame_type][u8 version]``.  Frame types::

    1  BATCH      trace context + ordered shard entries, columnar (below)
    2  RESULT     elapsed + row table + (seq, qid, sign, row-ref) deltas
    3  CONTROL    one durability-codec record (SUB band/select, UNSUB)
    4  ACK        empty body — control acknowledged
    5  SHUTDOWN   empty body — worker drains and exits
    6  ERROR      utf-8 message — worker-side exception report
    7  TELEMETRY  worker span batch + metric deltas (return path)

**BATCH** (version 2) — a trace-context header
``[u8 flags][u64 trace_id][u64 parent_span_id]`` then ``u32 n_entries``
and *segments*.  ``flags`` bit0 requests a TELEMETRY frame after the
RESULT; ``trace_id``/``parent_span_id`` propagate the parent's trace so
worker spans join it (zero means untraced).  The entry list is split
into maximal runs of the same (kind, relation); each run is one segment
``[u8 seg_tag][u32 count]`` followed by flat columns::

    seqs    <{n}q    event sequence numbers
    ids     <{n}q    rid (R) or sid (S)
    x       <{n}d    a (R) or b (S)
    y       <{n}d    b (R) or c (S)
    ingest  <{n}q    parent-side perf_counter_ns at ingest (0 = unknown)
    flags   {n}B     bit0 = select_probe, bit1 = select_state

The ingest column carries CLOCK_MONOTONIC readings, which share an
origin across processes on one host — the worker subtracts them from its
own clock to produce end-to-end latency without any wall-clock exchange.

Segment tags: 1 INSERT_R, 2 INSERT_S, 3 DELETE_R, 4 DELETE_S.  Columns
are contiguous little-endian int64/float64, so a numpy consumer can
``frombuffer`` them with zero copies (the worker's fastpath kernels
consume exactly such flat columns); this module itself stays pure-``struct``
— numpy imports are confined to the kernel allowlist (RA002).

**TELEMETRY** — the worker-to-parent observability return path, carried
over the same response ring as RESULT/ACK (strictly after a RESULT whose
BATCH requested it, so the one-frame-in-flight protocol is preserved).
Body: ``[u64 pid][u32 shard][u64 trace_id][u32 spans_dropped]`` then
three length-prefixed sections::

    u32 n_spans      per span: [u16 len]name  <qqQQQQ> ts dur tid
                     span_id parent_id trace_id  [u32 len]args-JSON
    u32 n_counters   per item: [u16 len]name  <q>  delta since last ship
    u32 n_gauges     per item: [u16 len]name  <d>  current value
    u32 n_histograms per item: [u16 len]name  <QdddI> count sum min max
                     n_buckets, then n_buckets x <HQ> (index, delta)

Counter and histogram sections are *deltas* (merging is addition on the
parent); gauges are last-writer-wins absolutes.  Span ``args`` ride as
UTF-8 JSON (data, not code — unlike pickle nothing executes on load),
with 0 length meaning no args.

**RESULT** — ``f64 elapsed``, a deduplicated row table of ``u32 n_rows``
records ``<Bqdd>`` (tag 1 = R row rid/a/b, tag 2 = S row sid/b/c), then
the delta tuples as flat columns — one *group* per (seq, qid) pair with a
non-empty delta, groups in sequence order::

    u32 n_groups
    seqs    <{g}q   event sequence number per group
    qids    <{g}q   query id per group
    signs   <{g}b   +1 for every current delta
    counts  <{g}I   row references per group
    u32 total_refs
    refs    <{t}I   row-table indices, group-major

``sign`` is +1 always today (the engine emits matches only); it is
carried on the wire so retractions can ship without a version bump.  Row
references index the frame's own row table, so a row matched by many
queries crosses the boundary once; empty deltas are elided entirely —
the pipeline pre-initializes every sequence's result slot, so absence
and emptiness are indistinguishable on the consuming side.

NaN endpoints round-trip bit-exactly (values are moved by ``struct``,
never compared), which the property tests pin down.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.durability.codec import decode_record, encode_event
from repro.engine.events import DataEvent, EventKind
from repro.engine.table import RTuple, STuple
from repro.obs.tracing import SpanRecord
from repro.runtime.sharding import ShardEntry
from repro.runtime.transport.shm import TransportError

__all__ = [
    "FRAME_VERSION",
    "FRAME_BATCH",
    "FRAME_RESULT",
    "FRAME_CONTROL",
    "FRAME_ACK",
    "FRAME_SHUTDOWN",
    "FRAME_ERROR",
    "FRAME_TELEMETRY",
    "FrameError",
    "QidDeltas",
    "SeqResults",
    "DecodedBatch",
    "HistogramDelta",
    "TelemetryPayload",
    "encode_batch_frame",
    "decode_batch_frame",
    "encode_result_frame",
    "decode_result_frame",
    "encode_control_frame",
    "encode_ack_frame",
    "encode_shutdown_frame",
    "encode_error_frame",
    "encode_telemetry_frame",
    "decode_telemetry_frame",
    "decode_frame",
]

FRAME_VERSION = 2

FRAME_BATCH = 1
FRAME_RESULT = 2
FRAME_CONTROL = 3
FRAME_ACK = 4
FRAME_SHUTDOWN = 5
FRAME_ERROR = 6
FRAME_TELEMETRY = 7

#: BATCH flags bit0: the worker should follow its RESULT with a TELEMETRY.
BATCH_FLAG_TELEMETRY = 1

_SEG_INSERT_R = 1
_SEG_INSERT_S = 2
_SEG_DELETE_R = 3
_SEG_DELETE_S = 4

_HDR = struct.Struct("<BB")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_SEG = struct.Struct("<BI")
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")
_ROW = struct.Struct("<Bqdd")  # row-table record: tag, id, x, y
_BATCH_CTX = struct.Struct("<BQQ")  # flags, trace_id, parent_span_id
_TELE_CTX = struct.Struct("<QIQI")  # pid, shard, trace_id, spans_dropped
_TELE_SPAN = struct.Struct("<qqQQQQ")  # ts, dur, tid, span_id, parent_id, trace_id
_TELE_HIST = struct.Struct("<QdddI")  # count, sum, min, max, n_buckets
_TELE_BUCKET = struct.Struct("<HQ")  # bucket index, count delta

_ROW_TAG_R = 1
_ROW_TAG_S = 2

#: Per-query delta rows keyed by qid (the worker side of
#: :data:`repro.runtime.sharding.Delta`, which keys by query object).
QidDeltas = Dict[int, List[Any]]
#: One batch's results: ``(seq, deltas)`` in application order.
SeqResults = List[Tuple[int, QidDeltas]]


class FrameError(TransportError):
    """A frame does not match the wire format."""


def _seg_tag(event: DataEvent) -> int:
    if event.relation == "R":
        return _SEG_INSERT_R if event.kind is EventKind.INSERT else _SEG_DELETE_R
    return _SEG_INSERT_S if event.kind is EventKind.INSERT else _SEG_DELETE_S


# -- BATCH -------------------------------------------------------------------


@dataclass(slots=True)
class DecodedBatch:
    """A decoded BATCH frame: the ordered entries plus trace context.

    ``ingest_ns`` is parallel to ``entries`` (0 = ingest time unknown);
    ``want_telemetry`` mirrors BATCH flag bit0.
    """

    entries: List[ShardEntry]
    ingest_ns: Tuple[int, ...] = ()
    trace_id: int = 0
    parent_span_id: int = 0
    want_telemetry: bool = False


def encode_batch_frame(
    entries: Sequence[ShardEntry],
    *,
    ingest_ns: Optional[Sequence[int]] = None,
    trace_id: int = 0,
    parent_span_id: int = 0,
    want_telemetry: bool = False,
) -> bytes:
    """Encode an ordered shard batch as columnar run segments.

    ``ingest_ns`` (parallel to ``entries``) stamps each entry's
    parent-side monotonic ingest time; omitted means "unknown" and
    encodes as zeros.
    """
    if ingest_ns is not None and len(ingest_ns) != len(entries):
        raise FrameError("ingest_ns must be parallel to entries")
    flags_byte = BATCH_FLAG_TELEMETRY if want_telemetry else 0
    parts: List[bytes] = [
        _HDR.pack(FRAME_BATCH, FRAME_VERSION),
        _BATCH_CTX.pack(flags_byte, trace_id, parent_span_id),
        _U32.pack(len(entries)),
    ]
    i, total = 0, len(entries)
    while i < total:
        tag = _seg_tag(entries[i][1])
        j = i + 1
        while j < total and _seg_tag(entries[j][1]) == tag:
            j += 1
        n = j - i
        run = entries[i:j]
        seqs = [entry[0] for entry in run]
        if tag in (_SEG_INSERT_R, _SEG_DELETE_R):
            ids = [entry[1].row.rid for entry in run]
            xs = [entry[1].row.a for entry in run]
            ys = [entry[1].row.b for entry in run]
        else:
            ids = [entry[1].row.sid for entry in run]
            xs = [entry[1].row.b for entry in run]
            ys = [entry[1].row.c for entry in run]
        ingest = (
            list(ingest_ns[i:j]) if ingest_ns is not None else [0] * n
        )
        flags = bytes(
            (1 if entry[2] else 0) | (2 if entry[3] else 0) for entry in run
        )
        parts.append(_SEG.pack(tag, n))
        parts.append(struct.pack(f"<{n}q", *seqs))
        parts.append(struct.pack(f"<{n}q", *ids))
        parts.append(struct.pack(f"<{n}d", *xs))
        parts.append(struct.pack(f"<{n}d", *ys))
        parts.append(struct.pack(f"<{n}q", *ingest))
        parts.append(flags)
        i = j
    return b"".join(parts)


def decode_batch_frame(payload: bytes) -> DecodedBatch:
    """Decode a BATCH frame body back into entries + trace context."""
    offset = _HDR.size
    if offset + _BATCH_CTX.size + _U32.size > len(payload):
        raise FrameError("truncated batch context header")
    flags_byte, trace_id, parent_span_id = _BATCH_CTX.unpack_from(payload, offset)
    offset += _BATCH_CTX.size
    (n_entries,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    entries: List[ShardEntry] = []
    ingest_all: List[int] = []
    while len(entries) < n_entries:
        if offset + _SEG.size > len(payload):
            raise FrameError("truncated batch segment header")
        tag, n = _SEG.unpack_from(payload, offset)
        offset += _SEG.size
        need = 2 * 8 * n + 2 * 8 * n + 8 * n + n
        if offset + need > len(payload):
            raise FrameError(f"truncated batch segment (tag {tag}, n {n})")
        seqs = struct.unpack_from(f"<{n}q", payload, offset)
        offset += 8 * n
        ids = struct.unpack_from(f"<{n}q", payload, offset)
        offset += 8 * n
        xs = struct.unpack_from(f"<{n}d", payload, offset)
        offset += 8 * n
        ys = struct.unpack_from(f"<{n}d", payload, offset)
        offset += 8 * n
        ingest = struct.unpack_from(f"<{n}q", payload, offset)
        offset += 8 * n
        flags = payload[offset : offset + n]
        offset += n
        ingest_all.extend(ingest)
        if tag in (_SEG_INSERT_R, _SEG_DELETE_R):
            kind = EventKind.INSERT if tag == _SEG_INSERT_R else EventKind.DELETE
            for k in range(n):
                entries.append(
                    (
                        seqs[k],
                        DataEvent(kind, "R", RTuple(ids[k], xs[k], ys[k])),
                        bool(flags[k] & 1),
                        bool(flags[k] & 2),
                    )
                )
        elif tag in (_SEG_INSERT_S, _SEG_DELETE_S):
            kind = EventKind.INSERT if tag == _SEG_INSERT_S else EventKind.DELETE
            for k in range(n):
                entries.append(
                    (
                        seqs[k],
                        DataEvent(kind, "S", STuple(ids[k], xs[k], ys[k])),
                        bool(flags[k] & 1),
                        bool(flags[k] & 2),
                    )
                )
        else:
            raise FrameError(f"unknown batch segment tag {tag}")
    if offset != len(payload):
        raise FrameError(
            f"{len(payload) - offset} trailing byte(s) after batch segments"
        )
    return DecodedBatch(
        entries=entries,
        ingest_ns=tuple(ingest_all),
        trace_id=trace_id,
        parent_span_id=parent_span_id,
        want_telemetry=bool(flags_byte & BATCH_FLAG_TELEMETRY),
    )


# -- RESULT ------------------------------------------------------------------


def encode_result_frame(elapsed: float, results: SeqResults) -> bytes:
    """Encode one batch's worker results against a deduplicated row table.

    Empty deltas are elided (see module docstring).  Rows are deduplicated
    by object identity first — within one batch a matched row is the same
    stored table object however many queries it satisfies — with value
    identity as the correctness backstop on the decode side (decoded rows
    are frozen value-equal dataclasses).
    """
    row_index: Dict[int, int] = {}
    row_records: List[bytes] = []
    seqs: List[int] = []
    qids: List[int] = []
    counts: List[int] = []
    refs: List[int] = []
    for seq, deltas in results:
        for qid, rows in deltas.items():
            if not rows:
                continue
            seqs.append(seq)
            qids.append(qid)
            counts.append(len(rows))
            for row in rows:
                key = id(row)
                index = row_index.get(key)
                if index is None:
                    index = len(row_records)
                    row_index[key] = index
                    if isinstance(row, RTuple):
                        row_records.append(
                            _ROW.pack(_ROW_TAG_R, row.rid, row.a, row.b)
                        )
                    elif isinstance(row, STuple):
                        row_records.append(
                            _ROW.pack(_ROW_TAG_S, row.sid, row.b, row.c)
                        )
                    else:
                        raise FrameError(
                            f"unsupported result row type: {type(row).__name__}"
                        )
                refs.append(index)
    g = len(seqs)
    return b"".join(
        [
            _HDR.pack(FRAME_RESULT, FRAME_VERSION),
            _F64.pack(elapsed),
            _U32.pack(len(row_records)),
            *row_records,
            _U32.pack(g),
            struct.pack(f"<{g}q", *seqs),
            struct.pack(f"<{g}q", *qids),
            struct.pack(f"<{g}b", *([1] * g)),
            struct.pack(f"<{g}I", *counts),
            _U32.pack(len(refs)),
            struct.pack(f"<{len(refs)}I", *refs),
        ]
    )


def decode_result_frame(payload: bytes) -> Tuple[float, SeqResults]:
    """Decode a RESULT frame body back into ``(elapsed, results)``."""
    offset = _HDR.size
    (elapsed,) = _F64.unpack_from(payload, offset)
    offset += _F64.size
    (n_rows,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    if offset + n_rows * _ROW.size > len(payload):
        raise FrameError("truncated result row table")
    rows: List[Any] = []
    for tag, row_id, x, y in _ROW.iter_unpack(
        payload[offset : offset + n_rows * _ROW.size]
    ):
        if tag == _ROW_TAG_R:
            rows.append(RTuple(row_id, x, y))
        elif tag == _ROW_TAG_S:
            rows.append(STuple(row_id, x, y))
        else:
            raise FrameError(f"unknown result row tag {tag}")
    offset += n_rows * _ROW.size
    (g,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    if offset + g * (8 + 8 + 1 + 4) + _U32.size > len(payload):
        raise FrameError("truncated result delta columns")
    seqs = struct.unpack_from(f"<{g}q", payload, offset)
    offset += 8 * g
    qids = struct.unpack_from(f"<{g}q", payload, offset)
    offset += 8 * g
    signs = struct.unpack_from(f"<{g}b", payload, offset)
    offset += g
    counts = struct.unpack_from(f"<{g}I", payload, offset)
    offset += 4 * g
    (total_refs,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    if offset + 4 * total_refs != len(payload):
        raise FrameError("result refs array does not match frame length")
    refs = struct.unpack_from(f"<{total_refs}I", payload, offset)
    if sum(counts) != total_refs:
        raise FrameError("result group counts do not sum to total refs")
    results: SeqResults = []
    deltas: QidDeltas = {}
    last_seq = None
    pos = 0
    row_at = rows.__getitem__
    try:
        for i in range(g):
            if signs[i] != 1:
                raise FrameError(f"unsupported delta sign {signs[i]}")
            if seqs[i] != last_seq:
                deltas = {}
                results.append((seqs[i], deltas))
                last_seq = seqs[i]
            deltas[qids[i]] = list(map(row_at, refs[pos : pos + counts[i]]))
            pos += counts[i]
    except IndexError:
        raise FrameError("result row reference out of range") from None
    return elapsed, results


# -- control / lifecycle frames ----------------------------------------------


def encode_control_frame(event: object) -> bytes:
    """Wrap one durability-codec record (SUB/UNSUB) as a control frame."""
    return _HDR.pack(FRAME_CONTROL, FRAME_VERSION) + encode_event(event)


def encode_ack_frame() -> bytes:
    return _HDR.pack(FRAME_ACK, FRAME_VERSION)


def encode_shutdown_frame() -> bytes:
    return _HDR.pack(FRAME_SHUTDOWN, FRAME_VERSION)


def encode_error_frame(message: str) -> bytes:
    return _HDR.pack(FRAME_ERROR, FRAME_VERSION) + message.encode(
        "utf-8", errors="replace"
    )


# -- TELEMETRY ---------------------------------------------------------------


@dataclass(slots=True)
class HistogramDelta:
    """Additive histogram delta: counts/sum since the last ship, lifetime
    min/max (folded via min/max on merge), nonzero bucket deltas as
    ``(index, added)`` pairs."""

    count: int
    total: float
    min_value: float
    max_value: float
    buckets: List[Tuple[int, int]] = field(default_factory=list)


@dataclass(slots=True)
class TelemetryPayload:
    """One worker's observability delta: spans since the last ship plus
    counter deltas, gauge absolutes, and histogram deltas."""

    pid: int
    shard: int
    trace_id: int = 0
    spans_dropped: int = 0
    spans: List[SpanRecord] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramDelta] = field(default_factory=dict)


def _pack_name(name: str) -> bytes:
    encoded = name.encode("utf-8")
    if len(encoded) > 0xFFFF:
        raise FrameError(f"name too long to encode ({len(encoded)} bytes)")
    return _U16.pack(len(encoded)) + encoded


def _unpack_name(payload: bytes, offset: int) -> Tuple[str, int]:
    if offset + _U16.size > len(payload):
        raise FrameError("truncated telemetry name length")
    (length,) = _U16.unpack_from(payload, offset)
    offset += _U16.size
    if offset + length > len(payload):
        raise FrameError("truncated telemetry name")
    return payload[offset : offset + length].decode("utf-8"), offset + length


def encode_telemetry_frame(payload: TelemetryPayload) -> bytes:
    """Encode a worker telemetry delta (spans + metric deltas)."""
    parts: List[bytes] = [
        _HDR.pack(FRAME_TELEMETRY, FRAME_VERSION),
        _TELE_CTX.pack(
            payload.pid,
            payload.shard,
            payload.trace_id,
            # u32 on the wire; a drop counter past 4B spans only needs to
            # stay honest about "a lot", not exact.
            min(payload.spans_dropped, 0xFFFF_FFFF),
        ),
        _U32.pack(len(payload.spans)),
    ]
    for span in payload.spans:
        args_blob = (
            json.dumps(span.args, separators=(",", ":")).encode("utf-8")
            if span.args
            else b""
        )
        parts.append(_pack_name(span.name))
        parts.append(
            _TELE_SPAN.pack(
                span.ts_ns,
                span.dur_ns,
                span.tid,
                span.span_id,
                span.parent_id,
                span.trace_id,
            )
        )
        parts.append(_U32.pack(len(args_blob)))
        parts.append(args_blob)
    parts.append(_U32.pack(len(payload.counters)))
    for name, delta in sorted(payload.counters.items()):
        parts.append(_pack_name(name))
        parts.append(_I64.pack(delta))
    parts.append(_U32.pack(len(payload.gauges)))
    for name, value in sorted(payload.gauges.items()):
        parts.append(_pack_name(name))
        parts.append(_F64.pack(value))
    parts.append(_U32.pack(len(payload.histograms)))
    for name, hist in sorted(payload.histograms.items()):
        parts.append(_pack_name(name))
        parts.append(
            _TELE_HIST.pack(
                hist.count,
                hist.total,
                hist.min_value,
                hist.max_value,
                len(hist.buckets),
            )
        )
        for index, added in hist.buckets:
            parts.append(_TELE_BUCKET.pack(index, added))
    return b"".join(parts)


def decode_telemetry_frame(payload: bytes) -> TelemetryPayload:
    """Decode a TELEMETRY frame body back into a :class:`TelemetryPayload`."""
    offset = _HDR.size
    if offset + _TELE_CTX.size + _U32.size > len(payload):
        raise FrameError("truncated telemetry context header")
    pid, shard, trace_id, spans_dropped = _TELE_CTX.unpack_from(payload, offset)
    offset += _TELE_CTX.size
    (n_spans,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    spans: List[SpanRecord] = []
    for _ in range(n_spans):
        name, offset = _unpack_name(payload, offset)
        if offset + _TELE_SPAN.size + _U32.size > len(payload):
            raise FrameError("truncated telemetry span")
        ts_ns, dur_ns, tid, span_id, parent_id, span_trace = _TELE_SPAN.unpack_from(
            payload, offset
        )
        offset += _TELE_SPAN.size
        (args_len,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        if offset + args_len > len(payload):
            raise FrameError("truncated telemetry span args")
        args: Optional[Dict[str, Any]] = None
        if args_len:
            try:
                args = json.loads(payload[offset : offset + args_len])
            except ValueError as exc:
                raise FrameError(f"bad telemetry span args: {exc}") from None
        offset += args_len
        spans.append(
            SpanRecord(
                name=name,
                ts_ns=ts_ns,
                dur_ns=dur_ns,
                tid=tid,
                args=args,
                pid=pid,
                trace_id=span_trace,
                span_id=span_id,
                parent_id=parent_id,
            )
        )
    if offset + _U32.size > len(payload):
        raise FrameError("truncated telemetry counter section")
    (n_counters,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    counters: Dict[str, int] = {}
    for _ in range(n_counters):
        name, offset = _unpack_name(payload, offset)
        if offset + _I64.size > len(payload):
            raise FrameError("truncated telemetry counter")
        (counters[name],) = _I64.unpack_from(payload, offset)
        offset += _I64.size
    if offset + _U32.size > len(payload):
        raise FrameError("truncated telemetry gauge section")
    (n_gauges,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    gauges: Dict[str, float] = {}
    for _ in range(n_gauges):
        name, offset = _unpack_name(payload, offset)
        if offset + _F64.size > len(payload):
            raise FrameError("truncated telemetry gauge")
        (gauges[name],) = _F64.unpack_from(payload, offset)
        offset += _F64.size
    if offset + _U32.size > len(payload):
        raise FrameError("truncated telemetry histogram section")
    (n_histograms,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    histograms: Dict[str, HistogramDelta] = {}
    for _ in range(n_histograms):
        name, offset = _unpack_name(payload, offset)
        if offset + _TELE_HIST.size > len(payload):
            raise FrameError("truncated telemetry histogram header")
        count, total, min_value, max_value, n_buckets = _TELE_HIST.unpack_from(
            payload, offset
        )
        offset += _TELE_HIST.size
        if offset + n_buckets * _TELE_BUCKET.size > len(payload):
            raise FrameError("truncated telemetry histogram buckets")
        buckets: List[Tuple[int, int]] = []
        for _b in range(n_buckets):
            index, added = _TELE_BUCKET.unpack_from(payload, offset)
            offset += _TELE_BUCKET.size
            buckets.append((index, added))
        histograms[name] = HistogramDelta(
            count=count,
            total=total,
            min_value=min_value,
            max_value=max_value,
            buckets=buckets,
        )
    if offset != len(payload):
        raise FrameError(
            f"{len(payload) - offset} trailing byte(s) after telemetry sections"
        )
    return TelemetryPayload(
        pid=pid,
        shard=shard,
        trace_id=trace_id,
        spans_dropped=spans_dropped,
        spans=spans,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
    )


def decode_frame(payload: bytes) -> Tuple[int, Any]:
    """Validate the frame header and decode the body.

    Returns ``(frame_type, body)`` where the body is: a
    :class:`DecodedBatch` for BATCH, ``(elapsed, results)`` for RESULT, a
    durability :data:`~repro.durability.codec.DecodedRecord` for CONTROL,
    a :class:`TelemetryPayload` for TELEMETRY, the message string for
    ERROR, and ``None`` for ACK/SHUTDOWN.
    """
    if len(payload) < _HDR.size:
        raise FrameError(f"frame of {len(payload)} byte(s) has no header")
    frame_type, version = _HDR.unpack_from(payload, 0)
    if version != FRAME_VERSION:
        raise FrameError(
            f"frame version {version} unsupported (expected {FRAME_VERSION})"
        )
    if frame_type == FRAME_BATCH:
        return frame_type, decode_batch_frame(payload)
    if frame_type == FRAME_RESULT:
        return frame_type, decode_result_frame(payload)
    if frame_type == FRAME_CONTROL:
        return frame_type, decode_record(payload[_HDR.size :])
    if frame_type in (FRAME_ACK, FRAME_SHUTDOWN):
        if len(payload) != _HDR.size:
            raise FrameError(f"frame type {frame_type} carries no body")
        return frame_type, None
    if frame_type == FRAME_ERROR:
        return frame_type, payload[_HDR.size :].decode("utf-8", errors="replace")
    if frame_type == FRAME_TELEMETRY:
        return frame_type, decode_telemetry_frame(payload)
    raise FrameError(f"unknown frame type {frame_type}")
