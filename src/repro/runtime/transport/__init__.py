"""Zero-copy shared-memory transport for the process data plane.

``mode="process"`` pays pickle both ways on every batch: each
:class:`~repro.engine.events.DataEvent` and every qid-keyed delta dict is
serialized through the ``ProcessPoolExecutor`` pipe.  This package replaces
that boundary with a pickle-free data plane:

* :mod:`repro.runtime.transport.shm` — a fixed-capacity SPSC ring buffer
  over :mod:`multiprocessing.shared_memory` with CRC32-framed records,
  ring-full backpressure (block with deadline) and idempotent
  teardown/unlink semantics.
* :mod:`repro.runtime.transport.frames` — a versioned columnar frame
  codec in the tagged-binary style of :mod:`repro.durability.codec`:
  insert runs travel as flat id/float arrays, deletes as compact
  per-entry records, result deltas as (seq, qid, sign, row-ref) tuples
  resolved against the frame's own row table.
* :mod:`repro.runtime.transport.worker` — the persistent shard-worker
  loop: drain the request ring, apply, answer on the response ring, exit
  on a shutdown frame.

Since frame version 2 the BATCH frame also carries per-entry monotonic
ingest timestamps plus the parent's trace context, and a telemetry-flagged
batch is answered with RESULT **then** one TELEMETRY frame — worker span
batches and metric deltas the pipeline merges back into the parent
registry and trace (see :mod:`repro.obs.remote`).

The pipeline side lives in :class:`repro.runtime.pipeline.EventPipeline`
(``mode="process-shm"``).
"""

from repro.runtime.transport.frames import (
    BATCH_FLAG_TELEMETRY,
    FRAME_TELEMETRY,
    FRAME_VERSION,
    DecodedBatch,
    FrameError,
    HistogramDelta,
    TelemetryPayload,
    decode_batch_frame,
    decode_frame,
    decode_result_frame,
    decode_telemetry_frame,
    encode_batch_frame,
    encode_control_frame,
    encode_result_frame,
    encode_telemetry_frame,
)
from repro.runtime.transport.shm import (
    FrameCorruptionError,
    RingTimeoutError,
    ShmRing,
    TransportError,
)

__all__ = [
    "BATCH_FLAG_TELEMETRY",
    "FRAME_TELEMETRY",
    "FRAME_VERSION",
    "DecodedBatch",
    "FrameError",
    "FrameCorruptionError",
    "HistogramDelta",
    "RingTimeoutError",
    "ShmRing",
    "TelemetryPayload",
    "TransportError",
    "decode_batch_frame",
    "decode_frame",
    "decode_result_frame",
    "decode_telemetry_frame",
    "encode_batch_frame",
    "encode_control_frame",
    "encode_result_frame",
    "encode_telemetry_frame",
]
