"""Sharded, micro-batched event-processing runtime.

The scaling layer above the engine: shard routing over the attribute
domain (``sharding``), micro-batch coalescing (``batching``), the bounded
pipeline with backpressure and worker-per-shard execution (``pipeline``),
cheap runtime metrics (``metrics``), and the deterministic replay driver
that proves the whole stack equivalent to the unsharded facade
(``replay``).  See ``docs/RUNTIME.md`` for the architecture.
"""

from repro.runtime.batching import BatchEntry, BatchStats, MicroBatcher
from repro.runtime.metrics import (
    Counter,
    Gauge,
    Histogram,
    HotspotMetricsListener,
    MetricsRegistry,
)
from repro.runtime.pipeline import BackpressurePolicy, EventPipeline
from repro.runtime.replay import (
    ReplayReport,
    StreamProfile,
    generate_mixed_stream,
    normalize_deltas,
    run_replay,
)
from repro.runtime.sharding import (
    EventRoute,
    Shard,
    ShardRange,
    ShardRouter,
    ShardedContinuousQuerySystem,
    merge_deltas,
    scaled_alpha,
)

__all__ = [
    "BackpressurePolicy",
    "BatchEntry",
    "BatchStats",
    "Counter",
    "EventPipeline",
    "EventRoute",
    "Gauge",
    "Histogram",
    "HotspotMetricsListener",
    "MetricsRegistry",
    "MicroBatcher",
    "ReplayReport",
    "Shard",
    "ShardRange",
    "ShardRouter",
    "ShardedContinuousQuerySystem",
    "StreamProfile",
    "generate_mixed_stream",
    "merge_deltas",
    "normalize_deltas",
    "run_replay",
    "scaled_alpha",
]
