"""Deterministic replay: recorded streams, equivalence checking, reports.

The replay driver is the runtime's correctness harness: it feeds one
recorded mixed stream (data inserts/deletes plus subscribe/unsubscribe
events) through both the sharded+batched :class:`EventPipeline` and the
unsharded :class:`~repro.engine.system.ContinuousQuerySystem`, then
compares the per-event result deltas query by query.

Rows in a recorded stream carry pre-assigned surrogate ids, so both
systems apply bit-identical tuples (via the row-level
``insert_r_row``/``insert_s_row`` API and
:func:`~repro.engine.events.replay_data_events`).

Equivalence contract: for every applied event the merged sharded deltas
must equal the unsharded deltas exactly.  Events coalesced away by the
micro-batcher (an insert+delete pair pending in the same batch) are
exempt — under batch-atomic visibility that row was never exposed, so the
reference deltas it produced are transient by construction; the report
counts these separately rather than hiding them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TypeVar

from repro.engine.events import DataEvent, EventKind, QueryEvent, replay_data_events
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.system import ContinuousQuerySystem
from repro.engine.table import RTuple, STuple
from repro.runtime.pipeline import BackpressurePolicy, EventPipeline
from repro.workload.generator import make_band_join_queries, make_select_join_queries
from repro.workload.params import WorkloadParams

_Row = TypeVar("_Row")


@dataclass
class StreamProfile:
    """Knobs for :func:`generate_mixed_stream` (all deterministic per seed).

    ``delete_fraction`` of data events remove a previously inserted row;
    ``churn`` of those deletions target a *recent* row (inserted within the
    last ``recent_window`` events), which is what gives the micro-batcher
    insert+delete pairs to cancel.  With ``churn=0`` deletions only touch
    rows older than ``min_delete_age`` events, so no pair is ever
    co-pending and the batched pipeline must match the unsharded reference
    delta-for-delta on the full stream.
    """

    n_events: int = 10_000
    n_initial_queries: int = 120
    band_fraction: float = 0.3
    query_event_fraction: float = 0.02
    delete_fraction: float = 0.2
    churn: float = 0.0
    min_delete_age: int = 1024
    recent_window: int = 16
    seed: int = 0


def generate_mixed_stream(
    profile: StreamProfile, params: Optional[WorkloadParams] = None
) -> List[object]:
    """A reproducible mixed event stream over the Table 1 distributions.

    Returns a list of :class:`DataEvent`/:class:`QueryEvent`; the first
    ``n_initial_queries`` entries subscribe the starting query population.
    """
    params = params if params is not None else WorkloadParams(seed=profile.seed)
    rng = random.Random(profile.seed)
    stream: List[object] = []
    live_queries: List[object] = []

    def new_query() -> Any:
        if rng.random() < profile.band_fraction:
            return make_band_join_queries(params, 1, rng)[0]
        return make_select_join_queries(params, 1, rng)[0]

    for __ in range(profile.n_initial_queries):
        query = new_query()
        live_queries.append(query)
        stream.append(QueryEvent(EventKind.INSERT, query))

    next_rid = 0
    next_sid = 0
    live_r: List[Tuple[int, RTuple]] = []  # (data-event position, row)
    live_s: List[Tuple[int, STuple]] = []
    grid = params.join_key_grid
    step = params.domain_width / grid if grid else None

    def join_key() -> float:
        x = rng.uniform(params.domain_lo, params.domain_hi)
        if step:
            x = params.domain_lo + round((x - params.domain_lo) / step) * step
        return float(round(x)) if params.integer_valued else x

    def attr() -> float:
        x = rng.uniform(params.domain_lo, params.domain_hi)
        return float(round(x)) if params.integer_valued else x

    def pick_victim(live: List[Tuple[int, _Row]], position: int) -> Optional[_Row]:
        """A deletable row: recent under churn, old otherwise."""
        if rng.random() < profile.churn:
            eligible = [i for i, (at, _) in enumerate(live) if position - at <= profile.recent_window]
        else:
            eligible = [i for i, (at, _) in enumerate(live) if position - at >= profile.min_delete_age]
        if not eligible:
            return None
        index = eligible[rng.randrange(len(eligible))]
        live[index], live[-1] = live[-1], live[index]
        return live.pop()[1]

    position = 0
    while position < profile.n_events:
        roll = rng.random()
        if roll < profile.query_event_fraction:
            if live_queries and rng.random() < 0.5:
                index = rng.randrange(len(live_queries))
                live_queries[index], live_queries[-1] = live_queries[-1], live_queries[index]
                stream.append(QueryEvent(EventKind.DELETE, live_queries.pop()))
            else:
                query = new_query()
                live_queries.append(query)
                stream.append(QueryEvent(EventKind.INSERT, query))
            continue  # query events don't consume a data-event position
        relation = "R" if rng.random() < 0.5 else "S"
        live = live_r if relation == "R" else live_s
        victim = None
        if rng.random() < profile.delete_fraction:
            victim = pick_victim(live, position)
        if victim is not None:
            stream.append(DataEvent(EventKind.DELETE, relation, victim))
        elif relation == "R":
            r_row = RTuple(next_rid, attr(), join_key())
            next_rid += 1
            live_r.append((position, r_row))
            stream.append(DataEvent(EventKind.INSERT, "R", r_row))
        else:
            s_row = STuple(next_sid, join_key(), attr())
            next_sid += 1
            live_s.append((position, s_row))
            stream.append(DataEvent(EventKind.INSERT, "S", s_row))
        position += 1
    return stream


# -- equivalence -------------------------------------------------------------


def normalize_deltas(deltas: Dict[Any, List[Any]]) -> Dict[int, Tuple[int, ...]]:
    """Canonical form for comparison: qid -> sorted row ids."""
    out: Dict[int, Tuple[int, ...]] = {}
    for query, rows in deltas.items():
        if not rows:
            continue
        ids = sorted(
            row.sid if isinstance(row, STuple) else row.rid for row in rows
        )
        out[query.qid] = tuple(ids)
    return out


@dataclass
class ReplayReport:
    """Outcome of one replay equivalence run."""

    events: int = 0
    data_events: int = 0
    applied: int = 0
    coalesced_pairs: int = 0
    compared: int = 0
    mismatches: List[str] = field(default_factory=list)
    reference_results: int = 0
    pipeline_results: int = 0
    metrics: Dict[str, object] = field(default_factory=dict)
    router_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "EQUIVALENT" if self.equivalent else f"{len(self.mismatches)} MISMATCHES"
        return (
            f"replay: {status} — {self.data_events} data events "
            f"({self.applied} applied, {self.coalesced_pairs} pairs coalesced), "
            f"{self.compared} compared, "
            f"{self.pipeline_results} result rows (reference {self.reference_results})"
        )


def run_replay(
    stream: List[object],
    *,
    num_shards: int = 4,
    batch_size: int = 64,
    alpha: Optional[float] = 0.01,
    epsilon: float = 1.0,
    mode: str = "inline",
    backpressure: BackpressurePolicy | str = BackpressurePolicy.BLOCK,
    queue_capacity: int = 4096,
    coalesce: bool = True,
    domain_lo: float = 0.0,
    domain_hi: float = 10_000.0,
    max_mismatches: int = 20,
) -> ReplayReport:
    """Replay ``stream`` through a pipeline and the unsharded reference and
    compare per-event deltas.  Deterministic given the stream."""
    report = ReplayReport(events=len(stream))

    # Reference pass: per-data-event normalized deltas, in stream order.
    reference = ContinuousQuerySystem(alpha=alpha, epsilon=epsilon)
    reference_deltas: List[Dict[int, Tuple[int, ...]]] = []
    data_events: List[DataEvent] = []

    def record(event: DataEvent, deltas: Dict[Any, List[Any]]) -> None:
        normalized = normalize_deltas(deltas)
        reference_deltas.append(normalized)
        data_events.append(event)
        report.reference_results += sum(len(ids) for ids in normalized.values())

    for event in stream:
        if isinstance(event, QueryEvent):
            if event.kind is EventKind.INSERT:
                reference.subscribe(event.query)
            else:
                reference.unsubscribe(event.query)
        else:
            replay_data_events([event], reference, on_result=record)
    report.data_events = len(reference_deltas)

    # Pipeline pass.
    with EventPipeline(
        num_shards=num_shards,
        alpha=alpha,
        epsilon=epsilon,
        domain_lo=domain_lo,
        domain_hi=domain_hi,
        batch_size=batch_size,
        queue_capacity=queue_capacity,
        backpressure=backpressure,
        mode=mode,
        coalesce=coalesce,
    ) as pipeline:
        results = pipeline.run(stream)
        cancelled = {seq for pair in pipeline.cancelled_pairs for seq in pair}
        # A coalesced row is invisible to the whole batch, including events
        # *between* its insert and delete; the strict per-event reference
        # saw it there, so its matches are filtered out before comparing
        # (this is exactly the batch-atomic visibility contract).
        windows = [
            (i, d, data_events[i].relation,
             data_events[i].row.rid if data_events[i].relation == "R"
             else data_events[i].row.sid)
            for i, d in pipeline.cancelled_pairs
        ]
        report.coalesced_pairs = len(pipeline.cancelled_pairs)
        report.applied = len(results)
        got: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        for seq, __, deltas in results:
            normalized = normalize_deltas(deltas)
            got[seq] = normalized
            report.pipeline_results += sum(len(ids) for ids in normalized.values())

        def visible_reference(
            seq: int, want: Dict[int, Tuple[int, ...]]
        ) -> Dict[int, Tuple[int, ...]]:
            """Reference deltas minus matches against rows coalesced away
            while this event was co-pending with them."""
            event = data_events[seq]
            hidden = {
                row_id
                for i, d, relation, row_id in windows
                if i < seq < d and relation != event.relation
            }
            if not hidden:
                return want
            out: Dict[int, Tuple[int, ...]] = {}
            for qid, ids in want.items():
                kept = tuple(x for x in ids if x not in hidden)
                if kept:
                    out[qid] = kept
            return out

        for seq, want in enumerate(reference_deltas):
            if seq in cancelled:
                continue  # never visible under batch-atomic coalescing
            report.compared += 1
            have = got.get(seq, {})
            want = visible_reference(seq, want)
            if have != want:
                if len(report.mismatches) < max_mismatches:
                    report.mismatches.append(
                        f"seq {seq}: pipeline {have!r} != reference {want!r}"
                    )
                else:
                    report.mismatches.append("... (truncated)")
                    break
        report.metrics = pipeline.metrics.snapshot()
        report.router_stats = pipeline.router.stats()
    return report
