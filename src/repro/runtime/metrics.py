"""Cheap runtime metrics: counters, gauges and log-bucketed histograms.

The pipeline instruments its hot path, so every primitive here is a few
arithmetic operations under a small lock (shard workers run on threads).
Histograms bucket observations by powers of two, which is precise enough
for the latency/batch-size distributions the runtime reports and keeps
``observe`` allocation-free.

Lock discipline (enforced statically by lint rules RA003 and
RA201–RA206, and dynamically under ``REPRO_RACECHECK=1``): every shared
field declares its lock with a ``guarded-by`` annotation, and every
access happens under ``with self._lock``.  Readers either return a
single value from inside the lock or copy the fields into locals under
the lock and compute outside it — multi-field reads without the lock can
observe torn snapshots (e.g. a ``_sum`` that includes an observation
``_count`` does not).  Locks come from the project factories so the
``repro racecheck`` witness can track the held-lock DAG.

``MetricsRegistry.snapshot()`` returns a plain nested dict (JSON-friendly);
``render()`` formats it as aligned text for the CLI.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.racecheck import guarded, new_lock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "HotspotMetricsListener",
    "N_HISTOGRAM_BUCKETS",
    "bucket_index",
    "null_registry",
]

#: Number of log2 buckets every histogram carries (bucket 63 saturates, so
#: observations up to 2**62 land in a bounded bucket).
N_HISTOGRAM_BUCKETS = 64


def bucket_index(value: float) -> int:
    """The log2 bucket an observation falls into.

    Bucket 0 holds ``[0, 1)`` (negatives clamp to it); bucket ``i >= 1``
    holds ``[2**(i-1), 2**i)``; the last bucket saturates.  Shared with
    the exposition layer (``repro.obs.export.bucket_bounds`` is its
    inverse) so estimated quantiles agree with how ``observe`` binned.
    """
    index = max(0, int(value).bit_length()) if value >= 1 else 0
    return min(index, N_HISTOGRAM_BUCKETS - 1)


@guarded
class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._lock = new_lock("Counter._lock")
        self._value = 0  # guarded-by: _lock

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


@guarded
class Gauge:
    """A point-in-time value (e.g. current queue depth)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._lock = new_lock("Gauge._lock")
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


def _bucket_quantile(
    buckets: List[int], count: int, max_value: float, q: float
) -> float:
    """Approximate ``q``-quantile (upper bucket bound) from copied state."""
    if count == 0:
        return 0.0
    rank = q * count
    seen = 0
    for index, n in enumerate(buckets):
        seen += n
        if seen >= rank:
            return float(2**index) if index else 1.0
    return max_value


@guarded
class Histogram:
    """Log2-bucketed histogram of non-negative observations.

    Bucket ``i`` counts observations in ``[2**(i-1), 2**i)`` (bucket 0
    holds ``[0, 1)``).  Quantiles are estimated by the upper bound of the
    bucket containing the requested rank, so they are exact to within a
    factor of two — plenty for "did p99 latency explode" dashboards.
    """

    __slots__ = ("_buckets", "_count", "_sum", "_min", "_max", "_lock")

    N_BUCKETS = N_HISTOGRAM_BUCKETS

    def __init__(self) -> None:
        self._lock = new_lock("Histogram._lock")
        self._buckets: List[int] = [0] * self.N_BUCKETS  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._min = float("inf")  # guarded-by: _lock
        self._max = 0.0  # guarded-by: _lock

    def observe(self, value: float) -> None:
        if value < 0:
            value = 0.0
        index = bucket_index(value)
        with self._lock:
            self._buckets[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    def _copy_state(self) -> Tuple[List[int], int, float, float, float]:
        """One consistent (buckets, count, sum, min, max) view."""
        with self._lock:
            return (
                list(self._buckets),
                self._count,
                self._sum,
                self._min,
                self._max,
            )

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (upper bucket bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        buckets, count, _, _, max_value = self._copy_state()
        return _bucket_quantile(buckets, count, max_value, q)

    def merge_delta(
        self,
        *,
        count: int,
        total: float,
        min_value: float,
        max_value: float,
        buckets: List[Tuple[int, int]],
    ) -> None:
        """Fold a remote histogram *delta* into this one.

        The shm-transport telemetry path ships worker-side histograms as
        bucket-wise deltas (``[index, added_count]`` pairs); merging is
        plain addition because log2 bucketing is identical in every
        process.  ``min_value``/``max_value`` describe the remote
        histogram's lifetime extremes, so they fold via min/max.  A
        zero-count delta is a no-op (its min/max are meaningless).
        """
        if count <= 0:
            return
        with self._lock:
            for index, added in buckets:
                if 0 <= index < self.N_BUCKETS:
                    self._buckets[index] += added
            self._count += count
            self._sum += total
            self._min = min(self._min, min_value)
            self._max = max(self._max, max_value)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly state.  ``"buckets"`` lists the nonzero log2
        buckets as ``[index, count]`` pairs (ascending index) — the raw
        distribution the exposition layer's interpolated quantile
        estimator consumes (``repro.obs.export``)."""
        buckets, count, total, min_value, max_value = self._copy_state()
        if count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p99": 0.0, "buckets": []}
        return {
            "count": count,
            "sum": total,
            "min": min_value,
            "max": max_value,
            "mean": total / count,
            "p50": _bucket_quantile(buckets, count, max_value, 0.5),
            "p99": _bucket_quantile(buckets, count, max_value, 0.99),
            "buckets": [[i, n] for i, n in enumerate(buckets) if n],
        }


@guarded
class MetricsRegistry:
    """Named counters/gauges/histograms with one-shot snapshot/rendering.

    Names are slash-separated paths (``pipeline/events_in``,
    ``shard/3/latency_us``); creation is idempotent so producers can call
    ``counter(name)`` on the hot path without pre-registration.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    def __init__(self) -> None:
        self._lock = new_lock("MetricsRegistry._lock")
        self._counters: Dict[str, Counter] = {}  # guarded-by: _lock
        self._gauges: Dict[str, Gauge] = {}  # guarded-by: _lock
        self._histograms: Dict[str, Histogram] = {}  # guarded-by: _lock

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram()
            return self._histograms[name]

    def _instruments(
        self,
    ) -> Tuple[
        List[Tuple[str, Counter]],
        List[Tuple[str, Gauge]],
        List[Tuple[str, Histogram]],
    ]:
        """Sorted (name, instrument) views, taken under the registry lock.
        The instruments themselves are thread-safe, so reading their values
        after release is fine — only dict membership needs the lock."""
        with self._lock:
            return (
                sorted(self._counters.items()),
                sorted(self._gauges.items()),
                sorted(self._histograms.items()),
            )

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All metrics as a plain (JSON-serializable) dict."""
        counters, gauges, histograms = self._instruments()
        return {
            "counters": {name: c.value for name, c in counters},
            "gauges": {name: g.value for name, g in gauges},
            "histograms": {name: h.snapshot() for name, h in histograms},
        }

    def render(self) -> str:
        """Aligned text rendering of the current snapshot."""
        counters, gauges, histograms = self._instruments()
        lines: List[str] = []
        if counters:
            lines.append("counters:")
            width = max(len(name) for name, _ in counters)
            for name, counter in counters:
                lines.append(f"  {name:<{width}}  {counter.value:>12,}")
        if gauges:
            lines.append("gauges:")
            width = max(len(name) for name, _ in gauges)
            for name, gauge in gauges:
                lines.append(f"  {name:<{width}}  {gauge.value:>12,.1f}")
        if histograms:
            lines.append("histograms:")
            width = max(len(name) for name, _ in histograms)
            for name, histogram in histograms:
                h = histogram.snapshot()
                lines.append(
                    f"  {name:<{width}}  count={h['count']:<8,} mean={h['mean']:<10.1f}"
                    f" p50={h['p50']:<10.0f} p99={h['p99']:<10.0f} max={h['max']:,.0f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


class HotspotMetricsListener:
    """Tracker listener that counts hotspot boundary traffic.

    Attach to any :class:`~repro.core.hotspot_tracker.HotspotTracker` via
    ``tracker.add_listener``.  Promotions and demotions are counted
    symmetrically, as are the per-item add/remove callbacks on hotspot
    groups — churn on either axis is one of the signals the runtime
    surfaces (a thrashing tracker means alpha is mis-tuned for the
    workload).  The read properties expose the counts directly for tests
    and callers holding the listener rather than the registry.
    """

    __slots__ = ("_promotions", "_demotions", "_hot_items_added", "_hot_items_removed")

    def __init__(self, registry: MetricsRegistry, prefix: str = "runtime") -> None:
        self._promotions = registry.counter(f"{prefix}/hotspot_promotions")
        self._demotions = registry.counter(f"{prefix}/hotspot_demotions")
        self._hot_items_added = registry.counter(f"{prefix}/hotspot_items_added")
        self._hot_items_removed = registry.counter(f"{prefix}/hotspot_items_removed")

    def on_promoted(self, group: Any) -> None:
        self._promotions.inc()

    def on_demoted(self, group: Any) -> None:
        self._demotions.inc()

    def on_hot_item_added(self, group: Any, item: Any) -> None:
        self._hot_items_added.inc()

    def on_hot_item_removed(self, group: Any, item: Any) -> None:
        self._hot_items_removed.inc()

    @property
    def promotions(self) -> int:
        return self._promotions.value

    @property
    def demotions(self) -> int:
        return self._demotions.value

    @property
    def hot_items_added(self) -> int:
        return self._hot_items_added.value

    @property
    def hot_items_removed(self) -> int:
        return self._hot_items_removed.value


def null_registry() -> Optional[MetricsRegistry]:
    """Placeholder for call sites that want metrics to be optional."""
    return None
