"""Cheap runtime metrics: counters, gauges and log-bucketed histograms.

The pipeline instruments its hot path, so every primitive here is a few
arithmetic operations under a small lock (shard workers run on threads).
Histograms bucket observations by powers of two, which is precise enough
for the latency/batch-size distributions the runtime reports and keeps
``observe`` allocation-free.

``MetricsRegistry.snapshot()`` returns a plain nested dict (JSON-friendly);
``render()`` formats it as aligned text for the CLI.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (e.g. current queue depth)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Log2-bucketed histogram of non-negative observations.

    Bucket ``i`` counts observations in ``[2**(i-1), 2**i)`` (bucket 0
    holds ``[0, 1)``).  Quantiles are estimated by the upper bound of the
    bucket containing the requested rank, so they are exact to within a
    factor of two — plenty for "did p99 latency explode" dashboards.
    """

    __slots__ = ("_buckets", "_count", "_sum", "_min", "_max", "_lock")

    N_BUCKETS = 64

    def __init__(self) -> None:
        self._buckets: List[int] = [0] * self.N_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if value < 0:
            value = 0.0
        index = max(0, int(value).bit_length()) if value >= 1 else 0
        index = min(index, self.N_BUCKETS - 1)
        with self._lock:
            self._buckets[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (upper bucket bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        seen = 0
        for index, n in enumerate(self._buckets):
            seen += n
            if seen >= rank:
                return float(2**index) if index else 1.0
        return self._max

    def snapshot(self) -> Dict[str, float]:
        if self._count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p99": 0.0}
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named counters/gauges/histograms with one-shot snapshot/rendering.

    Names are slash-separated paths (``pipeline/events_in``,
    ``shard/3/latency_us``); creation is idempotent so producers can call
    ``counter(name)`` on the hot path without pre-registration.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram()
            return self._histograms[name]

    def snapshot(self) -> Dict[str, object]:
        """All metrics as a plain (JSON-serializable) dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """Aligned text rendering of the current snapshot."""
        snap = self.snapshot()
        lines: List[str] = []
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(n) for n in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<{width}}  {value:>12,}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(n) for n in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<{width}}  {value:>12,.1f}")
        if snap["histograms"]:
            lines.append("histograms:")
            width = max(len(n) for n in snap["histograms"])
            for name, h in snap["histograms"].items():
                lines.append(
                    f"  {name:<{width}}  count={h['count']:<8,} mean={h['mean']:<10.1f}"
                    f" p50={h['p50']:<10.0f} p99={h['p99']:<10.0f} max={h['max']:,.0f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


class HotspotMetricsListener:
    """Tracker listener that counts hotspot promotions/demotions.

    Attach to any :class:`~repro.core.hotspot_tracker.HotspotTracker` via
    ``tracker.add_listener``; promotion churn is one of the signals the
    runtime surfaces (a thrashing tracker means alpha is mis-tuned for the
    workload).
    """

    def __init__(self, registry: MetricsRegistry, prefix: str = "runtime") -> None:
        self._promotions = registry.counter(f"{prefix}/hotspot_promotions")
        self._demotions = registry.counter(f"{prefix}/hotspot_demotions")

    def on_promoted(self, group) -> None:
        self._promotions.inc()

    def on_demoted(self, group) -> None:
        self._demotions.inc()

    def on_hot_item_added(self, group, item) -> None:
        pass

    def on_hot_item_removed(self, group, item) -> None:
        pass


def null_registry() -> Optional[MetricsRegistry]:
    """Placeholder for call sites that want metrics to be optional."""
    return None
