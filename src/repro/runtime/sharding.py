"""Domain sharding for the continuous-query runtime.

The runtime splits subscriptions across ``K`` shards on two *planes*, one
per query template, because the two templates constrain different
attributes:

* **select plane** — :class:`~repro.engine.queries.SelectJoinQuery`
  subscriptions are routed by their ``rangeC`` selection over the value
  domain, to *every* shard their range overlaps.  S-rows are partitioned
  by ``S.C`` (each row lives in exactly one shard), R-rows are replicated.
  An incoming S-tuple therefore probes a **single** shard — the unsharded
  processors scan all select queries per S-arrival, so this is where
  sharding buys real per-event work reduction, not just parallelism.
  An incoming R-tuple probes every shard, and because the S partition is
  disjoint, the per-shard deltas for a query spanning several shards are
  disjoint partial results whose union equals the unsharded delta.

* **band plane** — :class:`~repro.engine.queries.BandJoinQuery`
  subscriptions are routed by band midpoint over the *difference* domain
  (``S.B - R.B``) to exactly one shard.  A band match depends on the
  difference of two join keys, so no single-attribute partition of the
  base tables can localize it: band shards keep full table replicas and
  every data event reaches every shard.  Sharding here divides the
  per-event probe work (each shard owns a slice of the bands and its own
  hotspot tracker) across workers.

Every routing decision is **static**: it depends only on the coordinates of
the row or query, never on the current subscription set.  That invariant is
what makes the sharded system exactly equivalent to the unsharded
:class:`~repro.engine.system.ContinuousQuerySystem` — a row is stored by
the same rule that later routes its deletion, and a query subscribed
mid-stream finds all prior state already in its shards.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (durability → runtime)
    from repro.durability.manager import DurabilityManager

from repro.engine.events import DataEvent, EventKind, QueryEvent
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.table import RTuple, STuple, TableR, TableS
from repro.operators.band_join import BJSSI
from repro.operators.hotspot_processor import (
    HotspotBandJoinProcessor,
    HotspotSelectJoinProcessor,
)
from repro.obs.hotspot_telemetry import HeadroomSample, HotspotTelemetry
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.operators.select_join import SJSSI
from repro.runtime.metrics import HotspotMetricsListener, MetricsRegistry

DOMAIN_LO = 0.0
DOMAIN_HI = 10_000.0

# The operator layer (repro.operators / repro.engine) is typed ``Any`` at
# the shard boundary: queries and rows flow through the runtime opaquely.
Delta = Dict[Any, List[Any]]
ShardEntry = Tuple[int, DataEvent, bool, bool]
ResultCallback = Callable[[Any, Any, List[Any]], None]


def scaled_alpha(alpha: Optional[float], num_shards: int) -> Optional[float]:
    """Per-shard hotspot threshold keeping the *absolute* promotion bar
    constant across the fleet.

    Each shard's :class:`~repro.core.hotspot_tracker.HotspotTracker`
    promotes a stabbing group once it holds ``alpha * n_shard`` items.  With
    queries split ``K`` ways, an unscaled alpha would drop the absolute bar
    by ``K`` and promote up to ``K * 2/alpha`` groups fleet-wide — and every
    broadcast R-arrival would pay a group probe for each of them, erasing
    the sharding win.  Scaling to ``alpha * K`` (capped at 1) restores the
    unsharded bar ``alpha * n_total``, so the fleet-wide group count (and
    hence broadcast probe cost) matches the unsharded processor's.
    """
    if alpha is None:
        return None
    return min(1.0, alpha * num_shards)


@dataclass(frozen=True, slots=True)
class ShardRange:
    """One contiguous slice of a routing domain (for introspection; the
    router itself routes by bisecting the boundary list, so the outermost
    ranges implicitly extend to infinity)."""

    index: int
    lo: float
    hi: float


@dataclass(frozen=True, slots=True)
class EventRoute:
    """Where a data event goes.

    ``select_shard`` is the single shard whose C-slice owns the row (only
    set for S events); every shard in ``shards`` applies the event to its
    band plane, and R events additionally probe/store on every select
    plane.
    """

    shards: Tuple[int, ...]
    select_shard: Optional[int]

    def flags(self, index: int, relation: str) -> Tuple[bool, bool]:
        """(select_probe, select_state) for shard ``index``."""
        if relation == "R":
            return True, True
        owns = self.select_shard == index
        return owns, owns


class ShardRouter:
    """Routes queries and data events to shard indices.

    The value domain ``[domain_lo, domain_hi]`` is split into ``num_shards``
    contiguous ranges for the select plane; the difference domain
    ``[-(width), +width]`` is split likewise for the band plane.  Routing
    clamps out-of-domain coordinates into the edge shards, which affects
    load balance only, never correctness.
    """

    def __init__(
        self,
        num_shards: int,
        *,
        domain_lo: float = DOMAIN_LO,
        domain_hi: float = DOMAIN_HI,
    ):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if domain_lo >= domain_hi:
            raise ValueError("domain_lo must be < domain_hi")
        self.num_shards = num_shards
        self.domain_lo = domain_lo
        self.domain_hi = domain_hi
        width = domain_hi - domain_lo
        self._value_bounds = [
            domain_lo + width * i / num_shards for i in range(1, num_shards)
        ]
        self._band_bounds = [
            -width + 2 * width * i / num_shards for i in range(1, num_shards)
        ]
        # Rebalancing stats: query placements and event routing per shard.
        self.select_queries_per_shard = [0] * num_shards
        self.band_queries_per_shard = [0] * num_shards
        self.events_per_shard = [0] * num_shards
        self.select_probes_per_shard = [0] * num_shards

    # -- routing domains -----------------------------------------------------

    def value_ranges(self) -> List[ShardRange]:
        bounds = [self.domain_lo, *self._value_bounds, self.domain_hi]
        return [ShardRange(i, bounds[i], bounds[i + 1]) for i in range(self.num_shards)]

    def band_ranges(self) -> List[ShardRange]:
        width = self.domain_hi - self.domain_lo
        bounds = [-width, *self._band_bounds, width]
        return [ShardRange(i, bounds[i], bounds[i + 1]) for i in range(self.num_shards)]

    # -- query routing -------------------------------------------------------

    def shard_for_value(self, c: float) -> int:
        """The select-plane shard owning value coordinate ``c``."""
        return bisect_right(self._value_bounds, c)

    def shard_for_band(self, query: BandJoinQuery) -> int:
        mid = (query.band.lo + query.band.hi) / 2.0
        return bisect_right(self._band_bounds, mid)

    def shards_for_query(self, query: Any) -> List[int]:
        """All shard indices a subscription registers in.

        Select-joins go to every shard their ``rangeC`` overlaps (their
        partial results partition along the S-row C-partition); band joins
        go to the single shard containing their band midpoint (band shards
        hold full replicas, so multi-registration would duplicate deltas).
        """
        if isinstance(query, SelectJoinQuery):
            lo = self.shard_for_value(query.range_c.lo)
            hi = self.shard_for_value(query.range_c.hi)
            return list(range(lo, hi + 1))
        if isinstance(query, BandJoinQuery):
            return [self.shard_for_band(query)]
        raise TypeError(f"unsupported query type: {type(query).__name__}")

    # -- event routing -------------------------------------------------------

    def route_event(self, event: DataEvent) -> EventRoute:
        """The shards an event can affect (probing and/or state).

        Data events reach every shard's band plane (band matches cannot be
        localized) and, for R events, every select plane; S events probe
        and store on exactly one select plane — the shard owning ``row.c``.
        """
        everywhere = tuple(range(self.num_shards))
        if event.relation == "S":
            return EventRoute(everywhere, self.shard_for_value(event.row.c))
        return EventRoute(everywhere, None)

    # -- stats ---------------------------------------------------------------

    def note_query(self, query: Any, indices: Sequence[int], delta: int) -> None:
        counts = (
            self.select_queries_per_shard
            if isinstance(query, SelectJoinQuery)
            else self.band_queries_per_shard
        )
        for index in indices:
            counts[index] += delta

    def note_event(self, route: EventRoute) -> None:
        for index in route.shards:
            self.events_per_shard[index] += 1
        if route.select_shard is not None:
            self.select_probes_per_shard[route.select_shard] += 1

    @staticmethod
    def _imbalance(loads: Sequence[int]) -> float:
        total = sum(loads)
        if not total:
            return 1.0
        return max(loads) / (total / len(loads))

    def stats(self) -> Dict[str, object]:
        """Load distribution snapshot; ``*_imbalance`` is max-shard load over
        mean-shard load (1.0 = perfectly balanced), the signal a rebalancer
        would act on by re-splitting the domain."""
        return {
            "num_shards": self.num_shards,
            "select_queries_per_shard": list(self.select_queries_per_shard),
            "band_queries_per_shard": list(self.band_queries_per_shard),
            "events_per_shard": list(self.events_per_shard),
            "select_probes_per_shard": list(self.select_probes_per_shard),
            "select_query_imbalance": self._imbalance(self.select_queries_per_shard),
            "band_query_imbalance": self._imbalance(self.band_queries_per_shard),
            "select_probe_imbalance": self._imbalance(self.select_probes_per_shard),
        }


class Shard:
    """One shard's processors and table state.

    Holds a band-join processor over full table replicas and a select-join
    processor over the C-partitioned S slice; ``table_r`` is shared by both
    planes (R is replicated everywhere either way).
    """

    def __init__(
        self,
        index: int,
        *,
        alpha: Optional[float] = 0.01,
        epsilon: float = 1.0,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.index = index
        self.tracer = tracer
        self.table_r = TableR()
        self.table_s_band = TableS()
        self.table_s_select = TableS()
        self.band: Any
        self.select: Any
        self.telemetry: Optional[HotspotTelemetry] = None
        if alpha is None:
            self.band = BJSSI(self.table_s_band, self.table_r, epsilon=epsilon)
            self.select = SJSSI(self.table_s_select, self.table_r, epsilon=epsilon)
        else:
            self.band = HotspotBandJoinProcessor(
                self.table_s_band, self.table_r, alpha=alpha, epsilon=epsilon
            )
            self.select = HotspotSelectJoinProcessor(
                self.table_s_select, self.table_r, alpha=alpha, epsilon=epsilon
            )
            if metrics is not None:
                listener = HotspotMetricsListener(metrics)
                self.band.tracker.add_listener(listener)
                self.select.tracker.add_listener(listener)
                self.telemetry = HotspotTelemetry(metrics, tracer)
                self.telemetry.attach(self.band.tracker, f"shard/{index}/band")
                self.telemetry.attach(self.select.tracker, f"shard/{index}/select")

    # -- subscriptions -------------------------------------------------------

    def subscribe(self, query: Any) -> None:
        if isinstance(query, BandJoinQuery):
            self.band.add_query(query)
        else:
            self.select.add_query(query)

    def unsubscribe(self, query: Any) -> None:
        if isinstance(query, BandJoinQuery):
            self.band.remove_query(query)
        else:
            self.select.remove_query(query)

    @property
    def query_count(self) -> int:
        return self.band.query_count + self.select.query_count

    def sample_telemetry(self) -> List[HeadroomSample]:
        """Refresh this shard's headroom gauges (both planes) and return
        the samples; ``[]`` when telemetry is not attached.  Full tau
        sweep per plane — reporting-interval cost, not per-event.  The
        shm worker calls this before shipping a telemetry frame so the
        parent merges current headroom, not last-batch headroom."""
        return self.telemetry.sample() if self.telemetry is not None else []

    # -- event application ---------------------------------------------------

    def apply(
        self, event: DataEvent, *, select_probe: bool = True, select_state: bool = True
    ) -> Delta:
        """Apply one data event: probe (insertions), then install/remove
        state.  ``select_probe``/``select_state`` gate the select plane for
        S events routed to other shards' C-slices."""
        row = event.row
        deltas: Delta = {}
        if event.kind is EventKind.INSERT:
            if event.relation == "R":
                deltas.update(self.band.process_r(row))
                deltas.update(self.select.process_r(row))
                self.table_r.insert(row)
            else:
                deltas.update(self.band.process_s(row))
                if select_probe:
                    deltas.update(self.select.process_s(row))
                self.table_s_band.insert(row)
                if select_state:
                    self.table_s_select.insert(row)
        else:
            if event.relation == "R":
                self.table_r.delete(row)
            else:
                self.table_s_band.delete(row)
                if select_state:
                    self.table_s_select.delete(row)
        return deltas

    def apply_batch(
        self, entries: Sequence[ShardEntry]
    ) -> List[Tuple[int, Delta]]:
        """Apply ``(seq, event, select_probe, select_state)`` entries in
        order, returning per-event deltas tagged with their sequence
        numbers (the pipeline merges them across shards by seq).

        Runs of consecutive same-relation INSERTs take the operators'
        batch fast path: an R-arrival probe reads only S-side state and
        vice versa, so every row in such a run sees exactly the table state
        the per-event path would have shown it, and the run can be probed
        in one pass before its rows are installed.  Deletes (no deltas,
        table mutations) and relation switches are run boundaries applied
        singly.
        """
        out: List[Tuple[int, Delta]] = []
        i = 0
        n = len(entries)
        while i < n:
            seq, event, select_probe, select_state = entries[i]
            if event.kind is not EventKind.INSERT:
                out.append(
                    (seq, self.apply(event, select_probe=select_probe, select_state=select_state))
                )
                i += 1
                continue
            relation = event.relation
            j = i + 1
            while j < n:
                nxt = entries[j][1]
                if nxt.kind is not EventKind.INSERT or nxt.relation != relation:
                    break
                j += 1
            if j - i == 1:
                out.append(
                    (seq, self.apply(event, select_probe=select_probe, select_state=select_state))
                )
            elif relation == "R":
                out.extend(self._apply_r_insert_run(entries[i:j]))
            else:
                out.extend(self._apply_s_insert_run(entries[i:j]))
            i = j
        return out

    def _apply_r_insert_run(
        self, entries: Sequence[ShardEntry]
    ) -> List[Tuple[int, Delta]]:
        """Probe a run of R-inserts against the (unchanging) S state in one
        batch, then install the rows in arrival order."""
        with self.tracer.span(
            "fastpath.run", shard=self.index, relation="R", rows=len(entries)
        ):
            return self._r_insert_run(entries)

    def _r_insert_run(
        self, entries: Sequence[ShardEntry]
    ) -> List[Tuple[int, Delta]]:
        rows = [entry[1].row for entry in entries]
        band_batch = getattr(self.band, "process_r_batch", None)
        if band_batch is not None:
            band_parts = band_batch(rows)
        else:
            band_parts = [self.band.process_r(row) for row in rows]
        select_batch = getattr(self.select, "process_r_batch", None)
        if select_batch is not None:
            select_parts = select_batch(rows)
        else:
            select_parts = [self.select.process_r(row) for row in rows]
        out: List[Tuple[int, Delta]] = []
        for entry, band_d, select_d in zip(entries, band_parts, select_parts):
            deltas: Delta = dict(band_d)
            deltas.update(select_d)
            self.table_r.insert(entry[1].row)
            out.append((entry[0], deltas))
        return out

    def _apply_s_insert_run(
        self, entries: Sequence[ShardEntry]
    ) -> List[Tuple[int, Delta]]:
        """Symmetric run application for S-inserts; the select plane is
        probed only for the rows whose ``select_probe`` flag is set (rows
        owned by this shard's C-slice)."""
        with self.tracer.span(
            "fastpath.run", shard=self.index, relation="S", rows=len(entries)
        ):
            return self._s_insert_run(entries)

    def _s_insert_run(
        self, entries: Sequence[ShardEntry]
    ) -> List[Tuple[int, Delta]]:
        rows = [entry[1].row for entry in entries]
        band_batch = getattr(self.band, "process_s_batch", None)
        if band_batch is not None:
            band_parts = band_batch(rows)
        else:
            band_parts = [self.band.process_s(row) for row in rows]
        select_parts: List[Delta] = [{} for _ in rows]
        probe_idx = [k for k, entry in enumerate(entries) if entry[2]]
        if probe_idx:
            probe_rows = [rows[k] for k in probe_idx]
            select_batch = getattr(self.select, "process_s_batch", None)
            if select_batch is not None:
                probed = select_batch(probe_rows)
            else:
                probed = [self.select.process_s(row) for row in probe_rows]
            for k, part in zip(probe_idx, probed):
                select_parts[k] = part
        out: List[Tuple[int, Delta]] = []
        for k, (seq, event, __, select_state) in enumerate(entries):
            deltas: Delta = dict(band_parts[k])
            deltas.update(select_parts[k])
            row = event.row
            self.table_s_band.insert(row)
            if select_state:
                self.table_s_select.insert(row)
            out.append((seq, deltas))
        return out


def _row_sort_key(row: Any) -> Tuple[float, float, int]:
    if isinstance(row, STuple):
        return (row.b, row.c, row.sid)
    return (row.b, row.a, row.rid)


def merge_deltas(parts: Sequence[Delta]) -> Delta:
    """Merge per-shard delta dicts into one, deterministically.

    Partial match lists for the same query (a select-join spanning several
    C-slices) are concatenated and sorted by row coordinates, so the merged
    result is independent of shard evaluation order.
    """
    merged: Delta = {}
    for part in parts:
        for query, rows in part.items():
            if not rows:
                continue
            if query in merged:
                merged[query] = merged[query] + list(rows)
            else:
                merged[query] = list(rows)
    for query, rows in merged.items():
        rows.sort(key=_row_sort_key)
    return merged


class ShardedContinuousQuerySystem:
    """Drop-in sharded counterpart of
    :class:`~repro.engine.system.ContinuousQuerySystem`.

    Applies every event synchronously across its shards (the
    :class:`~repro.runtime.pipeline.EventPipeline` adds batching, queues
    and parallel workers on top).  Exposes the same subscription/update
    API and counters, and produces identical per-event result deltas.
    """

    def __init__(
        self,
        *,
        num_shards: int = 4,
        alpha: Optional[float] = 0.01,
        epsilon: float = 1.0,
        domain_lo: float = DOMAIN_LO,
        domain_hi: float = DOMAIN_HI,
        metrics: Optional[MetricsRegistry] = None,
        durability: Optional["DurabilityManager"] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.router = ShardRouter(
            num_shards, domain_lo=domain_lo, domain_hi=domain_hi
        )
        self.alpha = alpha
        self.epsilon = epsilon
        self.durability = durability
        self.tracer = tracer
        per_shard_alpha = scaled_alpha(alpha, num_shards)
        self.shards = [
            Shard(i, alpha=per_shard_alpha, epsilon=epsilon, metrics=metrics,
                  tracer=tracer)
            for i in range(num_shards)
        ]
        self._placements: Dict[int, List[int]] = {}
        self._callbacks: Dict[int, ResultCallback] = {}
        self._queries: Dict[int, Any] = {}
        self._r_ids = itertools.count()
        self._s_ids = itertools.count()
        self.events_processed = 0
        self.results_produced = 0

    # -- subscriptions -------------------------------------------------------

    def subscribe(self, query: Any, on_results: Optional[ResultCallback] = None) -> Any:
        indices = self.router.shards_for_query(query)
        if query.qid in self._placements:
            raise ValueError(f"duplicate query id {query.qid}")
        self._log(QueryEvent(EventKind.INSERT, query))
        for index in indices:
            self.shards[index].subscribe(query)
        self._placements[query.qid] = indices
        self._queries[query.qid] = query
        self.router.note_query(query, indices, +1)
        if on_results is not None:
            self._callbacks[query.qid] = on_results
        return query

    def unsubscribe(self, query: Any) -> None:
        # Resolve by qid: after recovery the registered instance is a decoded
        # copy, and the engine indexes subscriptions by object identity.
        query = self._queries.get(query.qid, query)
        self._log(QueryEvent(EventKind.DELETE, query))
        indices = self._placements.pop(query.qid)
        self._queries.pop(query.qid)
        for index in indices:
            self.shards[index].unsubscribe(query)
        self.router.note_query(query, indices, -1)
        self._callbacks.pop(query.qid, None)

    @property
    def subscription_count(self) -> int:
        return len(self._placements)

    def query_by_id(self, qid: int) -> Any:
        return self._queries[qid]

    # -- durability hooks ----------------------------------------------------

    def _log(self, event: object) -> None:
        """Log-before-apply when a durability manager is wired in (no-op
        while recovery replays the WAL back into this system)."""
        if self.durability is not None and not self.durability.replaying:
            self.durability.log_event(event)

    def _after_apply(self) -> None:
        if self.durability is not None and not self.durability.replaying:
            if self.durability.checkpoint_due:
                self.durability.checkpoint(self)

    # -- event application ---------------------------------------------------

    def apply(self, event: DataEvent) -> Delta:
        """Route one data event through every affected shard and merge the
        per-shard deltas."""
        self._log(event)
        route = self.router.route_event(event)
        self.router.note_event(route)
        parts: List[Delta] = []
        for index in route.shards:
            select_probe, select_state = route.flags(index, event.relation)
            parts.append(
                self.shards[index].apply(
                    event, select_probe=select_probe, select_state=select_state
                )
            )
        deltas = merge_deltas(parts)
        self._dispatch(event.row, deltas)
        self._after_apply()
        return deltas

    def apply_batch(self, events: Sequence[DataEvent]) -> List[Delta]:
        """Route a micro-batch through every affected shard's batch fast
        path and merge the per-shard deltas per event, in arrival order.

        Delta-identical to calling :meth:`apply` per event: each shard
        receives its entries in sequence order, so run segmentation inside
        :meth:`Shard.apply_batch` sees the same event interleaving the
        per-event path would.
        """
        with self.tracer.span("batch", events=len(events)):
            return self._apply_batch(events)

    def _apply_batch(self, events: Sequence[DataEvent]) -> List[Delta]:
        per_shard: List[List[ShardEntry]] = [
            [] for _ in self.shards
        ]
        for event in events:
            self._log(event)
        if self.durability is not None and not self.durability.replaying:
            self.durability.sync()
        for seq, event in enumerate(events):
            route = self.router.route_event(event)
            self.router.note_event(route)
            for index in route.shards:
                select_probe, select_state = route.flags(index, event.relation)
                per_shard[index].append((seq, event, select_probe, select_state))
        parts_by_seq: List[List[Delta]] = [[] for _ in events]
        for index, entries in enumerate(per_shard):
            if not entries:
                continue
            for seq, deltas in self.shards[index].apply_batch(entries):
                parts_by_seq[seq].append(deltas)
        out: List[Delta] = []
        for event, parts in zip(events, parts_by_seq):
            deltas = merge_deltas(parts)
            self._dispatch(event.row, deltas)
            out.append(deltas)
        self._after_apply()
        return out

    def sample_hotspots(self) -> List[HeadroomSample]:
        """Refresh and return every shard plane's I2 headroom sample (full
        tau sweep per plane — reporting-interval cost, not per-event)."""
        samples: List[HeadroomSample] = []
        for shard in self.shards:
            samples.extend(shard.sample_telemetry())
        return samples

    # Facade-compatible convenience constructors around ``apply``.

    def insert_r(self, a: float, b: float) -> Delta:
        return self.insert_r_row(RTuple(next(self._r_ids), a, b))

    def insert_s(self, b: float, c: float) -> Delta:
        return self.insert_s_row(STuple(next(self._s_ids), b, c))

    def insert_r_row(self, row: RTuple) -> Delta:
        return self.apply(DataEvent(EventKind.INSERT, "R", row))

    def insert_s_row(self, row: STuple) -> Delta:
        return self.apply(DataEvent(EventKind.INSERT, "S", row))

    def delete_r(self, row: RTuple) -> None:
        self.apply(DataEvent(EventKind.DELETE, "R", row))

    def delete_s(self, row: STuple) -> None:
        self.apply(DataEvent(EventKind.DELETE, "S", row))

    def _dispatch(self, row: Any, deltas: Delta) -> None:
        self.events_processed += 1
        for query, matches in deltas.items():
            self.results_produced += len(matches)
            callback = self._callbacks.get(query.qid)
            if callback is not None:
                callback(query, row, matches)
