"""Hotspot tracking (Section 2.2, Theorem 1).

The tracker maintains, over a dynamic set of items with interval ranges:

* ``I_H`` — an explicit list of *hotspot groups*, each stabbed by a common
  point and holding at least an (alpha/2) fraction of all items;
* ``I_S`` — a dynamic stabbing partition (Section 2.3) over the remaining
  *scattered* items.

Groups move across the boundary with hysteresis: a scattered group that
reaches ``alpha * n`` items is **promoted** into ``I_H``; a hotspot group
that falls below ``(alpha / 2) * n`` items is **demoted**, its items
re-inserted into the scattered partition one by one.  The paper's credit
argument (invariant I3) shows the amortized number of items crossing the
boundary is at most 5 per update; the tracker counts every crossing so the
property tests can check the bound directly.

Invariants maintained at all times (Theorem 1):

* (I1) ``I_H`` contains every alpha-hotspot, only (alpha/2)-hotspots, hence
  at most ``2 / alpha`` groups;
* (I2) the overall partition has at most ``(1 + eps) * tau(I) + 2 / alpha``
  groups;
* (I3) amortized boundary crossings per update <= 5.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, List, Optional, Protocol

from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.partition_base import (
    DynamicGroup,
    DynamicStabbingPartitionBase,
    StabbingGroupView,
    T,
)
from repro.core.stabbing import identity_interval


class HotspotListener(Protocol[T]):
    """Callbacks fired as groups cross the hotspot/scattered boundary.

    The SSI-on-hotspots processors use these to build (on promote) and drop
    (on demote) the per-hotspot index structures.
    """

    def on_promoted(self, group: DynamicGroup[T]) -> None: ...

    def on_demoted(self, group: DynamicGroup[T]) -> None: ...

    def on_hot_item_added(self, group: DynamicGroup[T], item: T) -> None: ...

    def on_hot_item_removed(self, group: DynamicGroup[T], item: T) -> None: ...


def _default_partition_factory(
    epsilon: float, interval_of: Callable[[T], Interval]
) -> DynamicStabbingPartitionBase[T]:
    return LazyStabbingPartition(epsilon=epsilon, interval_of=interval_of)


class HotspotTracker(Generic[T]):
    """Tracks alpha-hotspots of a dynamic interval set (Theorem 1)."""

    def __init__(
        self,
        items: Optional[List[T]] = None,
        *,
        alpha: float,
        epsilon: float = 1.0,
        interval_of: Callable[[T], Interval] = identity_interval,
        partition_factory: Callable[
            [float, Callable[[T], Interval]], DynamicStabbingPartitionBase[T]
        ] = _default_partition_factory,
    ):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self._alpha = alpha
        self._interval_of = interval_of
        self._hot: List[DynamicGroup[T]] = []
        self._hot_of: Dict[int, DynamicGroup[T]] = {}
        self._scattered = partition_factory(epsilon, interval_of)
        self._n = 0
        self._listeners: List[HotspotListener[T]] = []
        self.update_count = 0
        # Boundary-crossing counters for the (I3) bound.
        self.moves_into_scattered = 0
        self.moves_out_of_scattered = 0
        if items:
            for item in items:
                self.insert(item)

    # -- listener plumbing --------------------------------------------------

    def add_listener(self, listener: HotspotListener[T]) -> None:
        self._listeners.append(listener)

    # -- accessors --------------------------------------------------------------

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def interval_of(self) -> Callable[[T], Interval]:
        return self._interval_of

    @property
    def hotspot_groups(self) -> List[DynamicGroup[T]]:
        """The current hotspot groups I_H (at most 2/alpha of them)."""
        return list(self._hot)

    @property
    def scattered(self) -> DynamicStabbingPartitionBase[T]:
        """The dynamic stabbing partition I_S over the scattered items."""
        return self._scattered

    def __len__(self) -> int:
        return self._n

    @property
    def hotspot_item_count(self) -> int:
        return sum(group.size for group in self._hot)

    @property
    def hotspot_coverage(self) -> float:
        """Fraction of items currently living in hotspot groups."""
        return self.hotspot_item_count / self._n if self._n else 0.0

    def is_hotspot_item(self, item: T) -> bool:
        return id(item) in self._hot_of

    def boundary_moves(self) -> int:
        """Total items that have crossed the H/S boundary (for invariant I3)."""
        return self.moves_into_scattered + self.moves_out_of_scattered

    # -- updates -----------------------------------------------------------------

    def insert(self, item: T) -> None:
        """Insert an item: into an overlapping hotspot group if one exists
        (O(|I_H|) = O(1/alpha) brute force, as the paper allows), otherwise
        into the scattered partition."""
        self._n += 1
        self.update_count += 1
        interval = self._interval_of(item)
        target: Optional[DynamicGroup[T]] = None
        for group in self._hot:
            if group.would_remain_stabbed(interval):
                target = group
                break
        if target is not None:
            target.add(item)
            self._hot_of[id(item)] = target
            for listener in self._listeners:
                listener.on_hot_item_added(target, item)
        else:
            self._scattered.insert(item)
        self._rebalance()

    def delete(self, item: T) -> None:
        self._n -= 1
        self.update_count += 1
        group = self._hot_of.pop(id(item), None)
        if group is not None:
            group.remove(item)
            for listener in self._listeners:
                listener.on_hot_item_removed(group, item)
            if group.size == 0:
                self._hot.remove(group)
                for listener in self._listeners:
                    listener.on_demoted(group)
        else:
            self._scattered.delete(item)
        self._rebalance()

    # -- promote / demote -----------------------------------------------------------

    def _rebalance(self) -> None:
        """Promote/demote until no group violates its threshold.

        Promotions can follow demotions (demoted items may pile into an
        existing scattered group), so this loops to a fixpoint; each pass
        moves items across the boundary, and the credit argument bounds the
        total work.
        """
        while True:
            if self._promote_one():
                continue
            if self._demote_one():
                continue
            break

    def _promote_one(self) -> bool:
        threshold = self._alpha * self._n
        candidate: Optional[StabbingGroupView[T]] = None
        for group in self._scattered.groups:
            if group.size >= threshold:
                candidate = group
                break
        if candidate is None:
            return False
        # Snapshot first: deleting from the scattered partition may trigger a
        # reconstruction that redistributes groups.
        members = list(candidate)
        hot_group: DynamicGroup[T] = DynamicGroup(self._interval_of)
        for item in members:
            self._scattered.delete(item)
            hot_group.add(item)
            self._hot_of[id(item)] = hot_group
            self.moves_out_of_scattered += 1
        self._hot.append(hot_group)
        for listener in self._listeners:
            listener.on_promoted(hot_group)
        return True

    def _demote_one(self) -> bool:
        threshold = (self._alpha / 2.0) * self._n
        candidate: Optional[DynamicGroup[T]] = None
        for group in self._hot:
            if group.size < threshold:
                candidate = group
                break
        if candidate is None:
            return False
        self._hot.remove(candidate)
        for listener in self._listeners:
            listener.on_demoted(candidate)
        for item in list(candidate):
            del self._hot_of[id(item)]
            self._scattered.insert(item)
            self.moves_into_scattered += 1
        return True

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Assert invariants I1 and I2 plus structural consistency (tests)."""
        from repro.core.stabbing import stabbing_number

        # Structural: every hotspot group stabbed; counts consistent.
        for group in self._hot:
            assert group.size > 0
            point = group.stabbing_point
            for item in group:
                assert self._interval_of(item).contains(point)
        self._scattered.validate()
        total = self.hotspot_item_count + self._scattered.total_items()
        assert total == self._n, f"item count drift: {total} != {self._n}"
        if self._n == 0:
            return
        # (I1): hotspot groups are at least (alpha/2)-hotspots, scattered
        # groups are below the alpha threshold, and |I_H| <= 2/alpha.
        for group in self._hot:
            assert group.size >= (self._alpha / 2.0) * self._n
        for group in self._scattered.groups:
            assert group.size < self._alpha * self._n
        assert len(self._hot) <= 2.0 / self._alpha
        # (I2): |I| <= (1 + eps) tau(I) + 2/alpha.
        all_items = [item for group in self._hot for item in group]
        for group in self._scattered.groups:
            all_items.extend(group)
        tau = stabbing_number(all_items, self._interval_of)
        epsilon = getattr(self._scattered, "epsilon", 1.0)
        total_groups = len(self._hot) + len(self._scattered)
        assert total_groups <= (1.0 + epsilon) * tau + 2.0 / self._alpha + 1e-9
