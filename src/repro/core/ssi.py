"""The stabbing set index (SSI) framework (Section 2.1).

An SSI derives one interval per continuous query, maintains a stabbing
partition of those intervals, and attaches a *per-group data structure* to
every group: "SSI is completely agnostic about the underlying data structure
used" --- a pair of sorted endpoint sequences for band joins (Section 3.1),
an R-tree of query rectangles for select-joins (Section 3.2).

This class supplies the agnostic plumbing: it listens to a dynamic stabbing
partition and keeps exactly one user-built structure per live group, adding
and removing member queries as the partition evolves and rebuilding
everything after a reconstruction stage.  The join processors iterate
``(stabbing_point, structure)`` pairs and never touch partition internals.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.core.partition_base import (
    DynamicStabbingPartitionBase,
    StabbingGroupView,
    T,
)

S = TypeVar("S")


class StabbingSetIndex(Generic[T, S]):
    """Per-group structures synchronized with a dynamic stabbing partition.

    Parameters
    ----------
    partition:
        The dynamic stabbing partition over the continuous queries (any of
        :class:`~repro.core.lazy_partition.LazyStabbingPartition` or
        :class:`~repro.core.refined_partition.RefinedStabbingPartition`).
    make_structure:
        Builds an empty per-group structure.
    add_item / remove_item:
        Maintain a structure as members join or leave its group.
    """

    def __init__(
        self,
        partition: DynamicStabbingPartitionBase[T],
        *,
        make_structure: Callable[[], S],
        add_item: Callable[[S, T], None],
        remove_item: Callable[[S, T], None],
    ):
        self._partition = partition
        self._make = make_structure
        self._add = add_item
        self._remove = remove_item
        self._structures: Dict[int, S] = {}
        self._group_refs: Dict[int, StabbingGroupView[T]] = {}
        self._snapshot: Optional[Tuple[List[float], List[S]]] = None
        partition.add_listener(self)
        self.rebuild_count = 0
        self.snapshot_builds = 0
        self._bootstrap()

    def _bootstrap(self) -> None:
        self._structures = {}
        self._group_refs = {}
        self._snapshot = None
        for group in self._partition.groups:
            structure = self._make()
            for item in group:
                self._add(structure, item)
            self._structures[id(group)] = structure
            self._group_refs[id(group)] = group

    # -- partition listener callbacks ---------------------------------------
    #
    # A group's stabbing point only ever changes through these callbacks
    # (membership change, group creation/destruction, or a full rebuild), so
    # invalidating the dense snapshot here is sufficient for it never to go
    # stale.

    def on_group_created(self, group: StabbingGroupView[T]) -> None:
        self._structures[id(group)] = self._make()
        self._group_refs[id(group)] = group
        self._snapshot = None

    def on_group_destroyed(self, group: StabbingGroupView[T]) -> None:
        self._structures.pop(id(group), None)
        self._group_refs.pop(id(group), None)
        self._snapshot = None

    def on_item_added(self, group: StabbingGroupView[T], item: T) -> None:
        self._add(self._structures[id(group)], item)
        self._snapshot = None

    def on_item_removed(self, group: StabbingGroupView[T], item: T) -> None:
        self._remove(self._structures[id(group)], item)
        self._snapshot = None

    def on_rebuilt(self, partition: DynamicStabbingPartitionBase[T]) -> None:
        self.rebuild_count += 1
        self._bootstrap()

    # -- query-side API ----------------------------------------------------

    @property
    def partition(self) -> DynamicStabbingPartitionBase[T]:
        return self._partition

    def insert(self, item: T) -> None:
        """Insert a continuous query (delegates to the partition)."""
        self._partition.insert(item)

    def delete(self, item: T) -> None:
        """Delete a continuous query (delegates to the partition)."""
        self._partition.delete(item)

    def structure_of(self, group: Any) -> S:
        return self._structures[id(group)]

    def group_table(self) -> Tuple[List[float], List[S]]:
        """Dense snapshot of the live groups: parallel lists of stabbing
        points and per-group structures.

        Built lazily and cached; every partition listener callback
        invalidates it, so the cache is patched exactly as often as the
        partition actually changes rather than per probe.  Callers must not
        mutate the returned lists.
        """
        snapshot = self._snapshot
        if snapshot is None:
            points: List[float] = []
            structures: List[S] = []
            for key, group in self._group_refs.items():
                points.append(group.stabbing_point)
                structures.append(self._structures[key])
            snapshot = (points, structures)
            self._snapshot = snapshot
            self.snapshot_builds += 1
        return snapshot

    def groups(self) -> Iterator[Tuple[float, S]]:
        """Iterate (stabbing point, per-group structure) pairs.

        This is the loop every SSI join processor runs per incoming tuple;
        its length is the stabbing number tau, not the number of queries.
        """
        points, structures = self.group_table()
        return zip(points, structures)

    def group_count(self) -> int:
        return len(self._structures)

    def __len__(self) -> int:
        return self._partition.total_items()
