"""The paper's primary contribution: stabbing partitions, dynamic
maintenance, hotspot tracking, and the stabbing set index (SSI) framework.
"""

from repro.core.intervals import (
    Interval,
    common_intersection,
    endpoints_equal,
    same_interval,
)
from repro.core.stabbing import (
    StabbingGroup,
    StabbingPartition,
    canonical_stabbing_partition,
    stabbing_number,
)
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.refined_partition import RefinedStabbingPartition
from repro.core.hotspot_tracker import HotspotTracker
from repro.core.ssi import StabbingSetIndex

__all__ = [
    "Interval",
    "common_intersection",
    "endpoints_equal",
    "same_interval",
    "StabbingGroup",
    "StabbingPartition",
    "canonical_stabbing_partition",
    "stabbing_number",
    "LazyStabbingPartition",
    "RefinedStabbingPartition",
    "HotspotTracker",
    "StabbingSetIndex",
]
