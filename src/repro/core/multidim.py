"""Multi-dimensional stabbing partitions (Section 6 future work).

The paper closes with: "it would be interesting to extend the idea of
clustering by stabbing partition to multidimensional spaces, so that we can
handle multi-attribute selection conditions."  This module does that for
axis-aligned boxes:

* a :class:`Box` value type over d dimensions;
* a greedy *sweep heuristic* for computing a stabbing partition of boxes
  (groups with nonempty common box intersection).  Unlike the 1-D case the
  minimum piercing problem for boxes is NP-hard for d >= 2, so no
  optimality claim is made --- the sweep orders boxes by their first-axis
  left endpoints and otherwise mirrors Lemma 1; its output is always a
  *valid* stabbing partition and coincides with the canonical one for
  d = 1;
* :class:`DynamicBoxPartition`, the lazy maintenance strategy of Section
  2.3 transplanted to boxes (insert into the first compatible group or as a
  singleton, rebuild with the sweep when the group count drifts past
  ``(1 + eps)`` times the sweep's size).

Section 3-style group processing for multi-attribute subscriptions lives in
:mod:`repro.operators.multi_attribute`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

if TYPE_CHECKING:
    from repro.core.intervals import Interval

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class Box:
    """A closed axis-aligned box: ``lo[i] <= x[i] <= hi[i]`` per dimension."""

    lo: Tuple[float, ...]
    hi: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo and hi must have equal dimension")
        if not self.lo:
            raise ValueError("boxes need at least one dimension")
        for a, b in zip(self.lo, self.hi):
            if a > b:
                raise ValueError(f"invalid box: {self!r}")

    @property
    def dimensions(self) -> int:
        return len(self.lo)

    def contains(self, point: Sequence[float]) -> bool:
        if len(point) != len(self.lo):
            raise ValueError("point dimension mismatch")
        return all(a <= x <= b for a, x, b in zip(self.lo, point, self.hi))

    def intersect(self, other: "Box") -> Optional["Box"]:
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(a > b for a, b in zip(lo, hi)):
            return None
        return Box(lo, hi)

    def overlaps(self, other: "Box") -> bool:
        return all(
            a <= d and c <= b
            for a, b, c, d in zip(self.lo, self.hi, other.lo, other.hi)
        )

    @property
    def center(self) -> Tuple[float, ...]:
        return tuple((a + b) / 2.0 for a, b in zip(self.lo, self.hi))

    @staticmethod
    def from_intervals(*ranges: "Interval") -> "Box":
        """Build a box from per-dimension Interval objects."""
        return Box(tuple(r.lo for r in ranges), tuple(r.hi for r in ranges))


def identity_box(item: Box) -> Box:
    return item


class BoxGroup(Iterable[T]):
    """A mutable group of box-carrying items with a maintained common box.

    Unlike the 1-D :class:`~repro.core.partition_base.DynamicGroup`, the
    common box cannot cheaply *widen* under deletion, so it is recomputed
    from the members when a removal touches the boundary.  Insertions stay
    O(d).
    """

    __slots__ = ("_items", "_common", "_box_of")

    def __init__(self, box_of: Callable[[T], Box]):
        self._items: Dict[int, T] = {}
        self._common: Optional[Box] = None
        self._box_of = box_of

    def add(self, item: T) -> None:
        key = id(item)
        if key in self._items:
            raise ValueError("item already present in group")
        box = self._box_of(item)
        if self._common is None:
            self._common = box
        else:
            narrowed = self._common.intersect(box)
            assert narrowed is not None, "group invariant violated"
            self._common = narrowed
        self._items[key] = item

    def remove(self, item: T) -> None:
        del self._items[id(item)]
        self._recompute()

    def _recompute(self) -> None:
        self._common = None
        for item in self._items.values():
            box = self._box_of(item)
            self._common = box if self._common is None else self._common.intersect(box)
            assert self._common is not None, "group invariant violated"

    def would_remain_stabbed(self, box: Box) -> bool:
        return self._common is None or self._common.overlaps(box)

    @property
    def common(self) -> Optional[Box]:
        return self._common

    @property
    def stabbing_point(self) -> Tuple[float, ...]:
        assert self._common is not None, "empty group has no stabbing point"
        return self._common.center

    @property
    def size(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[T]:
        return list(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items.values())

    def __contains__(self, item: T) -> bool:
        return id(item) in self._items


def sweep_box_partition(
    items: Iterable[T], box_of: Callable[[T], Box] = identity_box
) -> List[List[T]]:
    """Greedy sweep heuristic: a valid stabbing partition of boxes.

    Items are scanned in increasing first-axis left endpoint; each item
    joins the current group while the common intersection stays nonempty.
    For d = 1 this is exactly the canonical (optimal) partition.
    """
    ordered = sorted(items, key=lambda item: box_of(item).lo[0])
    groups: List[List[T]] = []
    current: List[T] = []
    common: Optional[Box] = None
    for item in ordered:
        box = box_of(item)
        if common is None:
            current = [item]
            common = box
            continue
        narrowed = common.intersect(box)
        if narrowed is None:
            groups.append(current)
            current = [item]
            common = box
        else:
            current.append(item)
            common = narrowed
    if current:
        groups.append(current)
    return groups


class DynamicBoxPartition(Generic[T]):
    """Lazy (Section 2.3 style) maintenance of a box stabbing partition.

    The ``(1 + eps)`` budget is measured against the sweep heuristic's
    partition size (the best efficiently-computable reference; minimum box
    piercing is NP-hard in d >= 2).
    """

    def __init__(
        self,
        items: Optional[List[T]] = None,
        *,
        epsilon: float = 1.0,
        box_of: Callable[[T], Box] = identity_box,
    ):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self._epsilon = epsilon
        self._box_of = box_of
        self._groups: List[BoxGroup[T]] = []
        self._group_of: Dict[int, BoxGroup[T]] = {}
        self._tau0 = 0
        self._deletions = 0
        self.reconstruction_count = 0
        self.update_count = 0
        if items:
            self._rebuild(list(items))
            self.reconstruction_count = 0

    @property
    def groups(self) -> List[BoxGroup[T]]:
        return list(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    def total_items(self) -> int:
        return sum(group.size for group in self._groups)

    def group_of(self, item: T) -> BoxGroup[T]:
        return self._group_of[id(item)]

    def __contains__(self, item: T) -> bool:
        return id(item) in self._group_of

    def insert(self, item: T) -> None:
        if id(item) in self._group_of:
            raise ValueError("item already present")
        box = self._box_of(item)
        target: Optional[BoxGroup[T]] = None
        for group in self._groups:
            if group.would_remain_stabbed(box):
                target = group
                break
        if target is None:
            target = BoxGroup(self._box_of)
            self._groups.append(target)
        target.add(item)
        self._group_of[id(item)] = target
        self._after_update()

    def delete(self, item: T) -> None:
        group = self._group_of.pop(id(item))
        group.remove(item)
        if group.size == 0:
            self._groups.remove(group)
        self._deletions += 1
        self._after_update()

    def _after_update(self) -> None:
        self.update_count += 1
        budget = (1.0 + self._epsilon) * max(self._tau0 - self._deletions, 0)
        if len(self._groups) > budget:
            items: List[T] = []
            for group in self._groups:
                items.extend(group)
            self._rebuild(items)

    def _rebuild(self, items: List[T]) -> None:
        self._groups = []
        self._group_of = {}
        for members in sweep_box_partition(items, self._box_of):
            group: BoxGroup[T] = BoxGroup(self._box_of)
            for item in members:
                group.add(item)
                self._group_of[id(item)] = group
            self._groups.append(group)
        self._tau0 = len(self._groups)
        self._deletions = 0
        self.reconstruction_count += 1

    def validate(self) -> None:
        for group in self._groups:
            assert group.size > 0
            point = group.stabbing_point
            for item in group:
                assert self._box_of(item).contains(point)
        assert sum(g.size for g in self._groups) == len(self._group_of)
