"""Shared machinery for dynamic stabbing-partition maintainers.

Both maintenance strategies of Section 2.3 (the lazy strategy of Lemma 3 and
the refined algorithm of Appendix B) expose the same interface: insert/delete
items carrying intervals, enumerate the current groups, and notify listeners
when group membership changes so that higher layers (the SSI per-group
structures, the hotspot tracker) can stay synchronized.

Items are arbitrary objects mapped to intervals by an ``interval_of``
function; they are identified by object identity, so two distinct continuous
queries may carry equal ranges.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterable, Iterator, List, Optional, Protocol, TypeVar

from repro.core.intervals import Interval, endpoints_equal
from repro.core.stabbing import identity_interval
from repro.dstruct.sorted_list import SortedKeyList

T = TypeVar("T")


class StabbingGroupView(Protocol[T]):
    """Structural interface of a maintained stabbing group.

    Both maintainers expose groups through this shape — the endpoint-
    multiset :class:`DynamicGroup` here and the treap-backed
    ``RefinedGroup`` of the Appendix B algorithm — so listeners and the
    SSI layer are typed against the protocol, not a concrete class.
    """

    @property
    def size(self) -> int: ...

    @property
    def items(self) -> List[T]: ...

    @property
    def common(self) -> Optional[Interval]: ...

    @property
    def stabbing_point(self) -> float: ...

    def add(self, item: T) -> None: ...

    def remove(self, item: T) -> None: ...

    def __iter__(self) -> Iterator[T]: ...

    def __len__(self) -> int: ...


class PartitionListener(Protocol[T]):
    """Callbacks fired by a dynamic partition as its groups evolve.

    ``on_rebuilt`` replaces the per-item callbacks during a reconstruction
    stage: listeners should drop all per-group state and rebuild from the
    partition's current groups.
    """

    def on_group_created(self, group: "StabbingGroupView[T]") -> None: ...

    def on_group_destroyed(self, group: "StabbingGroupView[T]") -> None: ...

    def on_item_added(self, group: "StabbingGroupView[T]", item: T) -> None: ...

    def on_item_removed(self, group: "StabbingGroupView[T]", item: T) -> None: ...

    def on_rebuilt(self, partition: "DynamicStabbingPartitionBase[T]") -> None: ...


class DynamicGroup(Generic[T]):
    """A mutable stabbing group: members plus their maintained intersection.

    The common intersection is kept exactly (not just a stabbing point) via
    sorted multisets of left and right endpoints, so deletions that *widen*
    the intersection are handled in O(log g).  This is the "more careful
    implementation" the paper recommends for the insertion refinement.
    """

    __slots__ = ("_items", "_los", "_his", "_interval_of", "_max_lo", "_min_hi")

    def __init__(self, interval_of: Callable[[T], Interval]):
        self._items: Dict[int, T] = {}
        self._los: SortedKeyList[float] = SortedKeyList()
        self._his: SortedKeyList[float] = SortedKeyList()
        self._interval_of = interval_of
        # Cached intersection endpoints (= max lo / min hi of members);
        # the insertion path tests every group against a new interval, so
        # these keep that test to two attribute reads.
        self._max_lo = float("-inf")
        self._min_hi = float("inf")

    def add(self, item: T) -> None:
        key = id(item)
        if key in self._items:
            raise ValueError("item already present in group")
        interval = self._interval_of(item)
        self._items[key] = item
        self._los.add(interval.lo)
        self._his.add(interval.hi)
        if interval.lo > self._max_lo:
            self._max_lo = interval.lo
        if interval.hi < self._min_hi:
            self._min_hi = interval.hi

    def remove(self, item: T) -> None:
        interval = self._interval_of(item)
        del self._items[id(item)]
        self._los.remove(interval.lo)
        self._his.remove(interval.hi)
        if not self._items:
            self._max_lo = float("-inf")
            self._min_hi = float("inf")
        else:
            # Exact comparisons are sound here: _max_lo/_min_hi are copied
            # verbatim from member endpoints, so a departing member can only
            # have *been* the cached extreme if its endpoint is bit-identical
            # to it (see endpoints_equal for the full argument).
            if endpoints_equal(interval.lo, self._max_lo):
                self._max_lo = self._los[len(self._los) - 1]
            if endpoints_equal(interval.hi, self._min_hi):
                self._min_hi = self._his[0]

    def __contains__(self, item: T) -> bool:
        return id(item) in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items.values())

    @property
    def size(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[T]:
        return list(self._items.values())

    @property
    def common(self) -> Optional[Interval]:
        """Common intersection of all members (None iff empty group)."""
        if not self._items:
            return None
        assert self._max_lo <= self._min_hi, "group invariant violated"
        return Interval(self._max_lo, self._min_hi)

    @property
    def stabbing_point(self) -> float:
        common = self.common
        assert common is not None, "empty group has no stabbing point"
        return common.hi

    def would_remain_stabbed(self, interval: Interval) -> bool:
        """True if adding ``interval`` keeps the common intersection nonempty."""
        if not self._items:
            return True
        # Inlined overlap check against [max lo, min hi]; this runs once per
        # existing group on every insertion, so it avoids building objects.
        return self._max_lo <= interval.hi and interval.lo <= self._min_hi


class DynamicStabbingPartitionBase(Generic[T]):
    """Common state and listener plumbing for both maintenance strategies."""

    __slots__ = ("_interval_of", "_listeners", "reconstruction_count", "update_count")

    def __init__(self, interval_of: Callable[[T], Interval] = identity_interval):
        self._interval_of = interval_of
        self._listeners: List[PartitionListener[T]] = []
        # Statistics exposed for the Figure 11 maintenance-cost benchmark.
        self.reconstruction_count = 0
        self.update_count = 0

    # -- listener plumbing ------------------------------------------------

    def add_listener(self, listener: PartitionListener[T]) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: PartitionListener[T]) -> None:
        self._listeners.remove(listener)

    def _notify_group_created(self, group: StabbingGroupView[T]) -> None:
        for listener in self._listeners:
            listener.on_group_created(group)

    def _notify_group_destroyed(self, group: StabbingGroupView[T]) -> None:
        for listener in self._listeners:
            listener.on_group_destroyed(group)

    def _notify_item_added(self, group: StabbingGroupView[T], item: T) -> None:
        for listener in self._listeners:
            listener.on_item_added(group, item)

    def _notify_item_removed(self, group: StabbingGroupView[T], item: T) -> None:
        for listener in self._listeners:
            listener.on_item_removed(group, item)

    def _notify_rebuilt(self) -> None:
        for listener in self._listeners:
            listener.on_rebuilt(self)

    def _notify_rebuild_started(self) -> None:
        """Optional pre-reconstruction hook, fired just before a rebuild
        recomputes the canonical partition.  Dispatched by ``getattr`` so
        it stays outside the :class:`PartitionListener` protocol: existing
        listeners (the SSI layer) only care about the post-state, while
        the observability layer pairs this with ``on_rebuilt`` to time the
        reconstruction stage."""
        for listener in self._listeners:
            hook = getattr(listener, "on_rebuild_started", None)
            if hook is not None:
                hook(self)

    # -- interface to implement --------------------------------------------

    def insert(self, item: T) -> None:
        raise NotImplementedError

    def delete(self, item: T) -> None:
        raise NotImplementedError

    @property
    def groups(self) -> Iterable[StabbingGroupView[T]]:
        raise NotImplementedError

    @property
    def interval_of(self) -> Callable[[T], Interval]:
        return self._interval_of

    def __len__(self) -> int:
        """Number of groups currently maintained (|P|)."""
        raise NotImplementedError

    def total_items(self) -> int:
        return sum(group.size for group in self.groups)

    def validate(self) -> None:
        """Assert every group is stabbed by its stabbing point (tests only)."""
        for group in self.groups:
            assert group.size > 0, "empty group retained"
            point = group.stabbing_point
            for item in group:
                assert self._interval_of(item).contains(point), (
                    f"{self._interval_of(item)} not stabbed by {point}"
                )
