"""Closed-interval primitives used throughout the library.

Every query range in the paper --- band-join windows ``rangeB``, local
selection ranges ``rangeA``/``rangeC``, and the intervals indexed by the
histogram of Section 3.3 --- is a closed interval ``[lo, hi]`` over a numeric
domain.  This module provides a small immutable :class:`Interval` value type
plus the handful of operations (intersection, stabbing, shifting) that the
stabbing-partition machinery builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval ``[lo, hi]`` with ``lo <= hi``.

    Instances are immutable and hashable, so they can be used as dictionary
    keys (the dynamic partition structures map intervals to their groups).
    Two distinct continuous queries may share an identical range; callers that
    need to distinguish them should key on the query object, not the interval.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints must not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"invalid interval: lo={self.lo!r} > hi={self.hi!r}")

    def contains(self, x: float) -> bool:
        """Return True if point ``x`` stabs this interval."""
        return self.lo <= x <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Return True if the two closed intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """Return the common intersection, or None if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def shift(self, delta: float) -> "Interval":
        """Return this interval translated by ``delta``.

        Band-join processing instantiates each window ``rangeB_i`` against an
        incoming tuple ``r`` as ``rangeB_i + r.B``; this is that operation.
        """
        return Interval(self.lo + delta, self.hi + delta)

    @property
    def length(self) -> float:
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        return (self.lo + self.hi) / 2.0

    def __iter__(self) -> Iterator[float]:
        yield self.lo
        yield self.hi

    def __str__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


def endpoints_equal(a: float, b: float) -> bool:
    """Canonical equality for interval endpoints (lint rule RA005).

    This is deliberately *exact* IEEE equality, not a tolerance test.  It
    is sound because endpoints in this codebase are only ever **copied**,
    never derived by arithmetic: ``Interval`` is frozen, and cached values
    such as ``DynamicGroup._max_lo`` / ``_min_hi`` are assigned verbatim
    from a member interval's ``lo``/``hi``, so the comparison is between
    bit-identical doubles.  Derived quantities (``s.b - r.b``, shifted
    windows) must not be compared with this helper — use an interval
    membership test instead, whose ``<=`` bounds are well-defined under
    rounding.
    """
    return a == b


def same_interval(a: Interval, b: Interval) -> bool:
    """Canonical value equality for two intervals (both endpoints copied
    from the same provenance; see :func:`endpoints_equal`)."""
    return endpoints_equal(a.lo, b.lo) and endpoints_equal(a.hi, b.hi)


def common_intersection(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Return the common intersection of ``intervals`` (None if empty).

    The defining property of a stabbing group is that this is nonempty.
    An empty input is rejected: a group always holds at least one interval.
    """
    result: Optional[Interval] = None
    seen = False
    for interval in intervals:
        if not seen:
            result = interval
            seen = True
            continue
        assert result is not None
        result = result.intersect(interval)
        if result is None:
            return None
    if not seen:
        raise ValueError("common_intersection() of an empty collection")
    return result


def is_stabbed_by(intervals: Iterable[Interval], point: float) -> bool:
    """Return True if ``point`` stabs every interval in the collection."""
    return all(interval.contains(point) for interval in intervals)
