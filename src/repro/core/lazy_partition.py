"""The lazy maintenance strategy of Section 2.3 (Lemma 3).

The strategy starts from the canonical stabbing partition and handles updates
cheaply --- a deleted interval is removed from its group, an inserted interval
either joins a group whose common intersection it overlaps (the paper's first
refinement) or becomes a singleton group --- then periodically rebuilds the
canonical partition from scratch.

Two reconstruction triggers are provided:

* ``trigger="simple"`` — rebuild after ``eps * tau0 / (eps + 2)`` updates,
  exactly as in the proof of Lemma 3;
* ``trigger="relaxed"`` (default) — rebuild only when the group count
  actually threatens the bound, i.e. when ``|P| > (1 + eps) * (tau0 - m)``
  where ``m`` counts deletions of intervals that were present at the last
  reconstruction.  This is the weaker condition described in the paper and
  leads to far fewer reconstructions in practice (cf. the Figure 11
  discussion: "the reconstruction stage occurs fairly infrequently").

Either way the maintained partition always has at most ``(1 + eps) * tau(I)``
groups, which the property tests verify against the canonical partition.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.intervals import Interval
from repro.core.partition_base import DynamicGroup, DynamicStabbingPartitionBase
from repro.core.stabbing import StabbingPartition, canonical_stabbing_partition, identity_interval
from repro.core.partition_base import T


class LazyStabbingPartition(DynamicStabbingPartitionBase[T]):
    """Dynamic stabbing partition with lazy periodic reconstruction."""

    def __init__(
        self,
        items: List[T] | None = None,
        *,
        epsilon: float = 1.0,
        interval_of: Callable[[T], Interval] = identity_interval,
        trigger: str = "relaxed",
        reuse_overlapping_group: bool = True,
    ):
        super().__init__(interval_of)
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if trigger not in ("simple", "relaxed"):
            raise ValueError(f"unknown trigger: {trigger!r}")
        self._epsilon = epsilon
        self._trigger = trigger
        self._reuse = reuse_overlapping_group
        self._groups: List[DynamicGroup[T]] = []
        self._group_of: Dict[int, DynamicGroup[T]] = {}
        # Reconstruction-epoch state.  An item is "original" (counted by
        # the relaxed trigger's m when deleted) iff it was already present
        # at the last reconstruction/recalibration, i.e. its recorded epoch
        # predates the current one.
        self._tau0 = 0
        self._epoch = 0
        self._item_epoch: Dict[int, int] = {}
        self._original_deletions = 0
        self._updates_since_recon = 0
        self.recalibration_count = 0
        if items:
            self._rebuild(list(items))
            self.reconstruction_count = 0  # the initial build is not a rebuild

    # -- public API ----------------------------------------------------------

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def groups(self) -> List[DynamicGroup[T]]:
        return list(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    def group_of(self, item: T) -> DynamicGroup[T]:
        return self._group_of[id(item)]

    def __contains__(self, item: T) -> bool:
        return id(item) in self._group_of

    def insert(self, item: T) -> None:
        if id(item) in self._group_of:
            raise ValueError("item already present")
        interval = self._interval_of(item)
        target: Optional[DynamicGroup[T]] = None
        if self._reuse:
            for group in self._groups:
                if group.would_remain_stabbed(interval):
                    target = group
                    break
        self._item_epoch[id(item)] = self._epoch
        if target is None:
            target = DynamicGroup(self._interval_of)
            self._groups.append(target)
            target.add(item)
            self._group_of[id(item)] = target
            self._notify_group_created(target)
            self._notify_item_added(target, item)
        else:
            target.add(item)
            self._group_of[id(item)] = target
            self._notify_item_added(target, item)
        self._after_update()

    def delete(self, item: T) -> None:
        group = self._group_of.pop(id(item))
        group.remove(item)
        self._notify_item_removed(group, item)
        if group.size == 0:
            self._groups.remove(group)
            self._notify_group_destroyed(group)
        if self._item_epoch.pop(id(item), self._epoch) < self._epoch:
            self._original_deletions += 1
        self._after_update()

    def size_bound(self) -> float:
        """The worst-case bound (1 + eps) * tau(I) currently guaranteed."""
        return (1.0 + self._epsilon) * max(self._tau0 - self._original_deletions, 0)

    def validate(self) -> None:
        """Stabbing validity plus the lazy strategy's own contracts:
        item-to-group bookkeeping, epoch records, and the Lemma 3 bound
        ``|P| <= (1 + eps) * tau(I)`` against the true current tau."""
        super().validate()
        mapped = sum(group.size for group in self._groups)
        assert mapped == len(self._group_of), (
            f"group membership ({mapped}) and group_of ({len(self._group_of)}) "
            "disagree"
        )
        for group in self._groups:
            for item in group:
                assert self._group_of[id(item)] is group, "stale group_of entry"
        assert set(self._item_epoch) == set(self._group_of), (
            "epoch records out of sync with live items"
        )
        tau = self._sweep_tau(self._all_items())
        assert len(self._groups) <= (1.0 + self._epsilon) * tau + 1e-9, (
            f"{len(self._groups)} groups > (1 + {self._epsilon}) * tau "
            f"where tau = {tau}"
        )

    # -- internals -----------------------------------------------------------

    def _after_update(self) -> None:
        self.update_count += 1
        self._updates_since_recon += 1
        if self._needs_reconstruction():
            if self._trigger == "relaxed":
                # The relaxed trigger checks the actual bound, so a cheap
                # recalibration can often stand in for a rebuild.
                self._recalibrate_or_rebuild()
            else:
                # Lemma 3's accounting requires a fresh canonical partition
                # at the start of every epoch.
                self._rebuild(self._all_items())

    def _needs_reconstruction(self) -> bool:
        if self._trigger == "simple":
            budget = self._epsilon * self._tau0 / (self._epsilon + 2.0)
            return self._updates_since_recon >= max(1.0, budget)
        remaining = max(self._tau0 - self._original_deletions, 0)
        return len(self._groups) > (1.0 + self._epsilon) * remaining

    def _all_items(self) -> List[T]:
        out: List[T] = []
        for group in self._groups:
            out.extend(group)
        return out

    def _recalibrate_or_rebuild(self) -> None:
        """Re-establish the epoch guarantee, rebuilding only when needed.

        The trigger conditions use ``tau0 - m`` as a conservative lower
        bound on the current tau(I); under churn it decays quickly even
        though tau(I) (and the maintained group count) barely move.  So
        when a trigger fires we first *recompute* tau(I): if the maintained
        partition is still within its (1 + eps) budget we merely reset the
        epoch (tau0 := tau(I), m := 0) and keep every group --- no listener
        churn, which is what keeps SSI maintenance cheap on naturally
        clustered subscriptions (the paper's Figure 11 observation).  Only
        when the partition has genuinely drifted past the bound do we
        rebuild it from the canonical partition.
        """
        items = self._all_items()
        tau = self._sweep_tau(items)
        self.recalibration_count += 1
        if len(self._groups) <= (1.0 + self._epsilon) * tau:
            self._tau0 = tau
            self._epoch += 1  # every live item becomes "original"
            self._original_deletions = 0
            self._updates_since_recon = 0
            return
        self._rebuild(items)

    def _sweep_tau(self, items: List[T]) -> int:
        """tau(I) by the greedy sweep, without materializing groups."""
        interval_of = self._interval_of
        intervals = sorted(
            ((iv.lo, iv.hi) for iv in map(interval_of, items))
        )
        tau = 0
        hi: Optional[float] = None
        for lo, item_hi in intervals:
            if hi is None or lo > hi:
                tau += 1
                hi = item_hi
            elif item_hi < hi:
                hi = item_hi
        return tau

    def _rebuild(self, items: List[T]) -> None:
        self._notify_rebuild_started()
        self._install(canonical_stabbing_partition(items, self._interval_of))

    def _install(self, canonical: StabbingPartition[T]) -> None:
        self._groups = []
        self._group_of = {}
        for static_group in canonical.groups:
            group: DynamicGroup[T] = DynamicGroup(self._interval_of)
            for item in static_group.items:
                group.add(item)
                self._group_of[id(item)] = group
            self._groups.append(group)
        self._tau0 = len(self._groups)
        self._epoch += 1
        self._item_epoch = {key: 0 for key in self._group_of}
        self._original_deletions = 0
        self._updates_since_recon = 0
        self.reconstruction_count += 1
        self._notify_rebuilt()
