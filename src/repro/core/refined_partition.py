"""The refined stabbing-partition maintenance algorithm (Appendix B).

Like the lazy strategy, the refined algorithm keeps a partition of size at
most ``(1 + eps) * tau(I)`` by inserting new intervals as singleton groups
and reconstructing after ``eps * tau0 / (eps + 2)`` updates.  The differences
are what make it suitable for real-time use:

* every group is stored in a balanced tree (here: a treap) ordered by left
  endpoint and augmented with subtree common intersections, supporting
  INSERT / DELETE / SPLIT / JOIN in O(log n);
* each insertion or deletion touches exactly **one** group, so per-group SSI
  structures rarely need propagation;
* the reconstruction stage emulates the greedy sweep of Lemma 1 *batched
  over groups*: rather than rescanning all n intervals it walks the O(tau0)
  groups in order of the left endpoints of their common intersections,
  absorbing whole groups where possible and SPLITting at most one group per
  emitted output group, for O(tau0 log n) total tree work.

Correctness rests on invariant (*) from the paper: member left endpoints are
ordered consistently across the (non-fresh) groups, which holds for the
canonical partition and is preserved by deletions and by the splits the
reconstruction itself performs.  The property tests verify that every
reconstruction produces exactly the canonical partition of the current items.

Bookkeeping note: we rebuild the item-to-group map with one O(n) dictionary
pass per reconstruction.  The paper avoids this with parent pointers inside
the trees; the structural tree work is the faithful O(tau0 log n) algorithm.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Generic, Iterator, List, Optional

from repro.core.intervals import Interval, common_intersection
from repro.core.partition_base import DynamicStabbingPartitionBase, T
from repro.core.stabbing import canonical_stabbing_partition, identity_interval, stabbing_number
from repro.dstruct.treap import Treap


def _intersect(a: Optional[Interval], b: Optional[Interval]) -> Optional[Interval]:
    if a is None or b is None:
        return None
    return a.intersect(b)


class RefinedGroup(Generic[T]):
    """A stabbing group backed by a left-endpoint-ordered, intersection-
    augmented treap.  Duck-type compatible with
    :class:`~repro.core.partition_base.DynamicGroup`.
    """

    __slots__ = ("treap", "fresh", "_interval_of")

    def __init__(self, treap: Treap[T], interval_of: Callable[[T], Interval], fresh: bool):
        self.treap = treap
        self.fresh = fresh
        self._interval_of = interval_of

    @property
    def size(self) -> int:
        return len(self.treap)

    def __len__(self) -> int:
        return len(self.treap)

    def __iter__(self) -> Iterator[T]:
        return self.treap.items_values()

    @property
    def items(self) -> List[T]:
        return list(self.treap.items_values())

    @property
    def common(self) -> Optional[Interval]:
        return self.treap.aggregate

    @property
    def stabbing_point(self) -> float:
        common = self.common
        assert common is not None, "empty group has no stabbing point"
        return common.hi

    def add(self, item: T) -> None:
        self.treap.insert(self._interval_of(item).lo, item)

    def remove(self, item: T) -> None:
        self.treap.remove(self._interval_of(item).lo, match=lambda it: it is item)

    def split_prefix(self, x: float) -> Treap[T]:
        """Split off (and return) the members whose left endpoint is <= x."""
        return self.treap.split(x, after_equal=True)


class RefinedStabbingPartition(DynamicStabbingPartitionBase[T]):
    """Dynamic stabbing partition per Appendix B (Theorem 2)."""

    def __init__(
        self,
        items: List[T] | None = None,
        *,
        epsilon: float = 1.0,
        interval_of: Callable[[T], Interval] = identity_interval,
        seed: Optional[int] = None,
    ):
        super().__init__(interval_of)
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self._epsilon = epsilon
        self._rng = random.Random(seed)
        self._groups: List[RefinedGroup[T]] = []
        self._group_of: Dict[int, RefinedGroup[T]] = {}
        self._tau0 = 0
        self._updates_since_recon = 0
        # Tree-operation counters backing the O(tau0 log n) claim in tests.
        self.split_count = 0
        self.join_count = 0
        if items:
            self._initial_build(list(items))

    # -- public API -----------------------------------------------------------

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def groups(self) -> List[RefinedGroup[T]]:
        return list(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    def group_of(self, item: T) -> RefinedGroup[T]:
        return self._group_of[id(item)]

    def __contains__(self, item: T) -> bool:
        return id(item) in self._group_of

    def insert(self, item: T) -> None:
        """Insert as a singleton group; touches no existing group."""
        if id(item) in self._group_of:
            raise ValueError("item already present")
        group = RefinedGroup(self._new_treap(), self._interval_of, fresh=True)
        group.add(item)
        self._groups.append(group)
        self._group_of[id(item)] = group
        self._notify_group_created(group)
        self._notify_item_added(group, item)
        self._after_update()

    def delete(self, item: T) -> None:
        """Delete from its group; touches exactly that one group."""
        group = self._group_of.pop(id(item))
        group.remove(item)
        self._notify_item_removed(group, item)
        if group.size == 0:
            self._groups.remove(group)
            self._notify_group_destroyed(group)
        self._after_update()

    def validate(self) -> None:
        """Stabbing validity plus the refined algorithm's own contracts:
        treap aggregates must equal the recomputed common intersections,
        fresh groups are singletons (insertions never join a group outside
        reconstruction), bookkeeping is consistent, and the partition obeys
        the Theorem 2 bound ``|P| <= (1 + eps) * tau(I)``."""
        super().validate()
        mapped = sum(group.size for group in self._groups)
        assert mapped == len(self._group_of), (
            f"group membership ({mapped}) and group_of ({len(self._group_of)}) "
            "disagree"
        )
        for group in self._groups:
            if group.fresh:
                assert group.size == 1, (
                    f"fresh group holds {group.size} items; insertions are "
                    "always singletons"
                )
            recomputed = common_intersection(
                self._interval_of(item) for item in group
            )
            assert group.common == recomputed, (
                f"treap aggregate {group.common} != recomputed intersection "
                f"{recomputed}"
            )
            for item in group:
                assert self._group_of[id(item)] is group, "stale group_of entry"
        items = [item for group in self._groups for item in group]
        tau = stabbing_number(items, self._interval_of)
        assert len(self._groups) <= (1.0 + self._epsilon) * tau + 1e-9, (
            f"{len(self._groups)} groups > (1 + {self._epsilon}) * tau "
            f"where tau = {tau}"
        )

    # -- internals --------------------------------------------------------------

    def _new_treap(self) -> Treap[T]:
        return Treap(aggregate=(self._interval_of, _intersect), rng=self._rng)

    def _after_update(self) -> None:
        self.update_count += 1
        self._updates_since_recon += 1
        budget = self._epsilon * self._tau0 / (self._epsilon + 2.0)
        if self._updates_since_recon >= max(1.0, budget):
            self._reconstruct()

    def _initial_build(self, items: List[T]) -> None:
        canonical = canonical_stabbing_partition(items, self._interval_of)
        self._groups = []
        self._group_of = {}
        for static_group in canonical.groups:
            treap = self._new_treap()
            group = RefinedGroup(treap, self._interval_of, fresh=False)
            for item in static_group.items:
                group.add(item)
                self._group_of[id(item)] = group
            self._groups.append(group)
        self._tau0 = len(self._groups)
        self._updates_since_recon = 0

    def _reconstruct(self) -> None:
        self._notify_rebuild_started()
        self._do_reconstruct()

    def _do_reconstruct(self) -> None:
        """The RECONSTRUCTION-STAGE of Appendix B (prose version).

        Emulates the greedy sweep batched over groups.  Walks the nonempty
        groups in increasing order of the left endpoints of their common
        intersections, keeping an *active set* A = (TU, V) with common
        intersection ``gamma``:

        * whole groups whose intersection starts inside ``gamma`` are
          absorbed (JOIN for original groups, a pending list for fresh
          singletons);
        * when the next group starts past ``gamma``'s right endpoint, the
          leftmost unprocessed original group is SPLIT at that endpoint ---
          by invariant (*) it is the only group that can still contribute
          members to A --- the prefix is absorbed, and A is emitted as an
          output group with stabbing point r(gamma).
        """
        order = sorted(
            (g for g in self._groups if g.size > 0),
            key=lambda g: g.common.lo,  # type: ignore[union-attr]
        )
        originals = [g for g in order if not g.fresh]
        processed: Dict[int, bool] = {id(g): False for g in order}
        next_original = 0

        emitted: List[RefinedGroup[T]] = []
        tu: Treap[T] = self._new_treap()
        pending: List[T] = []
        gamma: Optional[Interval] = None

        def emit() -> None:
            nonlocal tu, pending
            assert gamma is not None
            for item in pending:
                tu.insert(self._interval_of(item).lo, item)
            emitted.append(RefinedGroup(tu, self._interval_of, fresh=False))
            tu = self._new_treap()
            pending = []

        def absorb_split_prefix(group: RefinedGroup[T]) -> None:
            """SPLIT ``group`` at r(gamma) and absorb the prefix into A."""
            nonlocal gamma
            assert gamma is not None
            prefix = group.split_prefix(gamma.hi)
            self.split_count += 1
            if len(prefix) > 0:
                gamma = _intersect(gamma, prefix.aggregate)
                assert gamma is not None, "split prefix broke the active set"
                tu.join(prefix)
                self.join_count += 1
            if group.size == 0:
                processed[id(group)] = True

        for group in order:
            if processed[id(group)] or group.size == 0:
                continue
            processed[id(group)] = True
            common = group.common
            assert common is not None
            if gamma is None:
                # First group opens the active set.
                if group.fresh:
                    pending = group.items
                else:
                    tu = group.treap
                gamma = common
                continue
            if common.lo <= gamma.hi:
                # Case 1: the whole group joins the active set.
                if group.fresh:
                    pending.extend(group.items)
                else:
                    tu.join(group.treap)
                    self.join_count += 1
                gamma = _intersect(gamma, common)
                assert gamma is not None, "case-1 absorption broke the active set"
            else:
                # Case 2: close the active group.  At most one original group
                # can still hold members belonging to A; split it first.
                if group.fresh:
                    while next_original < len(originals) and (
                        processed[id(originals[next_original])]
                        or originals[next_original].size == 0
                    ):
                        next_original += 1
                    if next_original < len(originals):
                        absorb_split_prefix(originals[next_original])
                    emit()
                    pending = group.items
                    gamma = common
                else:
                    absorb_split_prefix(group)
                    emit()
                    # The remainder of this group opens the next active set.
                    assert group.size > 0, "case-2 remainder cannot be empty"
                    tu = group.treap
                    gamma = group.common
        if gamma is not None:
            emit()

        self._install(emitted)

    def _install(self, groups: List[RefinedGroup[T]]) -> None:
        self._groups = groups
        self._group_of = {}
        for group in groups:
            for item in group:
                self._group_of[id(item)] = group
        self._tau0 = len(groups)
        self._updates_since_recon = 0
        self.reconstruction_count += 1
        self._notify_rebuilt()
