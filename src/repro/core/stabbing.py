"""Canonical stabbing partitions (Section 2.1, Lemma 1).

A *stabbing partition* of a set of intervals ``I`` splits it into groups
``I_1 .. I_tau`` such that each group has a nonempty common intersection
(equivalently, a single point that stabs every member).  The greedy
left-endpoint sweep below produces the *canonical* partition, which is
optimal: no stabbing partition of ``I`` has fewer groups than ``tau(I)``.

The partition is the static foundation everything else builds on: the lazy
and refined dynamic maintainers reconstruct it periodically, the hotspot
tracker classifies its groups by size, and SSI-HIST builds one histogram per
canonical group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Iterable, List, Sequence, TypeVar

from repro.core.intervals import Interval, common_intersection

T = TypeVar("T")


def identity_interval(item: Interval) -> Interval:
    """Default ``interval_of``: items are themselves intervals."""
    return item


@dataclass(slots=True)
class StabbingGroup(Generic[T]):
    """One group of a stabbing partition.

    ``stabbing_point`` is always the right endpoint of the group's common
    intersection; the greedy sweep closes a group exactly when the next
    interval starts past that point, so this choice both witnesses the
    partition and matches the reconstruction stage of Appendix B (which emits
    ``r(common intersection)`` as the stabbing point).
    """

    items: List[T]
    common: Interval

    @property
    def stabbing_point(self) -> float:
        return self.common.hi

    @property
    def size(self) -> int:
        return len(self.items)


@dataclass(slots=True)
class StabbingPartition(Generic[T]):
    """A list of stabbing groups plus the key function that produced them."""

    groups: List[StabbingGroup[T]]
    interval_of: Callable[[T], Interval] = field(default=identity_interval)

    @property
    def size(self) -> int:
        """The stabbing number tau of this partition."""
        return len(self.groups)

    @property
    def stabbing_set(self) -> List[float]:
        return [group.stabbing_point for group in self.groups]

    def total_items(self) -> int:
        return sum(group.size for group in self.groups)

    def coverage_of_top(self, k: int) -> float:
        """Fraction of all items covered by the k largest groups.

        This is the quantity plotted in Figure 2 for Zipf-distributed group
        sizes, and what motivates restricting SSI to hotspots.
        """
        total = self.total_items()
        if total == 0:
            return 0.0
        sizes = sorted((group.size for group in self.groups), reverse=True)
        return sum(sizes[:k]) / total

    def hotspots(self, alpha: float) -> List[StabbingGroup[T]]:
        """Groups holding at least an ``alpha`` fraction of all items."""
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        threshold = alpha * self.total_items()
        return [group for group in self.groups if group.size >= threshold]

    def validate(self) -> None:
        """Assert every group is genuinely stabbed by its stabbing point."""
        for group in self.groups:
            assert group.items, "empty stabbing group"
            common = common_intersection(self.interval_of(item) for item in group.items)
            assert common is not None, "group has no common intersection"
            assert common == group.common, "stale common intersection"
            for item in group.items:
                assert self.interval_of(item).contains(group.stabbing_point)


def canonical_stabbing_partition(
    items: Iterable[T],
    interval_of: Callable[[T], Interval] = identity_interval,
) -> StabbingPartition[T]:
    """Compute the canonical (optimal) stabbing partition by greedy sweep.

    Scans items in increasing order of left endpoint, extending the current
    group while the common intersection stays nonempty and closing it
    otherwise (Lemma 1; O(n log n) dominated by the sort).
    """
    ordered = sorted(items, key=lambda item: interval_of(item).lo)
    groups: List[StabbingGroup[T]] = []
    current: List[T] = []
    common: Interval | None = None
    for item in ordered:
        interval = interval_of(item)
        if common is None:
            current = [item]
            common = interval
            continue
        narrowed = common.intersect(interval)
        if narrowed is None:
            groups.append(StabbingGroup(current, common))
            current = [item]
            common = interval
        else:
            current.append(item)
            common = narrowed
    if common is not None:
        groups.append(StabbingGroup(current, common))
    return StabbingPartition(groups, interval_of)


def stabbing_number(
    items: Iterable[T],
    interval_of: Callable[[T], Interval] = identity_interval,
) -> int:
    """tau(I): the size of the smallest stabbing partition of the items."""
    return canonical_stabbing_partition(items, interval_of).size


def minimum_stabbing_set(
    items: Sequence[T],
    interval_of: Callable[[T], Interval] = identity_interval,
) -> List[float]:
    """A minimum set of points stabbing every interval (classic greedy).

    Equivalent to the stabbing set of the canonical partition; exposed
    separately because the histogram code wants just the points.
    """
    return canonical_stabbing_partition(items, interval_of).stabbing_set
