"""Sort-merge batch probe for band joins (batched BJ-SSI, Section 3.1).

The per-event probe pays per-group dispatch once per arriving tuple: a
B-tree descent per (group, tuple), an ``Interval`` allocation and a cursor
clone per affected query, and a leaf walk per enumeration.  The batch probe
amortizes all of it over a micro-batch using flat columns:

* the S(B) index is flattened once per batch into parallel (keys, values)
  columns (:meth:`~repro.dstruct.btree.BPlusTree.flat_snapshot`, cached on
  the tree until it mutates);
* per group, the ``surrounding`` probes for the whole batch collapse into
  one vectorized ``searchsorted`` of the shifted join keys against the flat
  key column (succ = first index with key >= probe, pred = the one before —
  exactly the cursor pair the per-event probe derives);
* STEP 1 (find affected queries) becomes one ``searchsorted`` per endpoint
  column over the group's columnar ``array('d')`` endpoint orders — the
  per-event linear scan with an early ``break`` counts exactly the prefix
  ``bisect_right`` returns;
* STEP 2 (enumerate results) becomes a contiguous slice of the flat value
  column: the per-event outward leaf walk collects precisely the entries
  with ``window.lo <= key <= window.hi`` (the probe key ``p_j + b`` lies
  inside the instantiated window because the stabbing point lies inside the
  band), i.e. ``values[bisect_left(keys, lo) : bisect_right(keys, hi)]``
  in the same ascending-key order.

Every bound evaluates to the exact IEEE double the per-event probe
computes (``pred.key - r.b``, ``band.lo + r.b``; ``b - succ.key`` equals
``-(succ.key - b)`` bit for bit), so batched deltas — affected queries,
result rows, and their order — are identical to running the per-event
probe once per tuple against the same table state.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Sequence, Tuple

from repro.fastpath.kernels import MIN_VECTOR, get_numpy


def batch_probe_band_r(
    by_b: Any,
    rows: Sequence[Any],
    points: Sequence[float],
    structures: Sequence[Any],
    results: List[Dict[Any, List[Any]]],
) -> None:
    """Probe a batch of R-tuples against every band-join group.

    ``rows`` is the micro-batch (any order); ``points``/``structures`` the
    dense group table; ``results`` a parallel list of per-row dicts, updated
    in place.  All rows are probed against the *same* S-table state, so this
    is only valid for a run of R-inserts with no interleaved S-change.
    """
    _batch_probe(by_b, rows, points, structures, results, r_side=True)


def batch_probe_band_s(
    by_b: Any,
    rows: Sequence[Any],
    points: Sequence[float],
    structures: Sequence[Any],
    results: List[Dict[Any, List[Any]]],
) -> None:
    """Symmetric batch probe for S-tuples against R(B): the probe key is
    ``s.b - p_j`` and the two endpoint orders swap roles, exactly as in the
    per-event ``probe_band_group_s``."""
    _batch_probe(by_b, rows, points, structures, results, r_side=False)


def _batch_probe(
    by_b: Any,
    rows: Sequence[Any],
    points: Sequence[float],
    structures: Sequence[Any],
    results: List[Dict[Any, List[Any]]],
    *,
    r_side: bool,
) -> None:
    if not rows or not points:
        return
    keys, values = by_b.flat_snapshot()
    m = len(keys)
    if m == 0:
        return  # the probed table is empty: no results possible
    order = sorted(range(len(rows)), key=lambda i: rows[i].b)
    bs = [rows[i].b for i in order]
    _np = get_numpy()
    use_np = _np is not None and len(bs) >= MIN_VECTOR
    if use_np:
        kb = _np.asarray(keys, dtype=_np.float64)
        bv = _np.asarray(bs, dtype=_np.float64)
    for point, structure in zip(points, structures):
        by_lo = structure.by_lo
        if not by_lo:
            continue
        by_hi_desc = structure.by_hi_desc
        lo_keys = structure.lo_keys
        neg_hi_keys = structure.neg_hi_keys
        hi_by_lo = structure.hi_by_lo
        lo_by_hi = structure.lo_by_hi
        # Phases 1+2: succ index (first flat key >= probe) and the STEP-1
        # affected-prefix lengths for every row of the batch at once.  The
        # first prefix scans the endpoint order the probe's *pred* cursor
        # bounds, the second the order its *succ* cursor bounds.
        if use_np:
            probe = point + bv if r_side else bv - point
            sv = _np.searchsorted(kb, probe, side="left")
            pred_k = kb[_np.maximum(sv - 1, 0)]
            succ_k = kb[_np.minimum(sv, m - 1)]
            if r_side:
                first_col = _np.frombuffer(lo_keys, dtype=_np.float64)
                second_col = _np.frombuffer(neg_hi_keys, dtype=_np.float64)
                first_bounds = pred_k - bv  # s1 - b, matched by lo <= bound
                second_bounds = bv - succ_k  # -(s2 - b), neg-hi column
            else:
                first_col = _np.frombuffer(neg_hi_keys, dtype=_np.float64)
                second_col = _np.frombuffer(lo_keys, dtype=_np.float64)
                first_bounds = pred_k - bv  # -(s.b - r1), neg-hi column
                second_bounds = bv - succ_k  # s.b - r2, matched by lo <= bound
            n1v = _np.where(sv > 0, _np.searchsorted(first_col, first_bounds, side="right"), 0)
            n2v = _np.where(sv < m, _np.searchsorted(second_col, second_bounds, side="right"), 0)
            active = _np.nonzero(n1v | n2v)[0].tolist()
            if not active:
                continue
            n1l = n1v.tolist()
            n2l = n2v.tolist()
            b1l = first_bounds.tolist()
        else:
            n1l = []
            n2l = []
            b1l = []
            active = []
            first_col = lo_keys if r_side else neg_hi_keys
            second_col = neg_hi_keys if r_side else lo_keys
            for j, b in enumerate(bs):
                sidx = bisect_left(keys, (point + b) if r_side else (b - point))
                b1 = keys[sidx - 1] - b if sidx else 0.0
                n1 = bisect_right(first_col, b1) if sidx else 0
                n2 = bisect_right(second_col, b - keys[sidx]) if sidx < m else 0
                n1l.append(n1)
                n2l.append(n2)
                b1l.append(b1)
                if n1 or n2:
                    active.append(j)
            if not active:
                continue
        # Phase 3: gather (row, query) windows for the affected queries.
        # The pred-side prefix comes first (per-event dedup order); a
        # succ-side entry duplicates a pred-side one exactly when its other
        # endpoint also clears the pred-side bound, so dedup is a columnar
        # threshold test instead of a qid set.
        targets: List[Tuple[Dict[Any, List[Any]], Any]] = []
        w_lo: List[float] = []
        w_hi: List[float] = []
        t_append = targets.append
        lo_append = w_lo.append
        hi_append = w_hi.append
        if r_side:
            for j in active:
                n1 = n1l[j]
                n2 = n2l[j]
                b = bs[j]
                res = results[order[j]]
                for k in range(n1):
                    t_append((res, by_lo[k]))
                    lo_append(lo_keys[k] + b)
                    hi_append(hi_by_lo[k] + b)
                if n2:
                    bound1 = b1l[j]  # in the by_lo prefix iff lo <= bound1
                    for k in range(n2):
                        lo = lo_by_hi[k]
                        if n1 and lo <= bound1:
                            continue
                        t_append((res, by_hi_desc[k]))
                        lo_append(lo + b)
                        hi_append(b - neg_hi_keys[k])  # band.hi + b
        else:
            for j in active:
                n1 = n1l[j]
                n2 = n2l[j]
                b = bs[j]
                res = results[order[j]]
                for k in range(n1):
                    t_append((res, by_hi_desc[k]))
                    lo_append(b + neg_hi_keys[k])  # b - band.hi
                    hi_append(b - lo_by_hi[k])
                if n2:
                    neg_b1 = -b1l[j]  # in the by_hi prefix iff hi >= -bound1
                    for k in range(n2):
                        hi = hi_by_lo[k]
                        if n1 and hi >= neg_b1:
                            continue
                        t_append((res, by_lo[k]))
                        lo_append(b - hi)
                        hi_append(b - lo_keys[k])
        # ... and enumerate each as one contiguous slice of the flat column.
        if use_np and len(targets) >= MIN_VECTOR:
            starts = _np.searchsorted(kb, _np.asarray(w_lo), side="left").tolist()
            ends = _np.searchsorted(kb, _np.asarray(w_hi), side="right").tolist()
        else:
            starts = [bisect_left(keys, x) for x in w_lo]
            ends = [bisect_right(keys, x) for x in w_hi]
        for (res, query), start, end in zip(targets, starts, ends):
            hits = values[start:end]
            assert hits, "affected band join produced no result"
            res[query] = hits
