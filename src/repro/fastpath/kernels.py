"""Batched array kernels with an optional numpy backend.

The batch probes reduce each group's STEP-1 scan to "how many leading
entries of a sorted endpoint column are <= bound", evaluated for a whole
micro-batch of bounds at once.  With numpy available that is a single
vectorized ``searchsorted`` over the group's ``array('d')`` column (zero
copy via the buffer protocol); without it, a ``bisect`` loop gives the
same counts.

The backend is selected once at import time.  ``REPRO_FASTPATH_KERNEL``
forces a choice: ``numpy`` (fall back silently if numpy is missing, since
the container may not ship it), ``python``, or ``auto`` (the default).
``KERNEL`` names the backend actually in use so benchmarks can record it.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import List, Sequence

_np = None
_choice = os.environ.get("REPRO_FASTPATH_KERNEL", "auto").strip().lower()
if _choice not in ("python",):
    try:  # pragma: no cover - exercised indirectly via KERNEL
        import numpy as _np  # type: ignore
    except ImportError:  # pragma: no cover - numpy is usually present
        _np = None

KERNEL = "numpy" if _np is not None else "python"

# Below this many bounds the numpy call overhead (array conversion, ufunc
# dispatch) exceeds the bisect loop it replaces.
_MIN_VECTOR = 8


def count_le(keys: Sequence[float], bounds: Sequence[float]) -> List[int]:
    """For each bound, the number of leading entries of sorted ``keys``
    that are <= that bound (i.e. ``bisect_right`` per bound).

    ``keys`` is typically a group's ``array('d')`` endpoint column; the
    result indexes a prefix of the parallel query list.
    """
    if _np is not None and len(bounds) >= _MIN_VECTOR and len(keys):
        return _np.searchsorted(
            _np.frombuffer(keys, dtype=_np.float64),
            _np.asarray(bounds, dtype=_np.float64),
            side="right",
        ).tolist()
    return [bisect_right(keys, bound) for bound in bounds]
