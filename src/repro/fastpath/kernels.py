"""Batched array kernels with an optional numpy backend.

The batch probes reduce each group's STEP-1 scan to "how many leading
entries of a sorted endpoint column are <= bound", evaluated for a whole
micro-batch of bounds at once.  With numpy available that is a single
vectorized ``searchsorted`` over the group's ``array('d')`` column (zero
copy via the buffer protocol); without it, a ``bisect`` loop gives the
same counts.

The backend is selected once at import time.  ``REPRO_FASTPATH_KERNEL``
forces a choice: ``numpy`` (fall back silently if numpy is missing, since
the container may not ship it), ``python``, or ``auto`` (the default).
``KERNEL`` names the backend actually in use so benchmarks can record it.

This module is the **only** fastpath module allowed to import numpy (lint
rule RA002): consumers obtain the handle via :func:`get_numpy` and the
vectorization threshold via :data:`MIN_VECTOR`, so swapping or disabling
the backend stays a one-module decision.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import Any, List, Optional, Sequence

__all__ = ["KERNEL", "MIN_VECTOR", "count_le", "get_numpy"]

_np: Optional[Any] = None
_choice = os.environ.get("REPRO_FASTPATH_KERNEL", "auto").strip().lower()
if _choice not in ("python",):
    try:  # pragma: no cover - exercised indirectly via KERNEL
        import numpy as _np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - numpy is usually present
        _np = None

KERNEL = "numpy" if _np is not None else "python"

#: Below this many bounds the numpy call overhead (array conversion, ufunc
#: dispatch) exceeds the bisect loop it replaces.
MIN_VECTOR = 8


def get_numpy() -> Optional[Any]:
    """The sanctioned numpy handle, or None when the pure-python backend is
    active (numpy missing or ``REPRO_FASTPATH_KERNEL=python``).

    Read at call time, not import time, so tests can force the scalar
    fallback by patching this module's ``_np`` alone.
    """
    return _np


def count_le(keys: Sequence[float], bounds: Sequence[float]) -> List[int]:
    """For each bound, the number of leading entries of sorted ``keys``
    that are <= that bound (i.e. ``bisect_right`` per bound).

    ``keys`` is typically a group's ``array('d')`` endpoint column; the
    result indexes a prefix of the parallel query list.
    """
    if _np is not None and len(bounds) >= MIN_VECTOR and len(keys):
        counts: List[int] = _np.searchsorted(
            _np.frombuffer(keys, dtype=_np.float64),
            _np.asarray(bounds, dtype=_np.float64),
            side="right",
        ).tolist()
        return counts
    return [bisect_right(keys, bound) for bound in bounds]
