"""Columnar batch fast path for the SSI join operators.

The per-event SSI probes pay Python interpreter overhead per *tuple* that
the paper's cost model charges per *group*: every arrival re-walks the
group dictionary, re-derives each stabbing point, and allocates a fresh
``Interval`` per affected query.  This package amortizes that overhead over
a micro-batch:

* :mod:`repro.fastpath.kernels` — batched ``searchsorted`` over the
  columnar endpoint arrays, backed by numpy when it is importable and by a
  pure-Python ``bisect`` loop otherwise (selected once at import time);
* :mod:`repro.fastpath.band` — the sort-merge batch probe for band joins:
  arrivals are sorted once by join key, then merged against every SSI
  group in a single pass over the dense group table;
* :mod:`repro.fastpath.select` — the batched per-group probe for
  equality-joins-with-selections (composite-index probe + R-tree stabs).

Every batch probe is **delta-identical** to running the per-event probe
once per tuple: the same queries are affected, the same result rows are
enumerated, and the same floating-point expressions produce the bounds
(``repro fuzz --targets fastpath`` checks this differentially).
"""

from repro.fastpath.kernels import KERNEL, MIN_VECTOR, count_le, get_numpy
from repro.fastpath.band import batch_probe_band_r, batch_probe_band_s
from repro.fastpath.select import batch_probe_select_r, batch_probe_select_s

# numpy is deliberately not imported here (or anywhere else in this
# package): all access goes through repro.fastpath.kernels — the one
# module on lint rule RA002's allowlist — via get_numpy()/MIN_VECTOR.

__all__ = [
    "KERNEL",
    "MIN_VECTOR",
    "count_le",
    "get_numpy",
    "batch_probe_band_r",
    "batch_probe_band_s",
    "batch_probe_select_r",
    "batch_probe_select_s",
]
