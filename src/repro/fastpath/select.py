"""Batched SJ-SSI probe (Section 3.2) over the dense group table.

The select-join probe has no columnar STEP-1 scan to vectorize (affected
queries come from at most two R-tree stabs), so the batch win here is
amortizing per-group dispatch: the micro-batch is sorted once by join key,
the dense group table is walked once, and per (group, row) the leftward
composite-index cursor is hoisted once instead of cloned per affected
query.  The probe logic — composite B-tree ``surrounding``, q1/q2
straddle tests, R-tree stabs, outward leaf walks — matches the per-event
``probe_select_group_r``/``probe_select_group_s`` expression for
expression, so batched deltas are identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def batch_probe_select_r(
    by_bc: Any,
    rows: Sequence[Any],
    points: Sequence[float],
    rtrees: Sequence[Any],
    results: List[Dict[Any, List[Any]]],
) -> None:
    """Probe a batch of R-tuples against every rangeC group.

    ``results`` is a parallel list of per-row dicts, updated in place.  All
    rows are probed against the same S(B, C) state, so this is only valid
    for a run of R-inserts with no interleaved S-change.
    """
    if not rows or not points:
        return
    order = sorted(range(len(rows)), key=lambda i: (rows[i].b, rows[i].a))
    for point, rtree in zip(points, rtrees):
        for i in order:
            row = rows[i]
            b = row.b
            pred, succ = by_bc.surrounding((b, point))
            q1 = pred.value if pred.valid and pred.key[0] == b else None
            q2 = succ.value if succ.valid and succ.key[0] == b else None
            if q1 is None and q2 is None:
                continue  # nothing joins with this row near the point
            affected: Dict[Any, Any] = {}
            if q1 is not None:
                for __, query in rtree.stab(q1.c, row.a):
                    affected[query.qid] = query
            if q2 is not None and (q1 is None or q2.c != q1.c):
                for __, query in rtree.stab(q2.c, row.a):
                    affected.setdefault(query.qid, query)
            if not affected:
                continue
            if succ.valid:
                left = succ.clone()
                left.retreat()
            else:
                left = pred
            left_valid = left.valid
            res = results[i]
            for query in affected.values():
                range_c = query.range_c
                hits = left.collect_backward_prefix_ge(b, range_c.lo) if left_valid else []
                if succ.valid:
                    hits.extend(succ.collect_forward_prefix_le(b, range_c.hi))
                assert hits, "affected select-join produced no result"
                res[query] = hits


def batch_probe_select_s(
    by_ba: Any,
    rows: Sequence[Any],
    points: Sequence[float],
    rtrees: Sequence[Any],
    results: List[Dict[Any, List[Any]]],
) -> None:
    """Symmetric batch probe for S-tuples against R(B, A) (SSI on rangeA)."""
    if not rows or not points:
        return
    order = sorted(range(len(rows)), key=lambda i: (rows[i].b, rows[i].c))
    for point, rtree in zip(points, rtrees):
        for i in order:
            row = rows[i]
            b = row.b
            pred, succ = by_ba.surrounding((b, point))
            q1 = pred.value if pred.valid and pred.key[0] == b else None
            q2 = succ.value if succ.valid and succ.key[0] == b else None
            if q1 is None and q2 is None:
                continue
            affected: Dict[Any, Any] = {}
            if q1 is not None:
                for __, query in rtree.stab(row.c, q1.a):
                    affected[query.qid] = query
            if q2 is not None and (q1 is None or q2.a != q1.a):
                for __, query in rtree.stab(row.c, q2.a):
                    affected.setdefault(query.qid, query)
            if not affected:
                continue
            if succ.valid:
                left = succ.clone()
                left.retreat()
            else:
                left = pred
            left_valid = left.valid
            res = results[i]
            for query in affected.values():
                range_a = query.range_a
                hits = left.collect_backward_prefix_ge(b, range_a.lo) if left_valid else []
                if succ.valid:
                    hits.extend(succ.collect_forward_prefix_le(b, range_a.hi))
                assert hits, "affected select-join produced no result"
                res[query] = hits
