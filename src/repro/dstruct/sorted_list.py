"""A sorted sequence with key extraction, built on ``bisect``.

Several strategies in the paper keep query ranges in sorted order:

* ``BJ-MJ`` keeps band-join windows sorted by left endpoint so that merge
  join never needs to re-sort;
* each SSI group for band joins keeps two sorted sequences (ascending left
  endpoints and descending right endpoints).

Python's ``bisect`` module only gained key functions recently and offers no
removal support, so this small class wraps a plain list with a parallel key
list.  Insertion and removal are O(n) due to list shifting, which is the same
bound a sorted array gives; the strategies that rely on this structure are
exactly the ones whose maintenance cost the paper measures in Figure 11.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Generic, Iterable, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class SortedKeyList(Generic[T]):
    """A list kept sorted by ``key(item)``, with bisect-based lookups.

    Duplicate keys are allowed; items with equal keys keep insertion order
    (new items go after existing equals).
    """

    __slots__ = ("_key", "_items", "_keys")

    def __init__(self, items: Iterable[T] = (), *, key: Callable[[T], Any] = lambda x: x):
        self._key = key
        self._items: List[T] = sorted(items, key=key)
        self._keys: List[Any] = [key(item) for item in self._items]

    def add(self, item: T) -> int:
        """Insert ``item``, returning the index it was placed at."""
        k = self._key(item)
        idx = bisect.bisect_right(self._keys, k)
        self._items.insert(idx, item)
        self._keys.insert(idx, k)
        return idx

    def remove(self, item: T) -> None:
        """Remove one occurrence of ``item`` (compared by identity, then equality).

        Raises ValueError if the item is not present.
        """
        k = self._key(item)
        idx = bisect.bisect_left(self._keys, k)
        first_equal: Optional[int] = None
        while idx < len(self._keys) and self._keys[idx] == k:
            if self._items[idx] is item:
                del self._items[idx]
                del self._keys[idx]
                return
            if first_equal is None and self._items[idx] == item:
                first_equal = idx
            idx += 1
        if first_equal is not None:
            del self._items[first_equal]
            del self._keys[first_equal]
            return
        raise ValueError(f"item not found: {item!r}")

    def bisect_left(self, key: Any) -> int:
        """Index of the first item with key >= ``key``."""
        return bisect.bisect_left(self._keys, key)

    def bisect_right(self, key: Any) -> int:
        """Index just past the last item with key <= ``key``."""
        return bisect.bisect_right(self._keys, key)

    def irange(self, lo: Any = None, hi: Any = None) -> Iterator[T]:
        """Iterate items with lo <= key <= hi (either bound may be None)."""
        start = 0 if lo is None else self.bisect_left(lo)
        stop = len(self._items) if hi is None else self.bisect_right(hi)
        for i in range(start, stop):
            yield self._items[i]

    def count_in_range(self, lo: Any, hi: Any) -> int:
        """Number of items with lo <= key <= hi, in O(log n)."""
        return max(0, self.bisect_right(hi) - self.bisect_left(lo))

    def __getitem__(self, idx: int) -> T:
        return self._items[idx]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __contains__(self, item: T) -> bool:
        k = self._key(item)
        idx = bisect.bisect_left(self._keys, k)
        while idx < len(self._keys) and self._keys[idx] == k:
            if self._items[idx] == item:
                return True
            idx += 1
        return False

    def __repr__(self) -> str:
        return f"SortedKeyList({self._items!r})"
