"""An interval skip list (Hanson & Johnson [11]) for stabbing queries.

The paper lists the interval skip list alongside the interval tree as the
classic way to index range-selection continuous queries: "These queries
can be indexed as a set of intervals using, for example, interval tree or
interval skip list."  This implementation follows Hanson's design:

* a probabilistic skip list over the distinct interval endpoints;
* each stored interval is *marked* on a maximal set of skip-list edges (and
  isolated nodes) that exactly covers it: an edge at some level carries the
  mark iff the interval covers the whole edge span but not the span of the
  corresponding edge one level up;
* a stabbing query walks the usual skip-list search path for x, collecting
  marks from every traversed edge that strictly contains x and from the
  terminal node if x is an endpoint --- expected
  O(log n + output distinct marks) per query.

The API mirrors :class:`repro.dstruct.interval_tree.IntervalTree` so the
two are interchangeable behind the range-subscription indexes, and the
property tests drive both against the same oracle.
"""

from __future__ import annotations

import random
from typing import Dict, Generic, Iterator, List, Optional, Set, Tuple, TypeVar

from repro.core.intervals import Interval, endpoints_equal

P = TypeVar("P")

_MAX_LEVEL = 32


class _Entry(Generic[P]):
    """One stored (interval, payload) pair; identity used for marking."""

    __slots__ = ("interval", "payload")

    def __init__(self, interval: Interval, payload: P):
        self.interval = interval
        self.payload = payload


class _Node(Generic[P]):
    __slots__ = ("key", "forward", "edge_marks", "node_marks", "owners")

    def __init__(self, key: float, level: int):
        self.key = key
        self.forward: List[Optional["_Node[P]"]] = [None] * level
        # edge_marks[i]: entries marked on the edge leaving this node at
        # level i; node_marks: entries marked on this node itself.
        self.edge_marks: List[Set[_Entry[P]]] = [set() for __ in range(level)]
        self.node_marks: Set[_Entry[P]] = set()
        # Entries having an endpoint at this key (for node lifetime).
        self.owners: Set[_Entry[P]] = set()

    @property
    def level(self) -> int:
        return len(self.forward)


class IntervalSkipList(Generic[P]):
    """Dynamic interval set supporting O(log n + out) expected stabbing."""

    __slots__ = ("_rng", "_p", "_head", "_level", "_size", "_entries")

    def __init__(self, rng: Optional[random.Random] = None, p: float = 0.5):
        self._rng = rng if rng is not None else random.Random()
        self._p = p
        self._head: _Node[P] = _Node(float("-inf"), _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._entries: Dict[int, _Entry[P]] = {}

    # -- skip-list plumbing ----------------------------------------------

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < self._p:
            level += 1
        return level

    def _search_path(self, key: float) -> List[_Node[P]]:
        """update[i] = rightmost node at level i with node.key < key."""
        update: List[_Node[P]] = [self._head] * self._level
        node = self._head
        for i in range(self._level - 1, -1, -1):
            nxt = node.forward[i]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[i]
            update[i] = node
        return update

    def _find_node(self, key: float) -> Optional[_Node[P]]:
        update = self._search_path(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            return candidate
        return None

    def _insert_node(self, key: float) -> _Node[P]:
        """Insert an endpoint node, splitting the edges that spanned it so
        existing marks stay exactly covering."""
        update = self._search_path(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            return candidate
        level = self._random_level()
        if level > self._level:
            for i in range(self._level, level):
                update.append(self._head)
            self._level = level
        node = _Node(key, level)
        for i in range(level):
            pred = update[i]
            node.forward[i] = pred.forward[i]
            pred.forward[i] = node
            # The old edge pred -> old_next spanned the new node: splitting
            # it marks both halves and routes the covers through the node.
            marks = pred.edge_marks[i]
            if marks:
                node.edge_marks[i] = set(marks)
                node.node_marks.update(marks)
        # (Marks on edges of level >= `level` keep spanning the node whole;
        # the stab walk collects them directly, so no node mark is needed.)
        return node

    def _remove_node_if_unused(self, key: float) -> None:
        """Unlink an endpoint node no interval owns, repairing the covers
        of every interval whose mark chain routed through it."""
        node = self._find_node(key)
        if node is None or node.owners:
            return
        affected = [
            entry for entry in node.node_marks if id(entry) in self._entries
        ]
        for entry in affected:
            self._remove_marks(entry)
        update = self._search_path(key)
        for i in range(node.level):
            pred = update[i]
            assert pred.forward[i] is node
            assert not pred.edge_marks[i] and not node.edge_marks[i], (
                "dangling marks on a dying node's edges"
            )
            pred.forward[i] = node.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        for entry in affected:
            self._place_marks(entry)

    # -- marking ------------------------------------------------------------

    def _place_marks(self, entry: _Entry[P]) -> None:
        """Mark a maximal edge cover of [lo, hi] along the search path."""
        lo, hi = entry.interval.lo, entry.interval.hi
        node = self._find_node(lo)
        assert node is not None
        node.node_marks.add(entry)
        # Ascend/descend greedily: at each position take the highest edge
        # that stays inside [.., hi].
        while node is not None and node.key < hi:
            placed = False
            for i in range(min(node.level, self._level) - 1, -1, -1):
                nxt = node.forward[i]
                if nxt is not None and nxt.key <= hi:
                    node.edge_marks[i].add(entry)
                    nxt.node_marks.add(entry)
                    node = nxt
                    placed = True
                    break
            if not placed:  # pragma: no cover - hi node always reachable
                break

    def _remove_marks(self, entry: _Entry[P]) -> None:
        lo, hi = entry.interval.lo, entry.interval.hi
        node = self._find_node(lo)
        assert node is not None
        node.node_marks.discard(entry)
        while node is not None and node.key < hi:
            advanced = False
            for i in range(min(node.level, self._level) - 1, -1, -1):
                if entry in node.edge_marks[i]:
                    node.edge_marks[i].discard(entry)
                    node = node.forward[i]
                    assert node is not None
                    node.node_marks.discard(entry)
                    advanced = True
                    break
            if not advanced:
                break

    # -- public API -----------------------------------------------------------

    def insert(self, interval: Interval, payload: P) -> None:
        entry = _Entry(interval, payload)
        lo_node = self._insert_node(interval.lo)
        # degenerate [x, x] intervals share one node; both endpoints are
        # verbatim copies, so the canonical exact comparator applies
        hi_node = (
            self._insert_node(interval.hi)
            if not endpoints_equal(interval.hi, interval.lo)
            else lo_node
        )
        lo_node.owners.add(entry)
        hi_node.owners.add(entry)
        self._place_marks(entry)
        self._entries[id(entry)] = entry
        self._size += 1

    def remove(self, interval: Interval, payload: P) -> None:
        """Remove the entry with this interval and payload (identity first,
        then equality).  Raises KeyError when absent."""
        entry = None
        for candidate in self._entries.values():
            if candidate.interval == interval and candidate.payload is payload:
                entry = candidate
                break
        if entry is None:
            for candidate in self._entries.values():
                if candidate.interval == interval and candidate.payload == payload:
                    entry = candidate
                    break
        if entry is None:
            raise KeyError((interval, payload))
        self._remove_marks(entry)
        del self._entries[id(entry)]
        self._size -= 1
        for key in {interval.lo, interval.hi}:
            node = self._find_node(key)
            assert node is not None
            node.owners.discard(entry)
        for key in {interval.lo, interval.hi}:
            self._remove_node_if_unused(key)

    def stab(self, x: float) -> List[Tuple[Interval, P]]:
        """All (interval, payload) entries whose interval contains ``x``."""
        found: Set[_Entry[P]] = set()
        node = self._head
        for i in range(self._level - 1, -1, -1):
            nxt = node.forward[i]
            while nxt is not None and nxt.key < x:
                node = nxt
                nxt = node.forward[i]
            # The edge we are about to descend from strictly spans x.
            if nxt is not None and nxt.key > x:
                found |= node.edge_marks[i]
        candidate = node.forward[0]
        if candidate is not None and candidate.key == x:
            found |= candidate.node_marks
            for entry in candidate.owners:
                if entry.interval.contains(x):
                    found.add(entry)
        return [
            (entry.interval, entry.payload)
            for entry in found
            if entry.interval.contains(x)
        ]

    def iter_stab(self, x: float) -> Iterator[Tuple[Interval, P]]:
        yield from self.stab(x)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Tuple[Interval, P]]:
        for entry in self._entries.values():
            yield entry.interval, entry.payload
