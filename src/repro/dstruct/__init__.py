"""From-scratch index structures used as substrates by the query processors.

* :class:`~repro.dstruct.btree.BPlusTree` — leaf-linked ordered index
  (the paper's "standard B-trees" on base tables and S(B)/S(B,C)).
* :class:`~repro.dstruct.rtree.RTree` — Guttman R-tree for 2D query
  rectangles (SJ-JoinFirst and SJ-SSI group structures).
* :class:`~repro.dstruct.interval_tree.IntervalTree` — dynamic stabbing index
  over intervals (BJ-DOuter, SJ-SelectFirst).
* :class:`~repro.dstruct.treap.Treap` / ``IntervalTreap`` — balanced BST with
  SPLIT/JOIN and interval-intersection augmentation (Appendix B refined
  stabbing-partition maintenance).
* :class:`~repro.dstruct.sorted_list.SortedKeyList` — bisect-backed sorted
  sequence (BJ-MJ window list, SSI group endpoint orders).
"""

from repro.dstruct.btree import BPlusTree, Cursor
from repro.dstruct.interval_skip_list import IntervalSkipList
from repro.dstruct.interval_tree import IntervalTree
from repro.dstruct.rtree import Rect, RTree
from repro.dstruct.sorted_list import SortedKeyList
from repro.dstruct.treap import IntervalTreap, Treap

__all__ = [
    "BPlusTree",
    "Cursor",
    "IntervalSkipList",
    "IntervalTree",
    "IntervalTreap",
    "Rect",
    "RTree",
    "SortedKeyList",
    "Treap",
]
