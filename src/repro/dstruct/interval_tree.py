"""A dynamic interval tree answering point-stabbing queries.

The baselines BJ-DOuter (band joins, data as the outer relation) and
SJ-SelectFirst (select-joins, selection first) both need a dynamic index over
a set of intervals that, given a point ``x``, reports every interval
containing ``x`` in O(log n + output) time.  The paper suggests a priority
search tree or external interval tree; we implement the standard in-memory
equivalent: a balanced BST over left endpoints where every node is augmented
with the maximum right endpoint in its subtree.  The stabbing search prunes
any subtree whose ``max_hi`` falls left of the query point.

Items are ``(interval, payload)`` pairs so callers can attach the continuous
query that owns each range.
"""

from __future__ import annotations

import random
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.core.intervals import Interval

P = TypeVar("P")


class _Node(Generic[P]):
    __slots__ = ("interval", "payload", "priority", "left", "right", "max_hi", "size")

    def __init__(self, interval: Interval, payload: P, priority: float):
        self.interval = interval
        self.payload = payload
        self.priority = priority
        self.left: Optional["_Node[P]"] = None
        self.right: Optional["_Node[P]"] = None
        self.max_hi = interval.hi
        self.size = 1


class IntervalTree(Generic[P]):
    """Treap-balanced augmented interval tree with O(log n + out) stabbing."""

    __slots__ = ("_root", "_rng")

    def __init__(self, rng: Optional[random.Random] = None):
        self._root: Optional[_Node[P]] = None
        self._rng = rng if rng is not None else random.Random()

    # -- maintenance -------------------------------------------------------

    def _pull(self, node: _Node[P]) -> None:
        node.max_hi = node.interval.hi
        node.size = 1
        if node.left is not None:
            node.max_hi = max(node.max_hi, node.left.max_hi)
            node.size += node.left.size
        if node.right is not None:
            node.max_hi = max(node.max_hi, node.right.max_hi)
            node.size += node.right.size

    def _merge(self, a: Optional[_Node[P]], b: Optional[_Node[P]]) -> Optional[_Node[P]]:
        if a is None:
            return b
        if b is None:
            return a
        if a.priority > b.priority:
            a.right = self._merge(a.right, b)
            self._pull(a)
            return a
        b.left = self._merge(a, b.left)
        self._pull(b)
        return b

    def _split(
        self, node: Optional[_Node[P]], lo: float
    ) -> Tuple[Optional[_Node[P]], Optional[_Node[P]]]:
        """Split by left endpoint: (< lo is ambiguous for equals -> <= lo left)."""
        if node is None:
            return None, None
        if node.interval.lo <= lo:
            left, right = self._split(node.right, lo)
            node.right = left
            self._pull(node)
            return node, right
        left, right = self._split(node.left, lo)
        node.left = right
        self._pull(node)
        return left, node

    # -- public API ----------------------------------------------------------

    def insert(self, interval: Interval, payload: P) -> None:
        node = _Node(interval, payload, self._rng.random())
        left, right = self._split(self._root, interval.lo)
        self._root = self._merge(self._merge(left, node), right)

    def remove(self, interval: Interval, payload: P) -> None:
        """Remove the entry with this exact interval and payload.

        Payloads are compared with ``is`` first, then ``==``.  Raises
        KeyError when no matching entry exists.
        """

        def _remove(node: Optional[_Node[P]], by_identity: bool) -> Tuple[Optional[_Node[P]], bool]:
            if node is None:
                return None, False
            if interval.lo < node.interval.lo:
                node.left, removed = _remove(node.left, by_identity)
            elif node.interval.lo < interval.lo:
                node.right, removed = _remove(node.right, by_identity)
            else:
                matches = node.interval == interval and (
                    node.payload is payload if by_identity else node.payload == payload
                )
                if matches:
                    return self._merge(node.left, node.right), True
                node.left, removed = _remove(node.left, by_identity)
                if not removed:
                    node.right, removed = _remove(node.right, by_identity)
            if removed:
                self._pull(node)
            return node, removed

        self._root, removed = _remove(self._root, True)
        if not removed:
            self._root, removed = _remove(self._root, False)
        if not removed:
            raise KeyError((interval, payload))

    def stab(self, x: float) -> List[Tuple[Interval, P]]:
        """Return all (interval, payload) entries whose interval contains ``x``."""
        out: List[Tuple[Interval, P]] = []
        self._stab(self._root, x, out)
        return out

    def _stab(self, node: Optional[_Node[P]], x: float, out: List[Tuple[Interval, P]]) -> None:
        if node is None or node.max_hi < x:
            return
        self._stab(node.left, x, out)
        if node.interval.lo <= x:
            if x <= node.interval.hi:
                out.append((node.interval, node.payload))
            self._stab(node.right, x, out)
        # If node.interval.lo > x no interval in the right subtree can start
        # at or before x either, so the right subtree is pruned.

    def stab_count(self, x: float) -> int:
        """Number of intervals containing ``x`` (same traversal, no list)."""
        return sum(1 for __ in self.iter_stab(x))

    def iter_stab(self, x: float) -> Iterator[Tuple[Interval, P]]:
        stack: List[_Node[P]] = []
        if self._root is not None:
            stack.append(self._root)
        while stack:
            node = stack.pop()
            if node.max_hi < x:
                continue
            if node.left is not None:
                stack.append(node.left)
            if node.interval.lo <= x:
                if x <= node.interval.hi:
                    yield node.interval, node.payload
                if node.right is not None:
                    stack.append(node.right)

    def __len__(self) -> int:
        return self._root.size if self._root is not None else 0

    def __iter__(self) -> Iterator[Tuple[Interval, P]]:
        stack: List[Tuple[_Node[P], bool]] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append((node, False))
                node = node.left
            top, __ = stack.pop()
            yield top.interval, top.payload
            node = top.right

    def __bool__(self) -> bool:
        return self._root is not None
