"""An in-memory B+ tree with doubly-linked leaves.

This is the ordered-index substrate the paper assumes everywhere: the
``S(B)`` index probed by every band-join strategy, the composite ``S(B, C)``
index probed by SJ-SelectFirst and SJ-SSI, and the base-table indexes of the
experimental setup ("each table contains 100,000 tuples indexed by standard
B-trees").

Design notes
------------
* Keys may be any totally-ordered values, including tuples (composite keys).
  Duplicates are allowed; equal keys preserve insertion order.
* Leaves are doubly linked, so the SSI algorithms can "traverse the leaves of
  the B-tree in both directions starting from the point p_j + b" exactly as
  Section 3.1 describes, paying only for entries that contribute output.
* A :class:`Cursor` is a (leaf, slot) position supporting ``advance`` /
  ``retreat``; it is invalidated by structural updates (the engine never
  interleaves updates with an open scan).
* ``probe_count`` counts root-to-leaf descents and ``scan_steps`` counts leaf
  entries touched by cursors --- the ablation benchmarks use these to verify
  the output-sensitivity claims of Theorems 3 and 4 independently of timing
  noise.
"""

from __future__ import annotations

import bisect
from typing import Any, Generic, Iterator, List, Optional, Set, Tuple, TypeVar

V = TypeVar("V")

DEFAULT_ORDER = 64


class _Leaf(Generic[V]):
    __slots__ = ("keys", "values", "next", "prev")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[V] = []
        self.next: Optional["_Leaf[V]"] = None
        self.prev: Optional["_Leaf[V]"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # len(children) == len(keys) + 1; subtree children[i] holds keys
        # strictly less than keys[i] and >= keys[i-1].
        self.keys: List[Any] = []
        self.children: List[Any] = []


class Cursor(Generic[V]):
    """A position inside the leaf chain of a :class:`BPlusTree`.

    A cursor is *valid* when it points at an entry and *exhausted* once it
    walks off either end.  Cursors share their tree's ``scan_steps`` counter.
    """

    __slots__ = ("_tree", "_leaf", "_slot")

    def __init__(self, tree: "BPlusTree[V]", leaf: Optional[_Leaf[V]], slot: int):
        self._tree = tree
        self._leaf = leaf
        self._slot = slot

    @property
    def valid(self) -> bool:
        return self._leaf is not None

    @property
    def key(self) -> Any:
        assert self._leaf is not None, "cursor is exhausted"
        return self._leaf.keys[self._slot]

    @property
    def value(self) -> V:
        assert self._leaf is not None, "cursor is exhausted"
        return self._leaf.values[self._slot]

    def advance(self) -> bool:
        """Move to the next entry in key order; False when exhausted."""
        if self._leaf is None:
            return False
        self._tree.scan_steps += 1
        self._slot += 1
        if self._slot >= len(self._leaf.keys):
            self._leaf = self._leaf.next
            self._slot = 0
        return self._leaf is not None

    def retreat(self) -> bool:
        """Move to the previous entry in key order; False when exhausted."""
        if self._leaf is None:
            return False
        self._tree.scan_steps += 1
        self._slot -= 1
        if self._slot < 0:
            self._leaf = self._leaf.prev
            self._slot = len(self._leaf.keys) - 1 if self._leaf is not None else 0
        return self._leaf is not None

    def clone(self) -> "Cursor[V]":
        return Cursor(self._tree, self._leaf, self._slot)

    # -- bulk leaf walks ---------------------------------------------------
    #
    # The SSI result-enumeration step walks leaves outward from a probe
    # point collecting every contributing entry (Section 3.1 STEP 2).  These
    # collectors are the tight-loop equivalents of advance()/retreat() with
    # an inlined bound check; they do not move the cursor.

    def collect_forward_le(self, bound: Any) -> List[V]:
        """Values at and after this position while key <= bound."""
        out: List[V] = []
        leaf, slot = self._leaf, self._slot
        while leaf is not None:
            keys = leaf.keys
            values = leaf.values
            n = len(keys)
            while slot < n:
                if keys[slot] > bound:
                    self._tree.scan_steps += len(out) + 1
                    return out
                out.append(values[slot])
                slot += 1
            leaf = leaf.next
            slot = 0
        self._tree.scan_steps += len(out) + 1
        return out

    def collect_backward_ge(self, bound: Any) -> List[V]:
        """Values at and before this position while key >= bound, returned
        in ascending key order."""
        out: List[V] = []
        leaf, slot = self._leaf, self._slot
        while leaf is not None:
            keys = leaf.keys
            values = leaf.values
            while slot >= 0:
                if keys[slot] < bound:
                    self._tree.scan_steps += len(out) + 1
                    out.reverse()
                    return out
                out.append(values[slot])
                slot -= 1
            leaf = leaf.prev
            slot = len(leaf.keys) - 1 if leaf is not None else 0
        self._tree.scan_steps += len(out) + 1
        out.reverse()
        return out

    def collect_forward_prefix_le(self, prefix: Any, bound: Any) -> List[V]:
        """Composite-key walk: values while key == (prefix, c) with
        c <= bound."""
        out: List[V] = []
        leaf, slot = self._leaf, self._slot
        while leaf is not None:
            keys = leaf.keys
            values = leaf.values
            n = len(keys)
            while slot < n:
                key = keys[slot]
                if key[0] != prefix or key[1] > bound:
                    self._tree.scan_steps += len(out) + 1
                    return out
                out.append(values[slot])
                slot += 1
            leaf = leaf.next
            slot = 0
        self._tree.scan_steps += len(out) + 1
        return out

    def collect_backward_prefix_ge(self, prefix: Any, bound: Any) -> List[V]:
        """Composite-key walk backwards: values while key == (prefix, c)
        with c >= bound, returned in ascending key order."""
        out: List[V] = []
        leaf, slot = self._leaf, self._slot
        while leaf is not None:
            keys = leaf.keys
            values = leaf.values
            while slot >= 0:
                key = keys[slot]
                if key[0] != prefix or key[1] < bound:
                    self._tree.scan_steps += len(out) + 1
                    out.reverse()
                    return out
                out.append(values[slot])
                slot -= 1
            leaf = leaf.prev
            slot = len(leaf.keys) - 1 if leaf is not None else 0
        self._tree.scan_steps += len(out) + 1
        out.reverse()
        return out


class BPlusTree(Generic[V]):
    """B+ tree mapping totally-ordered keys to values, duplicates allowed."""

    __slots__ = (
        "_max_keys",
        "_min_keys",
        "_root",
        "_size",
        "probe_count",
        "scan_steps",
        "mutation_count",
        "_flat_cache",
    )

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise ValueError("order must be >= 4")
        self._max_keys = order
        self._min_keys = order // 2
        self._root: Any = _Leaf()
        self._size = 0
        self.probe_count = 0
        self.scan_steps = 0
        self.mutation_count = 0
        self._flat_cache: Optional[Tuple[int, List[Any], List[V]]] = None

    # -- lookup ------------------------------------------------------------

    def _descend_left(self, key: Any) -> _Leaf[V]:
        """Leaf that would contain the first entry with key >= ``key``."""
        self.probe_count += 1
        node = self._root
        while isinstance(node, _Internal):
            idx = bisect.bisect_left(node.keys, key)
            node = node.children[idx]
        return node

    def _descend_right(self, key: Any) -> _Leaf[V]:
        """Leaf that would contain the last entry with key <= ``key``."""
        self.probe_count += 1
        node = self._root
        while isinstance(node, _Internal):
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def cursor_ge(self, key: Any) -> Cursor[V]:
        """Cursor at the first entry with key >= ``key`` (exhausted if none)."""
        leaf = self._descend_left(key)
        slot = bisect.bisect_left(leaf.keys, key)
        if slot == len(leaf.keys):
            return Cursor(self, leaf.next, 0)
        return Cursor(self, leaf, slot)

    def cursor_le(self, key: Any) -> Cursor[V]:
        """Cursor at the last entry with key <= ``key`` (exhausted if none)."""
        leaf = self._descend_right(key)
        slot = bisect.bisect_right(leaf.keys, key) - 1
        if slot < 0:
            prev = leaf.prev
            if prev is None:
                return Cursor(self, None, 0)
            return Cursor(self, prev, len(prev.keys) - 1)
        return Cursor(self, leaf, slot)

    def cursor_first(self) -> Cursor[V]:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        if not node.keys:
            return Cursor(self, None, 0)
        return Cursor(self, node, 0)

    def surrounding(self, key: Any) -> Tuple[Cursor[V], Cursor[V]]:
        """The two *adjacent* entries (pred, succ) surrounding ``key``.

        ``succ`` is the first entry with key >= ``key``; ``pred`` is the
        entry immediately before it (so when several entries equal ``key``,
        ``pred`` is the entry before the run, not its last element).  Either
        cursor may be exhausted at the ends of the tree.  This is the
        primitive the SSI probes use to locate s1 and s2 around each
        stabbing point; a single root-to-leaf descent serves both cursors.
        """
        succ = self.cursor_ge(key)
        if succ.valid:
            pred = succ.clone()
            pred.retreat()
        else:
            pred = self.cursor_le(key)
        return pred, succ

    def get_all(self, key: Any) -> List[V]:
        """All values stored under exactly ``key``, in insertion order."""
        out: List[V] = []
        cur = self.cursor_ge(key)
        while cur.valid and cur.key == key:
            out.append(cur.value)
            cur.advance()
        return out

    def range_values(self, lo: Any, hi: Any) -> List[V]:
        """All values with lo <= key <= hi, via one descent plus a tight
        leaf walk (the fast path for the per-query range scans of BJ-QOuter
        and SJ-SelectFirst)."""
        cur = self.cursor_ge(lo)
        if not cur.valid:
            return []
        return cur.collect_forward_le(hi)

    def irange(self, lo: Any = None, hi: Any = None) -> Iterator[Tuple[Any, V]]:
        """Iterate (key, value) with lo <= key <= hi (None = unbounded)."""
        cur = self.cursor_first() if lo is None else self.cursor_ge(lo)
        while cur.valid and (hi is None or cur.key <= hi):
            yield cur.key, cur.value
            cur.advance()

    def items(self) -> Iterator[Tuple[Any, V]]:
        return self.irange()

    def flat_snapshot(self) -> Tuple[List[Any], List[V]]:
        """Parallel (keys, values) lists of every entry in key order.

        Built by one walk of the leaf chain and cached until the next
        structural update (``mutation_count`` tags the version), so a batch
        of probes pays the O(n) flattening once.  The batch fast path runs
        ``searchsorted``/``bisect`` directly on the flat key column instead
        of descending the tree per probe.  Callers must not mutate the
        returned lists.
        """
        cache = self._flat_cache
        if cache is not None and cache[0] == self.mutation_count:
            return cache[1], cache[2]
        keys: List[Any] = []
        values: List[V] = []
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        while node is not None:
            keys.extend(node.keys)
            values.extend(node.values)
            node = node.next
        self._flat_cache = (self.mutation_count, keys, values)
        return keys, values

    # -- insertion -----------------------------------------------------------

    def insert(self, key: Any, value: V) -> None:
        split = self._insert(self._root, key, value)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1
        self.mutation_count += 1

    def _insert(self, node: Any, key: Any, value: V) -> Optional[Tuple[Any, Any]]:
        if isinstance(node, _Leaf):
            slot = bisect.bisect_right(node.keys, key)
            node.keys.insert(slot, key)
            node.values.insert(slot, value)
            if len(node.keys) > self._max_keys:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self._max_keys:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf[V]) -> Tuple[Any, _Leaf[V]]:
        mid = len(leaf.keys) // 2
        right: _Leaf[V] = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        del leaf.keys[mid:]
        del leaf.values[mid:]
        right.next = leaf.next
        right.prev = leaf
        if right.next is not None:
            right.next.prev = right
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> Tuple[Any, _Internal]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        del node.keys[mid:]
        del node.children[mid + 1:]
        return sep, right

    # -- deletion ------------------------------------------------------------

    def remove(self, key: Any, value: Optional[V] = None) -> V:
        """Remove one entry with ``key`` (matching ``value`` if given).

        Values are matched with ``is`` first, then ``==``.  Returns the
        removed value; raises KeyError when no entry matches.
        """
        removed = self._remove(self._root, key, value)
        if removed is _MISSING:
            raise KeyError(key)
        if isinstance(self._root, _Internal) and len(self._root.children) == 1:
            self._root = self._root.children[0]
        self._size -= 1
        self.mutation_count += 1
        return removed  # type: ignore[return-value]

    def _remove(self, node: Any, key: Any, value: Optional[V]) -> Any:
        if isinstance(node, _Leaf):
            slot = self._find_entry(node, key, value)
            if slot is None:
                return _MISSING
            node.keys.pop(slot)
            return node.values.pop(slot)
        idx = bisect.bisect_left(node.keys, key)
        # Equal keys may live in children[idx] .. children[bisect_right];
        # try each candidate subtree until the entry is found.
        hi = bisect.bisect_right(node.keys, key)
        removed = _MISSING
        child_idx = idx
        for child_idx in range(idx, hi + 1):
            removed = self._remove(node.children[child_idx], key, value)
            if removed is not _MISSING:
                break
        if removed is _MISSING:
            return _MISSING
        self._rebalance_child(node, child_idx)
        return removed

    def _find_entry(self, leaf: _Leaf[V], key: Any, value: Optional[V]) -> Optional[int]:
        slot = bisect.bisect_left(leaf.keys, key)
        first_eq: Optional[int] = None
        while slot < len(leaf.keys) and leaf.keys[slot] == key:
            if value is None or leaf.values[slot] is value:
                return slot
            if first_eq is None and leaf.values[slot] == value:
                first_eq = slot
            slot += 1
        return first_eq

    def _rebalance_child(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        if self._entry_count(child) >= self._min_keys:
            return
        left_sib = parent.children[idx - 1] if idx > 0 else None
        right_sib = parent.children[idx + 1] if idx + 1 < len(parent.children) else None
        if left_sib is not None and self._entry_count(left_sib) > self._min_keys:
            self._borrow_from_left(parent, idx)
        elif right_sib is not None and self._entry_count(right_sib) > self._min_keys:
            self._borrow_from_right(parent, idx)
        elif left_sib is not None:
            self._merge_children(parent, idx - 1)
        elif right_sib is not None:
            self._merge_children(parent, idx)

    @staticmethod
    def _entry_count(node: Any) -> int:
        return len(node.keys)

    def _borrow_from_left(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        left = parent.children[idx - 1]
        if isinstance(child, _Leaf):
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Internal, idx: int) -> None:
        child = parent.children[idx]
        right = parent.children[idx + 1]
        if isinstance(child, _Leaf):
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge_children(self, parent: _Internal, idx: int) -> None:
        """Merge children[idx+1] into children[idx]."""
        left = parent.children[idx]
        right = parent.children[idx + 1]
        if isinstance(left, _Leaf):
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
            if right.next is not None:
                right.next.prev = left
        else:
            left.keys.append(parent.keys[idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(idx)
        parent.children.pop(idx + 1)

    # -- misc ----------------------------------------------------------------

    def reset_counters(self) -> None:
        self.probe_count = 0
        self.scan_steps = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def check_invariants(self) -> None:
        """Validate structural invariants (tests only; O(n))."""
        leaves: List[_Leaf[V]] = []

        def _walk(node: Any, lo: Any, hi: Any, depth: int) -> int:
            if isinstance(node, _Leaf):
                # Duplicates may straddle separators, so bounds are inclusive
                # on both sides.
                for k in node.keys:
                    assert (lo is None or lo <= k) and (hi is None or k <= hi), "leaf key out of range"
                assert node.keys == sorted(node.keys)
                leaves.append(node)
                return depth
            assert len(node.children) == len(node.keys) + 1
            assert node.keys == sorted(node.keys)
            depths: Set[int] = set()
            bounds = [lo] + list(node.keys) + [hi]
            for i, child in enumerate(node.children):
                depths.add(_walk(child, bounds[i], bounds[i + 1], depth + 1))
            assert len(depths) == 1, "unbalanced B+ tree"
            return depths.pop()

        _walk(self._root, None, None, 0)
        # Leaf chain must visit every leaf in key order, doubly linked.
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        chain: List[_Leaf[V]] = []
        prev = None
        while node is not None:
            assert node.prev is prev
            chain.append(node)
            prev = node
            node = node.next
        assert chain == leaves, "leaf chain disagrees with tree order"
        total = sum(len(leaf.keys) for leaf in leaves)
        assert total == self._size, f"size mismatch: {total} != {self._size}"


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
