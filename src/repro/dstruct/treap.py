"""A treap (randomized balanced BST) supporting SPLIT and JOIN.

The refined stabbing-partition algorithm of Appendix B stores the intervals
of each group in a height-balanced tree that supports each of INSERT, DELETE,
SPLIT and JOIN in O(log n) time, ordered by left endpoint, and augmented so
that every subtree knows the common intersection of the intervals it holds
(the root therefore knows the group's common intersection).  The paper cites
Tarjan's height-balanced trees; a treap gives the same expected bounds with a
far simpler implementation and is what we use.

The treap is generic: nodes carry an arbitrary ``value`` and are ordered by a
``key`` that is fixed at insertion time.  An optional *aggregate* combines
values bottom-up; the interval-intersection aggregate used by the refined
algorithm lives in :class:`IntervalTreap` below.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.core.intervals import Interval

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("key", "value", "priority", "left", "right", "size", "agg")

    def __init__(self, key: Any, value: V, priority: float):
        self.key = key
        self.value = value
        self.priority = priority
        self.left: Optional["_Node[V]"] = None
        self.right: Optional["_Node[V]"] = None
        self.size = 1
        self.agg: Any = None


class Treap(Generic[V]):
    """Treap ordered by key; duplicate keys allowed (stable ordering).

    Parameters
    ----------
    aggregate:
        Optional pair ``(lift, combine)``: ``lift(value)`` maps a stored value
        to an aggregate and ``combine(a, b)`` merges two aggregates.  The
        aggregate of a subtree is ``combine`` folded over its values in order.
    rng:
        Random generator for priorities; pass a seeded ``random.Random`` for
        deterministic shapes in tests.
    """

    __slots__ = ("_root", "_rng", "_lift", "_combine")

    def __init__(
        self,
        *,
        aggregate: Optional[Tuple[Callable[[V], Any], Callable[[Any, Any], Any]]] = None,
        rng: Optional[random.Random] = None,
    ):
        self._root: Optional[_Node[V]] = None
        self._rng = rng if rng is not None else random.Random()
        self._lift: Optional[Callable[[V], Any]]
        self._combine: Optional[Callable[[Any, Any], Any]]
        if aggregate is not None:
            self._lift, self._combine = aggregate
        else:
            self._lift = None
            self._combine = None

    # -- node bookkeeping -------------------------------------------------

    def _pull(self, node: _Node[V]) -> None:
        node.size = 1
        agg = self._lift(node.value) if self._lift else None
        if node.left is not None:
            node.size += node.left.size
            if self._combine:
                agg = self._combine(node.left.agg, agg)
        if node.right is not None:
            node.size += node.right.size
            if self._combine:
                agg = self._combine(agg, node.right.agg)
        node.agg = agg

    def _merge(self, a: Optional[_Node[V]], b: Optional[_Node[V]]) -> Optional[_Node[V]]:
        """Join two treaps where every key in ``a`` <= every key in ``b``."""
        if a is None:
            return b
        if b is None:
            return a
        if a.priority > b.priority:
            a.right = self._merge(a.right, b)
            self._pull(a)
            return a
        b.left = self._merge(a, b.left)
        self._pull(b)
        return b

    def _split(
        self, node: Optional[_Node[V]], key: Any, *, after_equal: bool
    ) -> Tuple[Optional[_Node[V]], Optional[_Node[V]]]:
        """Split into (keys that go left, keys that go right) around ``key``.

        With ``after_equal=True`` items whose key equals ``key`` go to the
        left part (split point is *after* equal keys); otherwise they go
        right.
        """
        if node is None:
            return None, None
        goes_left = node.key <= key if after_equal else node.key < key
        if goes_left:
            left, right = self._split(node.right, key, after_equal=after_equal)
            node.right = left
            self._pull(node)
            return node, right
        left, right = self._split(node.left, key, after_equal=after_equal)
        node.left = right
        self._pull(node)
        return left, node

    # -- public API --------------------------------------------------------

    def insert(self, key: Any, value: V) -> None:
        """Insert in O(log n) expected time."""
        node = _Node(key, value, self._rng.random())
        if self._lift:
            node.agg = self._lift(value)
        left, right = self._split(self._root, key, after_equal=True)
        self._root = self._merge(self._merge(left, node), right)

    def remove(self, key: Any, match: Optional[Callable[[V], bool]] = None) -> V:
        """Remove and return one item with the given key.

        If ``match`` is given, the first in-order item with that key for which
        ``match(value)`` is true is removed.  Raises KeyError if absent.
        """

        def _remove(node: Optional[_Node[V]]) -> Tuple[Optional[_Node[V]], Optional[V]]:
            if node is None:
                return None, None
            if key < node.key:
                node.left, removed = _remove(node.left)
            elif node.key < key:
                node.right, removed = _remove(node.right)
            else:
                # Equal keys may appear in the left subtree too; search
                # in-order so ``match`` semantics are deterministic.
                node.left, removed = _remove(node.left)
                if removed is None:
                    if match is None or match(node.value):
                        return self._merge(node.left, node.right), node.value
                    node.right, removed = _remove(node.right)
            if removed is not None:
                self._pull(node)
            return node, removed

        self._root, removed = _remove(self._root)
        if removed is None:
            raise KeyError(key)
        return removed

    def split(self, key: Any, *, after_equal: bool = True) -> "Treap[V]":
        """Split off and return the prefix of items with key <= ``key``
        (or < ``key`` when ``after_equal=False``); self keeps the rest.
        """
        left, right = self._split(self._root, key, after_equal=after_equal)
        prefix = self._spawn()
        prefix._root = left
        self._root = right
        return prefix

    def join(self, other: "Treap[V]") -> None:
        """Absorb ``other`` (all of whose keys must be >= self's keys)."""
        if self._root is not None and other._root is not None:
            if self.max_key() > other.min_key():
                raise ValueError("join requires self's keys <= other's keys")
        self._root = self._merge(self._root, other._root)
        other._root = None

    def min_key(self) -> Any:
        node = self._require_root()
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> Any:
        node = self._require_root()
        while node.right is not None:
            node = node.right
        return node.key

    def min_value(self) -> V:
        node = self._require_root()
        while node.left is not None:
            node = node.left
        return node.value

    @property
    def aggregate(self) -> Any:
        """Aggregate over the whole tree (None when empty or not configured)."""
        return self._root.agg if self._root is not None else None

    def __len__(self) -> int:
        return self._root.size if self._root is not None else 0

    def __iter__(self) -> Iterator[V]:
        yield from self.items_values()

    def items(self) -> Iterator[Tuple[Any, V]]:
        stack: List[_Node[V]] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def items_values(self) -> Iterator[V]:
        for __, value in self.items():
            yield value

    def _require_root(self) -> _Node[V]:
        if self._root is None:
            raise IndexError("empty treap")
        return self._root

    def _spawn(self) -> "Treap[V]":
        clone = Treap.__new__(type(self))
        clone._root = None
        clone._rng = self._rng
        clone._lift = self._lift
        clone._combine = self._combine
        return clone


def _intersect_aggs(a: Optional[Interval], b: Optional[Interval]) -> Optional[Interval]:
    if a is None or b is None:
        return None
    return a.intersect(b)


class IntervalTreap(Treap[Interval]):
    """Treap of intervals keyed by left endpoint, augmented with the common
    intersection of each subtree.

    This is the per-group structure of the Appendix B refined algorithm: the
    root aggregate is the group's common intersection, and splitting at a left
    endpoint ``x`` peels off exactly the member intervals whose left endpoints
    lie at or before ``x``.
    """

    __slots__ = ()

    def __init__(self, rng: Optional[random.Random] = None):
        super().__init__(aggregate=(lambda iv: iv, _intersect_aggs), rng=rng)

    def add(self, interval: Interval) -> None:
        self.insert(interval.lo, interval)

    def discard(self, interval: Interval) -> None:
        """Remove one occurrence of ``interval``; KeyError if absent."""
        self.remove(interval.lo, match=lambda iv: iv == interval)

    @property
    def common_intersection(self) -> Optional[Interval]:
        """Common intersection of all member intervals (None iff empty or disjoint)."""
        return self.aggregate

    def split_left_of(self, x: float) -> "IntervalTreap":
        """Split off intervals whose left endpoint is <= ``x``."""
        return self.split(x, after_equal=True)  # type: ignore[return-value]
