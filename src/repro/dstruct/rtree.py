"""A Guttman R-tree over axis-aligned rectangles with point-stabbing search.

SJ-JoinFirst probes "a two-dimensional index (e.g., an R-tree) constructed on
the set of query rectangles" with each join result point, and SJ-SSI stores
"each group in the SSI ... as an R-tree that indexes the member queries by
their query rectangles".  This module provides that index: insertion with
least-enlargement descent, quadratic-split node overflow handling, deletion
with condense-tree reinsertion, and point/rectangle search.

``node_visits`` counts nodes touched by searches; the Theorem 4 ablation
benchmark uses it as a machine-independent proxy for g(n).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generic, Iterator, List, Optional, Set, Tuple, TypeVar

P = TypeVar("P")


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle [xlo, xhi] x [ylo, yhi]."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ValueError(f"invalid rectangle: {self!r}")

    def contains_point(self, x: float, y: float) -> bool:
        return self.xlo <= x <= self.xhi and self.ylo <= y <= self.yhi

    def intersects(self, other: "Rect") -> bool:
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    @property
    def area(self) -> float:
        return (self.xhi - self.xlo) * (self.yhi - self.ylo)

    def enlargement(self, other: "Rect") -> float:
        """Area increase of this rectangle needed to also cover ``other``."""
        return self.union(other).area - self.area


class _RNode(Generic[P]):
    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        # Leaf entries: (Rect, payload).  Internal entries: (Rect, _RNode).
        self.entries: List[Tuple[Rect, Any]] = []
        self.parent: Optional["_RNode[P]"] = None

    def mbr(self) -> Rect:
        rect = self.entries[0][0]
        for r, __ in self.entries[1:]:
            rect = rect.union(r)
        return rect


class RTree(Generic[P]):
    """Dynamic R-tree (Guttman 1984) with quadratic split.

    ``max_entries`` defaults to a small fan-out appropriate for the modest
    per-group rectangle counts the SSI produces; raise it for large flat
    indexes.
    """

    __slots__ = ("_max", "_min", "_root", "_size", "node_visits")

    def __init__(self, max_entries: int = 16):
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self._max = max_entries
        self._min = max(2, max_entries // 3)
        self._root: _RNode[P] = _RNode(leaf=True)
        self._size = 0
        self.node_visits = 0

    # -- search ----------------------------------------------------------------

    def stab(self, x: float, y: float) -> List[Tuple[Rect, P]]:
        """All (rect, payload) entries whose rectangle contains point (x, y)."""
        out: List[Tuple[Rect, P]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.node_visits += 1
            if node.leaf:
                for rect, payload in node.entries:
                    if rect.contains_point(x, y):
                        out.append((rect, payload))
            else:
                for rect, child in node.entries:
                    if rect.contains_point(x, y):
                        stack.append(child)
        return out

    def search(self, window: Rect) -> List[Tuple[Rect, P]]:
        """All entries whose rectangle intersects ``window``."""
        out: List[Tuple[Rect, P]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.node_visits += 1
            if node.leaf:
                for rect, payload in node.entries:
                    if rect.intersects(window):
                        out.append((rect, payload))
            else:
                for rect, child in node.entries:
                    if rect.intersects(window):
                        stack.append(child)
        return out

    # -- insertion -----------------------------------------------------------

    def insert(self, rect: Rect, payload: P) -> None:
        leaf = self._choose_leaf(self._root, rect)
        leaf.entries.append((rect, payload))
        self._size += 1
        if len(leaf.entries) > self._max:
            self._handle_overflow(leaf)
        else:
            self._adjust_upward(leaf)

    def _choose_leaf(self, node: _RNode[P], rect: Rect) -> _RNode[P]:
        while not node.leaf:
            best: Optional[_RNode[P]] = None
            best_key = (math.inf, math.inf)
            for entry_rect, child in node.entries:
                key = (entry_rect.enlargement(rect), entry_rect.area)
                if key < best_key:
                    best_key = key
                    best = child
            assert best is not None
            node = best
        return node

    def _handle_overflow(self, node: _RNode[P]) -> None:
        while len(node.entries) > self._max:
            sibling = self._quadratic_split(node)
            parent = node.parent
            if parent is None:
                new_root: _RNode[P] = _RNode(leaf=False)
                new_root.entries = [(node.mbr(), node), (sibling.mbr(), sibling)]
                node.parent = new_root
                sibling.parent = new_root
                self._root = new_root
                return
            self._replace_child_mbr(parent, node)
            parent.entries.append((sibling.mbr(), sibling))
            sibling.parent = parent
            node = parent
        self._adjust_upward(node)

    def _quadratic_split(self, node: _RNode[P]) -> _RNode[P]:
        entries = node.entries
        # Pick the pair of seeds wasting the most area if grouped together.
        best_waste = -math.inf
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = entries[i][0].union(entries[j][0]).area - entries[i][0].area - entries[j][0].area
                if waste > best_waste:
                    best_waste = waste
                    seeds = (i, j)
        i, j = seeds
        group_a = [entries[i]]
        group_b = [entries[j]]
        rect_a = entries[i][0]
        rect_b = entries[j][0]
        rest = [entries[k] for k in range(len(entries)) if k not in (i, j)]
        # Distribute by maximal preference difference, respecting min fill.
        while rest:
            if len(group_a) + len(rest) == self._min:
                group_a.extend(rest)
                rest = []
                break
            if len(group_b) + len(rest) == self._min:
                group_b.extend(rest)
                rest = []
                break
            best_idx = 0
            best_diff = -math.inf
            for idx, (rect, __) in enumerate(rest):
                diff = abs(rect_a.enlargement(rect) - rect_b.enlargement(rect))
                if diff > best_diff:
                    best_diff = diff
                    best_idx = idx
            rect, payload = rest.pop(best_idx)
            if rect_a.enlargement(rect) <= rect_b.enlargement(rect):
                group_a.append((rect, payload))
                rect_a = rect_a.union(rect)
            else:
                group_b.append((rect, payload))
                rect_b = rect_b.union(rect)
        node.entries = group_a
        sibling: _RNode[P] = _RNode(leaf=node.leaf)
        sibling.entries = group_b
        if not node.leaf:
            for __, child in group_b:
                child.parent = sibling
        return sibling

    def _replace_child_mbr(self, parent: _RNode[P], child: _RNode[P]) -> None:
        for idx, (__, c) in enumerate(parent.entries):
            if c is child:
                parent.entries[idx] = (child.mbr(), child)
                return
        raise AssertionError("child not found in parent")

    def _adjust_upward(self, node: _RNode[P]) -> None:
        while node.parent is not None:
            self._replace_child_mbr(node.parent, node)
            node = node.parent

    # -- deletion --------------------------------------------------------------

    def remove(self, rect: Rect, payload: P) -> None:
        """Remove the entry with this rectangle and payload (KeyError if absent)."""
        leaf = self._find_leaf(self._root, rect, payload)
        if leaf is None:
            raise KeyError((rect, payload))
        for idx, (r, p) in enumerate(leaf.entries):
            if r == rect and (p is payload or p == payload):
                leaf.entries.pop(idx)
                break
        self._size -= 1
        self._condense(leaf)

    def _find_leaf(self, node: _RNode[P], rect: Rect, payload: P) -> Optional[_RNode[P]]:
        if node.leaf:
            for r, p in node.entries:
                if r == rect and (p is payload or p == payload):
                    return node
            return None
        for r, child in node.entries:
            if r.intersects(rect):
                found = self._find_leaf(child, rect, payload)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _RNode[P]) -> None:
        orphans: List[Tuple[Rect, P]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self._min:
                # Drop the underfull node; reinsert its leaf entries later.
                parent.entries = [(r, c) for r, c in parent.entries if c is not node]
                orphans.extend(self._collect_leaf_entries(node))
            else:
                self._replace_child_mbr(parent, node)
            node = parent
        while not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][1]
            self._root.parent = None
        if not self._root.leaf and not self._root.entries:
            self._root = _RNode(leaf=True)
        for rect, payload in orphans:
            self._size -= 1  # insert() will re-increment
            self.insert(rect, payload)

    def _collect_leaf_entries(self, node: _RNode[P]) -> List[Tuple[Rect, P]]:
        if node.leaf:
            return list(node.entries)
        out: List[Tuple[Rect, P]] = []
        for __, child in node.entries:
            out.extend(self._collect_leaf_entries(child))
        return out

    # -- misc --------------------------------------------------------------------

    def reset_counters(self) -> None:
        self.node_visits = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Tuple[Rect, P]]:
        yield from self._collect_leaf_entries(self._root)

    def check_invariants(self) -> None:
        """Validate MBRs, parent pointers, fill factors (tests only)."""

        def _walk(node: _RNode[P], depth: int) -> Tuple[int, int]:
            count = 0
            depths: Set[int] = set()
            if node is not self._root:
                assert len(node.entries) >= self._min, "underfull node"
            assert len(node.entries) <= self._max, "overfull node"
            if node.leaf:
                return len(node.entries), depth
            for rect, child in node.entries:
                assert child.parent is node, "broken parent pointer"
                assert rect == child.mbr(), "stale MBR"
                c, d = _walk(child, depth + 1)
                count += c
                depths.add(d)
            assert len(depths) <= 1, "unbalanced R-tree"
            return count, depths.pop() if depths else depth
        count, __ = _walk(self._root, 0)
        assert count == self._size, f"size mismatch: {count} != {self._size}"
