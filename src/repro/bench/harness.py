"""Measurement harness for the figure-reproduction benchmarks.

The paper measures *throughput*: "the number of data update events that
each approach is able to process per second", excluding output time.  Our
processors return their result dictionaries (output buffering is identical
across strategies, matching "common to all approaches"); the harness times
a replay of a fixed event list and reports events/second, plus helpers to
print the series each figure plots and to assert the qualitative shape
(who wins, by what factor) that the reproduction is expected to preserve.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple


@dataclass
class Series:
    """One line of a figure: a label plus (x, y) points."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)
    # First-occurrence index per x, so y_at is O(1) instead of list.index's
    # O(n) scan (sweeps call it once per assertion per point).
    _pos: Dict[float, int] = field(default_factory=dict, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._reindex()

    def _reindex(self) -> None:
        self._pos = {}
        for i, x in enumerate(self.xs):
            self._pos.setdefault(x, i)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)
        self._pos.setdefault(x, len(self.xs) - 1)

    def y_at(self, x: float) -> float:
        idx = self._pos.get(x)
        if idx is None:
            # xs may have been extended directly; re-derive before giving up.
            self._reindex()
            idx = self._pos.get(x)
            if idx is None:
                raise ValueError(f"{x!r} is not in series {self.label!r}")
        return self.ys[idx]


def measure_throughput(
    process: Callable[[object], object],
    events: Sequence[object],
    *,
    repeats: int = 1,
    warmup: int = 0,
) -> float:
    """Replay ``events`` through ``process`` and return events/second.

    ``warmup`` untimed passes run first (caches, lazy structures, JIT-free
    but allocator-warm state); with ``repeats`` > 1 the best of the timed
    runs is reported, which damps scheduler noise in shape assertions.
    Warmup passes replay the same events, so only use them with probe-only
    ``process`` callables that do not install state.
    """
    if not events:
        raise ValueError("need at least one event")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for __ in range(warmup):
        for event in events:
            process(event)
    best = 0.0
    for __ in range(repeats):
        start = time.perf_counter()
        for event in events:
            process(event)
        elapsed = time.perf_counter() - start
        best = max(best, len(events) / max(elapsed, 1e-12))
    return best


def measure_batched_throughput(
    process_batch: Callable[[Sequence[object]], object],
    events: Sequence[object],
    *,
    batch_size: int,
    repeats: int = 1,
    warmup: int = 0,
) -> float:
    """Replay ``events`` in ``batch_size`` chunks through ``process_batch``
    and return events/second (same warmup/best-of-repeats protocol as
    :func:`measure_throughput`)."""
    if not events:
        raise ValueError("need at least one event")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    chunks = [events[i : i + batch_size] for i in range(0, len(events), batch_size)]
    for __ in range(warmup):
        for chunk in chunks:
            process_batch(chunk)
    best = 0.0
    for __ in range(repeats):
        start = time.perf_counter()
        for chunk in chunks:
            process_batch(chunk)
        elapsed = time.perf_counter() - start
        best = max(best, len(events) / max(elapsed, 1e-12))
    return best


def measure_event_time_us(
    process: Callable[[object], object], events: Sequence[object], *, repeats: int = 1
) -> float:
    """Average processing time per event in microseconds (Figure 9's axis)."""
    return 1e6 / measure_throughput(process, events, repeats=repeats)


def measure_amortized_update_ns(
    apply_update: Callable[[Tuple[str, object]], None],
    updates: Sequence[Tuple[str, object]],
) -> float:
    """Amortized per-update maintenance cost in nanoseconds (Figure 11)."""
    if not updates:
        raise ValueError("need at least one update")
    start = time.perf_counter()
    for update in updates:
        apply_update(update)
    elapsed = time.perf_counter() - start
    return 1e9 * elapsed / len(updates)


def print_figure(
    title: str,
    x_label: str,
    series: Iterable[Series],
    *,
    y_format: str = "{:,.0f}",
) -> None:
    """Print a figure's series as an aligned table, one row per x value."""
    series = list(series)
    print(f"\n=== {title} ===")
    xs = series[0].xs
    header = [x_label] + [s.label for s in series]
    widths = [max(len(h), 12) for h in header]
    print("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for i, x in enumerate(xs):
        row = [f"{x:g}".rjust(widths[0])]
        for s, w in zip(series, widths[1:]):
            value = s.ys[i] if i < len(s.ys) else float("nan")
            row.append(y_format.format(value).rjust(w))
        print("  ".join(row))


def bench_env() -> Dict[str, object]:
    """Interpreter/platform metadata stamped into every benchmark record,
    so BENCH_*.json numbers from different machines stay comparable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "gil_enabled": getattr(sys, "_is_gil_enabled", lambda: True)(),
    }


def emit_json(tag: str, payload: Dict[str, Any]) -> None:
    """Emit one machine-readable benchmark record.

    Prints a single ``BENCH-JSON`` line (grep-friendly in pytest output) and,
    when the ``REPRO_BENCH_JSON`` env var names a file, appends the record
    there as JSON-lines, so sweeps can be collected across runs.  Records
    carry :func:`bench_env` metadata under ``env``.
    """
    record = {"tag": tag, "env": bench_env(), **payload}
    line = json.dumps(record, sort_keys=True, default=float)
    print(f"BENCH-JSON {line}")
    path = os.environ.get("REPRO_BENCH_JSON")
    if path:
        with open(path, "a") as handle:
            handle.write(line + "\n")


def assert_dominates(
    winner: Series, loser: Series, *, factor: float = 1.0, at: Iterable[float] | None = None
) -> None:
    """Assert the winner's y beats the loser's by at least ``factor`` at the
    given x values (all shared x by default).  Used by benchmarks to pin the
    figure's qualitative shape."""
    xs = list(at) if at is not None else [x for x in winner.xs if x in loser.xs]
    assert xs, "no shared x values to compare at"
    for x in xs:
        w = winner.y_at(x)
        l = loser.y_at(x)
        assert w >= l * factor, (
            f"expected {winner.label} >= {factor}x {loser.label} at x={x}: {w:.1f} vs {l:.1f}"
        )


def assert_flat(series: Series, *, max_drop: float) -> None:
    """Assert y never falls below ``max_drop`` times its maximum --- the
    "stays stable as x grows" claims (e.g. SJ-SSI across query counts)."""
    top = max(series.ys)
    bottom = min(series.ys)
    assert bottom >= top * max_drop, (
        f"{series.label} dropped to {bottom:.1f} (< {max_drop:.0%} of {top:.1f})"
    )


def assert_decreasing(series: Series, *, tolerance: float = 0.15) -> None:
    """Assert a series trends downward (allowing ``tolerance`` noise per
    step, relative to the current level)."""
    for (x0, y0), (x1, y1) in zip(zip(series.xs, series.ys), zip(series.xs[1:], series.ys[1:])):
        assert y1 <= y0 * (1.0 + tolerance), (
            f"{series.label} increased from {y0:.3g}@{x0:g} to {y1:.3g}@{x1:g}"
        )


def geometric_sweep(lo: int, hi: int, points: int) -> List[int]:
    """Roughly geometric integer sweep from lo to hi inclusive."""
    if points < 2 or lo < 1 or hi <= lo:
        raise ValueError("need points >= 2 and 1 <= lo < hi")
    out = []
    for i in range(points):
        value = round(lo * (hi / lo) ** (i / (points - 1)))
        if not out or value > out[-1]:
            out.append(value)
    return out
