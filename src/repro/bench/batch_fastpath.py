"""Batched-throughput benchmark: the columnar batch fast path vs the
per-event probe on the Figure 10(i) band-join workload.

Shared by the ``repro bench`` CLI verb and ``benchmarks/
test_batch_fastpath.py``: both build the paper's largest Fig-10(i) point
(20k band joins, stabbing number ~60, real-valued keys, narrow windows),
replay the same R-arrival stream through ``BJSSI.process_r`` one event at a
time and through ``BJSSI.process_r_batch`` at several batch sizes, and
report events/second.  Probes do not install state, so warmup passes and
best-of-``repeats`` timing are sound.

The resulting record (written to ``BENCH_batch_fastpath.json``) is the
first point of the perf trajectory the ROADMAP calls for; it carries
interpreter/platform metadata and the fastpath kernel in use so numbers
from different machines stay comparable.
"""

from __future__ import annotations

import dataclasses
import json
import random
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import (
    bench_env,
    measure_batched_throughput,
    measure_throughput,
)
from repro.fastpath import KERNEL
from repro.operators.band_join import BJSSI
from repro.workload import (
    WorkloadParams,
    ZipfSampler,
    make_band_join_queries,
    make_tables,
    r_insert_events,
)

DEFAULT_BATCH_SIZES = (16, 64, 256)


def fig10i_band_params() -> WorkloadParams:
    """The Figure 10(i) band-join workload: real-valued keys (no equality
    collisions), broad S.B spread, narrow band windows (mirrors
    ``benchmarks/test_fig10i_bj_scaling.band_params``)."""
    base = WorkloadParams(
        seed=2006,
        table_size=10_000,
        query_count=10_000,
        join_key_grid=50,
        s_b_sigma=1_000.0,
        range_a_mid_sigma=2_000.0,
        range_a_len_mean=200.0,
        range_a_len_sigma=50.0,
        range_c_len_mean=8.0,
        range_c_len_sigma=2.0,
        band_len_mean=120.0,
        band_len_sigma=40.0,
    )
    return dataclasses.replace(
        base.scaled(),
        integer_valued=False,
        join_key_grid=None,
        s_b_sigma=3_500.0,
        band_len_mean=0.02,
        band_len_sigma=0.005,
    )


def band_queries_with_tau(
    params: WorkloadParams, count: int, tau: int, seed: int, zipf_beta: Optional[float] = 1.0
) -> List:
    """Band joins whose windows form ~tau stabbing groups (bands live on
    the centered difference domain)."""
    half = params.domain_width / 2.0
    anchors = [-half / 2 + half * (i + 1) / (tau + 1) for i in range(tau)]
    sampler = ZipfSampler(tau, zipf_beta) if zipf_beta else None
    return make_band_join_queries(
        params,
        count,
        rng=random.Random(seed),
        band_anchors=anchors,
        anchor_sampler=sampler,
    )


def run_band_batch_benchmark(
    *,
    query_count: int = 20_000,
    tau: int = 60,
    event_count: int = 200,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    repeats: int = 5,
    warmup: int = 1,
    seed: int = 9,
) -> Dict[str, object]:
    """Measure per-event vs batched band-join probe throughput; returns the
    benchmark record (events/second, speedups, workload and environment)."""
    params = fig10i_band_params()
    table_r, table_s = make_tables(params)
    rng = random.Random(seed)
    events = [table_r.new_row(a, b) for a, b in r_insert_events(params, event_count, rng)]
    queries = band_queries_with_tau(params, query_count, tau, seed=50 + query_count)
    strategy = BJSSI(table_s, table_r)
    for query in queries:
        strategy.add_query(query)

    # Guard the timing with a delta-identity check on the first chunk.
    probe = events[: max(batch_sizes)]
    assert strategy.process_r_batch(probe) == [strategy.process_r(r) for r in probe], (
        "batch fast path diverged from the per-event probe"
    )

    # Interleave the timed rounds (per-event, then each batch size, per
    # round) so scheduler/frequency noise hits both paths alike; report the
    # best round of each, as measure_throughput does.
    for __ in range(warmup):
        for r in events:
            strategy.process_r(r)
    per_event = 0.0
    batched: Dict[str, float] = {str(size): 0.0 for size in batch_sizes}
    for round_no in range(repeats):
        per_event = max(
            per_event, measure_throughput(strategy.process_r, events, repeats=1)
        )
        for batch_size in batch_sizes:
            eps = measure_batched_throughput(
                strategy.process_r_batch,
                events,
                batch_size=batch_size,
                repeats=1,
                warmup=warmup if round_no == 0 else 0,
            )
            batched[str(batch_size)] = max(batched[str(batch_size)], eps)
    speedups = {size: eps / per_event for size, eps in batched.items()}
    return {
        "tag": "batch_fastpath_band",
        "workload": "fig10i",
        "query_count": query_count,
        "tau": tau,
        "event_count": event_count,
        "table_size": params.table_size,
        "batch_sizes": list(batch_sizes),
        "repeats": repeats,
        "warmup": warmup,
        "seed": seed,
        "kernel": KERNEL,
        "per_event_eps": per_event,
        "batched_eps": batched,
        "speedup": speedups,
        "env": bench_env(),
    }


def write_bench_json(path: str, record: Dict[str, object]) -> None:
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True, default=float)
        handle.write("\n")


def format_record(record: Dict[str, object]) -> str:
    lines = [
        f"batch fast path [{record['kernel']}] — fig10i band join, "
        f"{record['query_count']} queries, tau={record['tau']}, "
        f"{record['event_count']} events",
        f"  per-event: {record['per_event_eps']:,.0f} events/s",
    ]
    for size, eps in record["batched_eps"].items():
        lines.append(
            f"  batch={size:>4}: {eps:,.0f} events/s  ({record['speedup'][size]:.2f}x)"
        )
    return "\n".join(lines)
