"""Throughput/maintenance measurement harness used by the benchmarks."""

from repro.bench.harness import (
    Series,
    assert_decreasing,
    assert_dominates,
    assert_flat,
    emit_json,
    geometric_sweep,
    measure_amortized_update_ns,
    measure_event_time_us,
    measure_throughput,
    print_figure,
)

__all__ = [
    "Series",
    "assert_decreasing",
    "assert_dominates",
    "assert_flat",
    "emit_json",
    "geometric_sweep",
    "measure_amortized_update_ns",
    "measure_event_time_us",
    "measure_throughput",
    "print_figure",
]
