"""Transport benchmark: the shared-memory data plane vs pickle.

Two measurements, both on the Figure 10(i) band-join workload
(:func:`~repro.bench.batch_fastpath.fig10i_band_params`):

* **micro** — one shard batch of R-insert entries round-tripped through a
  loopback :class:`~repro.runtime.transport.shm.ShmRing`, serialized once
  with the columnar frame codec (``encode_batch_frame`` →
  ``decode_frame``) and once with ``pickle`` — the serialization
  ``mode="process"`` pays on the same boundary.  No scheduling is
  involved, so this isolates codec + ring cost per batch.
* **e2e** — the same arrival stream driven through a full
  :class:`~repro.runtime.pipeline.EventPipeline` in ``mode="process"``
  (pickle over ``ProcessPoolExecutor`` pipes) and ``mode="process-shm"``
  (columnar frames over shared-memory rings), events/second end to end.
  Each timed repeat uses a fresh pipeline and the identical event list,
  and modes are interleaved within every repeat so scheduler noise lands
  on both alike.  The headline ``speedup`` compares the *median* repeat
  of each mode — single-core hosts drift through fast and slow phases,
  and a median-over-interleaved-repeats is the statistic least swayed by
  one lucky or unlucky run; best-repeat numbers are reported alongside.

The combined record lands in ``BENCH_transport.json`` at the repo root
(see ``docs/RUNTIME.md`` for the ``BENCH_*.json`` convention).
"""

from __future__ import annotations

import pickle
import random
import statistics
import time
from typing import Dict, List, Sequence

from repro.bench.batch_fastpath import band_queries_with_tau, fig10i_band_params
from repro.bench.harness import bench_env
from repro.engine.events import DataEvent, EventKind
from repro.runtime.transport import frames
from repro.runtime.transport.shm import ShmRing
from repro.workload import make_tables, r_insert_events

__all__ = [
    "run_transport_microbenchmark",
    "run_transport_e2e_benchmark",
    "run_transport_benchmark",
    "format_record",
]

#: Ring size for the loopback micro benchmark — large enough that the
#: biggest batch frame fits with room to spare, so send never waits.
_MICRO_RING_CAPACITY = 4 << 20


def _fig10i_insert_events(count: int, seed: int) -> List[DataEvent]:
    """R-arrival DataEvents of the Fig-10(i) stream with unique rids."""
    params = fig10i_band_params()
    table_r, _ = make_tables(params)
    rng = random.Random(seed)
    return [
        DataEvent(EventKind.INSERT, "R", table_r.new_row(a, b))
        for a, b in r_insert_events(params, count, rng)
    ]


def run_transport_microbenchmark(
    *,
    batch_sizes: Sequence[int] = (16, 64, 256),
    repeats: int = 400,
    seed: int = 9,
) -> Dict[str, object]:
    """Frame-codec vs pickle round trips through one loopback ring.

    Returns per-batch-size round-trip microseconds for both serializers
    and the pickle/frames speedup ratio (>1 means frames win).
    """
    events = _fig10i_insert_events(max(batch_sizes), seed)
    ring = ShmRing.create(_MICRO_RING_CAPACITY)
    out: Dict[str, Dict[str, float]] = {}
    try:
        for size in batch_sizes:
            entries = [(seq, events[seq], True, False) for seq in range(size)]
            frames_best = pickle_best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                ring.send(frames.encode_batch_frame(entries))
                frames.decode_frame(ring.recv())
                frames_best = min(frames_best, time.perf_counter() - start)
                start = time.perf_counter()
                ring.send(pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL))
                pickle.loads(ring.recv())
                pickle_best = min(pickle_best, time.perf_counter() - start)
            out[str(size)] = {
                "frames_us": frames_best * 1e6,
                "pickle_us": pickle_best * 1e6,
                "speedup": pickle_best / frames_best,
            }
    finally:
        ring.close()
        ring.unlink()
    return {
        "tag": "transport_micro",
        "workload": "fig10i",
        "batch_sizes": list(batch_sizes),
        "repeats": repeats,
        "seed": seed,
        "roundtrip": out,
    }


def run_transport_e2e_benchmark(
    *,
    query_count: int = 50,
    tau: int = 60,
    event_count: int = 5_000,
    num_shards: int = 4,
    batch_size: int = 16,
    repeats: int = 5,
    seed: int = 9,
) -> Dict[str, object]:
    """End-to-end pipeline throughput: ``process`` vs ``process-shm``.

    Both modes replay the identical Fig-10(i) arrival stream against the
    same subscriptions; every repeat builds fresh pipelines (so the probed
    table is identical across repeats) and runs the two modes back to
    back.  The headline ``speedup`` is median-vs-median (see the module
    docstring); per-repeat times and best-repeat throughput are included
    in the record.
    """
    from repro.runtime.pipeline import EventPipeline

    params = fig10i_band_params()
    events = _fig10i_insert_events(event_count, seed)
    queries = band_queries_with_tau(params, query_count, tau, seed=50 + query_count)

    def timed_run(mode: str) -> float:
        pipe = EventPipeline(
            num_shards=num_shards,
            batch_size=batch_size,
            mode=mode,
            alpha=0.05,
        )
        try:
            for query in queries:
                pipe.subscribe(query)
            start = time.perf_counter()
            pipe.run(events)
            return time.perf_counter() - start
        finally:
            pipe.close()

    times: Dict[str, List[float]] = {"process": [], "process-shm": []}
    for _ in range(repeats):
        for mode in times:
            times[mode].append(timed_run(mode))
    median = {mode: statistics.median(runs) for mode, runs in times.items()}
    eps = {mode: event_count / elapsed for mode, elapsed in median.items()}
    best_eps = {mode: event_count / min(runs) for mode, runs in times.items()}
    return {
        "tag": "transport_e2e",
        "workload": "fig10i",
        "query_count": query_count,
        "tau": tau,
        "event_count": event_count,
        "num_shards": num_shards,
        "batch_size": batch_size,
        "repeats": repeats,
        "seed": seed,
        "seconds": times,
        "events_per_second": eps,
        "best_events_per_second": best_eps,
        "speedup": eps["process-shm"] / eps["process"],
        "speedup_best": best_eps["process-shm"] / best_eps["process"],
    }


def run_transport_benchmark(
    *,
    micro_batch_sizes: Sequence[int] = (16, 64, 256),
    micro_repeats: int = 400,
    query_count: int = 50,
    tau: int = 60,
    event_count: int = 5_000,
    num_shards: int = 4,
    batch_size: int = 16,
    e2e_repeats: int = 5,
    seed: int = 9,
) -> Dict[str, object]:
    """The combined record written to ``BENCH_transport.json``."""
    return {
        "tag": "transport",
        "workload": "fig10i",
        "micro": run_transport_microbenchmark(
            batch_sizes=micro_batch_sizes, repeats=micro_repeats, seed=seed
        ),
        "e2e": run_transport_e2e_benchmark(
            query_count=query_count,
            tau=tau,
            event_count=event_count,
            num_shards=num_shards,
            batch_size=batch_size,
            repeats=e2e_repeats,
            seed=seed,
        ),
        "env": bench_env(),
    }


def format_record(record: Dict[str, object]) -> str:
    micro = record["micro"]
    e2e = record["e2e"]
    assert isinstance(micro, dict) and isinstance(e2e, dict)
    lines = ["transport — fig10i band join, shm frames vs pickle"]
    for size, row in micro["roundtrip"].items():
        lines.append(
            f"  micro batch={size:>4}: frames {row['frames_us']:,.0f}us  "
            f"pickle {row['pickle_us']:,.0f}us  ({row['speedup']:.2f}x)"
        )
    eps = e2e["events_per_second"]
    lines.append(
        f"  e2e ({e2e['query_count']} queries, {e2e['num_shards']} shards, "
        f"batch={e2e['batch_size']}): "
        f"process {eps['process']:,.0f} ev/s  "
        f"process-shm {eps['process-shm']:,.0f} ev/s  "
        f"({e2e['speedup']:.2f}x)"
    )
    return "\n".join(lines)
