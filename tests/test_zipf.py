"""Tests for the Zipf coverage utilities (Figure 2's curves)."""

import random

import pytest

from repro.workload.zipf import ZipfSampler, coverage_curve, zipf_weights


class TestWeights:
    def test_decreasing(self):
        weights = zipf_weights(100, 1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_beta_one_is_harmonic(self):
        weights = zipf_weights(3, 1.0)
        assert weights == pytest.approx([1.0, 0.5, 1 / 3])

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, 0.0)


class TestCoverage:
    def test_monotone_in_k(self):
        curve = coverage_curve(5000, 1.0, [1, 10, 100, 500, 5000])
        assert all(a < b for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(1.0)

    def test_paper_figure_2_anchor(self):
        # "top-500 largest stabbing groups (10% of all groups) cover about
        # 70% of all queries when beta = 1".
        (coverage,) = coverage_curve(5000, 1.0, [500])
        assert 0.65 <= coverage <= 0.80

    def test_larger_beta_covers_more(self):
        for k in (50, 500):
            c10, c11, c12 = (
                coverage_curve(5000, beta, [k])[0] for beta in (1.0, 1.1, 1.2)
            )
            assert c10 < c11 < c12

    def test_k_clipped(self):
        assert coverage_curve(10, 1.0, [99]) == [pytest.approx(1.0)]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            coverage_curve(10, 1.0, [0])


class TestSampler:
    def test_distribution_skew(self):
        sampler = ZipfSampler(50, 1.0)
        rng = random.Random(5)
        counts = [0] * 50
        for __ in range(20_000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] > counts[10] > counts[49]
        assert sampler.group_count == 50

    def test_all_indices_in_range(self):
        sampler = ZipfSampler(5, 1.2)
        rng = random.Random(6)
        assert all(0 <= sampler.sample(rng) < 5 for __ in range(1000))
