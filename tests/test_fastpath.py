"""Tests for the columnar batch fast path: every batched entry point must be
delta-identical to its per-event counterpart — same affected queries, same
result rows, same order — on both the numpy and pure-Python kernels."""

import random

import pytest

from repro.check import FuzzConfig, fuzz
from repro.core.intervals import Interval
from repro.engine.events import DataEvent, EventKind
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.system import ContinuousQuerySystem
from repro.engine.table import TableR, TableS
from repro.fastpath import KERNEL, count_le
from repro.fastpath import kernels as kernel_mod
from repro.operators.band_join import BJSSI
from repro.operators.hotspot_processor import (
    HotspotBandJoinProcessor,
    HotspotSelectJoinProcessor,
)
from repro.operators.select_join import SJSSI
from repro.runtime.sharding import ShardedContinuousQuerySystem

BATCH_SIZES = (1, 2, 7, 8, 23, 120)


@pytest.fixture(params=["native", "python"])
def kernel(request, monkeypatch):
    """Run each test under the imported kernel and with numpy disabled.

    Every consumer reads the handle through ``kernels.get_numpy()`` at call
    time (RA002 kernel isolation), so patching the one module-global in
    ``kernels`` forces the scalar fallback everywhere.
    """
    if request.param == "python":
        monkeypatch.setattr(kernel_mod, "_np", None)
    return request.param


def make_tables(rng, n_s=300, n_r=300):
    table_s = TableS()
    table_r = TableR()
    for __ in range(n_s):
        table_s.add(rng.uniform(0, 100), rng.uniform(0, 100))
    for __ in range(n_r):
        table_r.add(rng.uniform(0, 100), rng.uniform(0, 100))
    return table_s, table_r


def band_queries(rng, count):
    queries = []
    for __ in range(count):
        lo = rng.uniform(-60, 60)
        queries.append(BandJoinQuery(Interval(lo, lo + rng.uniform(0, 8))))
    return queries


def select_queries(rng, count):
    queries = []
    for __ in range(count):
        a_lo = rng.uniform(0, 90)
        c_lo = rng.uniform(0, 90)
        queries.append(
            SelectJoinQuery(
                Interval(a_lo, a_lo + rng.uniform(0, 20)),
                Interval(c_lo, c_lo + rng.uniform(0, 20)),
            )
        )
    return queries


def assert_batches_match(process_batch, process_one, rows):
    for size in BATCH_SIZES:
        chunk = rows[:size]
        assert process_batch(chunk) == [process_one(row) for row in chunk], (
            f"batch size {size} diverged"
        )


class TestKernels:
    def test_kernel_selection(self):
        assert KERNEL in ("numpy", "python")

    def test_count_le_matches_bisect(self, kernel):
        from array import array
        from bisect import bisect_right

        rng = random.Random(0)
        keys = array("d", sorted(rng.uniform(0, 10) for __ in range(50)))
        bounds = [rng.uniform(-1, 11) for __ in range(20)] + [keys[3], keys[10]]
        assert count_le(keys, bounds) == [bisect_right(keys, b) for b in bounds]

    def test_count_le_empty(self, kernel):
        from array import array

        assert count_le(array("d"), [1.0, 2.0]) == [0, 0]
        assert count_le(array("d", [1.0]), []) == []


class TestBandBatch:
    def test_r_and_s_sides_match_per_event(self, kernel):
        rng = random.Random(1)
        table_s, table_r = make_tables(rng)
        strategy = BJSSI(table_s, table_r)
        for query in band_queries(rng, 400):
            strategy.add_query(query)
        rs = [table_r.new_row(rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(120)]
        ss = [table_s.new_row(rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(120)]
        assert_batches_match(strategy.process_r_batch, strategy.process_r, rs)
        assert_batches_match(strategy.process_s_batch, strategy.process_s, ss)

    def test_batch_against_empty_tables(self, kernel):
        strategy = BJSSI(TableS(), TableR())
        strategy.add_query(BandJoinQuery(Interval(-1, 1)))
        r = strategy.table_r.new_row(5.0, 5.0)
        assert strategy.process_r_batch([r]) == [{}]
        assert strategy.process_r_batch([]) == []

    def test_batch_after_mutations_and_query_churn(self, kernel):
        rng = random.Random(2)
        table_s, table_r = make_tables(rng, n_s=150, n_r=150)
        strategy = BJSSI(table_s, table_r)
        queries = band_queries(rng, 200)
        for query in queries:
            strategy.add_query(query)
        rs = [table_r.new_row(rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(60)]
        assert_batches_match(strategy.process_r_batch, strategy.process_r, rs)
        # Mutate the probed table and the query set; snapshots must refresh.
        for row in rs[:30]:
            table_r.insert(row)
        for __ in range(40):
            table_s.add(rng.uniform(0, 100), rng.uniform(0, 100))
        for query in queries[::3]:
            strategy.remove_query(query)
        assert_batches_match(strategy.process_r_batch, strategy.process_r, rs)
        ss = [table_s.new_row(rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(60)]
        assert_batches_match(strategy.process_s_batch, strategy.process_s, ss)

    def test_result_order_is_preserved(self, kernel):
        """Batched result lists must keep the per-event enumeration order
        (ascending join key), not just the same set of rows."""
        table_s = TableS()
        rows = [table_s.add(float(b), 0.0) for b in (5, 3, 9, 1, 7)]
        assert rows  # silence unused warning; insertion order is scrambled
        strategy = BJSSI(table_s, TableR())
        strategy.add_query(BandJoinQuery(Interval(-10, 10)))
        r = strategy.table_r.new_row(0.0, 0.0)
        [batched] = strategy.process_r_batch([r])
        per_event = strategy.process_r(r)
        (b_rows,) = batched.values()
        (e_rows,) = per_event.values()
        assert [s.b for s in b_rows] == [s.b for s in e_rows] == [1, 3, 5, 7, 9]


class TestSelectBatch:
    def test_r_and_s_sides_match_per_event(self, kernel):
        rng = random.Random(3)
        table_s, table_r = make_tables(rng)
        strategy = SJSSI(table_s, table_r)
        for query in select_queries(rng, 300):
            strategy.add_query(query)
        rs = [table_r.new_row(rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(120)]
        ss = [table_s.new_row(rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(120)]
        assert_batches_match(strategy.process_r_batch, strategy.process_r, rs)
        assert_batches_match(strategy.process_s_batch, strategy.process_s, ss)

    def test_asymmetric_sjssi_rejects_s_batches(self, kernel):
        strategy = SJSSI(TableS(), TableR(), symmetric=False)
        s = strategy.table_s.new_row(1.0, 1.0)
        with pytest.raises(RuntimeError):
            strategy.process_s_batch([s])


class TestHotspotBatch:
    def test_band_processor_matches_per_event(self, kernel):
        rng = random.Random(4)
        table_s, table_r = make_tables(rng)
        processor = HotspotBandJoinProcessor(table_s, table_r, alpha=0.05)
        for query in band_queries(rng, 300):
            processor.add_query(query)
        assert len(processor.tracker.hotspot_groups) > 0, "want both probe paths live"
        rs = [table_r.new_row(rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(80)]
        ss = [table_s.new_row(rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(80)]
        assert_batches_match(processor.process_r_batch, processor.process_r, rs)
        assert_batches_match(processor.process_s_batch, processor.process_s, ss)

    def test_select_processor_matches_per_event(self, kernel):
        rng = random.Random(5)
        table_s, table_r = make_tables(rng)
        processor = HotspotSelectJoinProcessor(table_s, table_r, alpha=0.05)
        for query in select_queries(rng, 300):
            processor.add_query(query)
        assert len(processor.tracker.hotspot_groups) > 0
        rs = [table_r.new_row(rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(80)]
        ss = [table_s.new_row(rng.uniform(0, 100), rng.uniform(0, 100)) for __ in range(80)]
        assert_batches_match(processor.process_r_batch, processor.process_r, rs)
        assert_batches_match(processor.process_s_batch, processor.process_s, ss)


def ordered_view(deltas):
    """qid -> row ids in result order: unlike ``normalize_deltas`` this keeps
    the enumeration order, so it also catches ordering regressions."""
    from repro.engine.table import STuple

    return {
        q.qid: [row.sid if isinstance(row, STuple) else row.rid for row in rows]
        for q, rows in deltas.items()
        if rows
    }


class TestShardedBatch:
    def _stream(self, rng, count):
        events = []
        live_r, live_s = [], []
        rid = sid = 0
        for __ in range(count):
            roll = rng.random()
            if roll < 0.4 or not live_r and not live_s:
                from repro.engine.table import RTuple

                row = RTuple(rid, rng.uniform(0, 100), rng.uniform(0, 100))
                rid += 1
                live_r.append(row)
                events.append(DataEvent(EventKind.INSERT, "R", row))
            elif roll < 0.8:
                from repro.engine.table import STuple

                row = STuple(sid, rng.uniform(0, 100), rng.uniform(0, 100))
                sid += 1
                live_s.append(row)
                events.append(DataEvent(EventKind.INSERT, "S", row))
            elif roll < 0.9 and live_r:
                events.append(
                    DataEvent(EventKind.DELETE, "R", live_r.pop(rng.randrange(len(live_r))))
                )
            elif live_s:
                events.append(
                    DataEvent(EventKind.DELETE, "S", live_s.pop(rng.randrange(len(live_s))))
                )
        return events

    @pytest.mark.parametrize("alpha", [0.05, None])
    def test_apply_batch_matches_per_event_system(self, kernel, alpha):
        rng = random.Random(6)
        batched = ShardedContinuousQuerySystem(num_shards=3, alpha=alpha)
        reference = ContinuousQuerySystem(alpha=alpha)
        for query in band_queries(rng, 60) + select_queries(rng, 60):
            batched.subscribe(query)
            reference.subscribe(query)
        events = self._stream(rng, 400)
        want = []
        for event in events:
            if event.kind is EventKind.INSERT:
                if event.relation == "R":
                    want.append(ordered_view(reference.insert_r_row(event.row)))
                else:
                    want.append(ordered_view(reference.insert_s_row(event.row)))
            else:
                if event.relation == "R":
                    reference.delete_r(event.row)
                else:
                    reference.delete_s(event.row)
                want.append({})
        got = []
        for start in range(0, len(events), 37):
            for delta in batched.apply_batch(events[start : start + 37]):
                got.append(ordered_view(delta))
        assert got == want

    def test_apply_batch_empty_and_singleton(self, kernel):
        system = ShardedContinuousQuerySystem(num_shards=2, alpha=0.1)
        assert system.apply_batch([]) == []
        system.subscribe(BandJoinQuery(Interval(-5, 5)))
        from repro.engine.table import STuple

        row = STuple(0, 3.0, 3.0)
        [delta] = system.apply_batch([DataEvent(EventKind.INSERT, "S", row)])
        assert delta == {}  # no R rows yet, so no results


class TestFastpathFuzzTarget:
    def test_fuzz_smoke(self):
        report = fuzz(FuzzConfig(seed=17, n_ops=400), targets=["fastpath"], shrink=False)
        assert report.ok, report.outcome.divergence
