"""Tests for the three histogram builders and the Figure 12 ordering."""

import random

import pytest

from repro.core.intervals import Interval
from repro.histogram import (
    Density,
    IntervalFrequency,
    average_relative_error,
    equal_width_histogram,
    mean_squared_relative_error,
    optimal_histogram,
    ssi_histogram,
)
from repro.histogram.builders import _allocate_buckets


def clustered_workload(seed=1, count=3000, cluster_count=8):
    rng = random.Random(seed)
    anchors = sorted(rng.uniform(500, 9500) for __ in range(cluster_count))
    intervals = []
    for __ in range(count):
        anchor = anchors[min(int(rng.expovariate(0.6)), cluster_count - 1)]
        left = abs(rng.normalvariate(120, 90)) + 2
        right = abs(rng.normalvariate(120, 90)) + 2
        intervals.append(Interval(anchor - left, anchor + right))
    return intervals


class TestEqualWidth:
    def test_bucket_count(self):
        freq = IntervalFrequency([Interval(0, 10), Interval(3, 7)])
        hist = equal_width_histogram(freq, 5)
        assert hist.piece_count == 5
        assert hist.support == (0.0, 10.0)

    def test_single_bucket_is_mean(self):
        freq = IntervalFrequency([Interval(0, 10), Interval(0, 5)])
        hist = equal_width_histogram(freq, 1)
        # f = 2 on [0,5), 1 on [5,10): uniform-phi mean = 1.5
        assert hist.values[0] == pytest.approx(1.5)

    def test_invalid_buckets(self):
        freq = IntervalFrequency([Interval(0, 1)])
        with pytest.raises(ValueError):
            equal_width_histogram(freq, 0)


class TestOptimal:
    def test_exact_when_buckets_cover_pieces(self):
        # f has 3 distinct pieces; 3 buckets represent it exactly.
        freq = IntervalFrequency([Interval(0, 10), Interval(4, 6)])
        hist = optimal_histogram(freq, 3)
        assert mean_squared_relative_error(hist, freq) == pytest.approx(0.0, abs=1e-12)

    def test_beats_equal_width(self):
        intervals = clustered_workload()
        freq = IntervalFrequency(intervals)
        for buckets in (15, 30):
            opt = optimal_histogram(freq, buckets)
            eqw = equal_width_histogram(freq, buckets)
            assert mean_squared_relative_error(opt, freq) <= (
                mean_squared_relative_error(eqw, freq) + 1e-9
            )

    def test_more_buckets_never_hurt(self):
        intervals = clustered_workload(seed=2, count=500)
        freq = IntervalFrequency(intervals)
        errors = [
            mean_squared_relative_error(optimal_histogram(freq, b), freq)
            for b in (5, 10, 20, 40)
        ]
        for a, b in zip(errors, errors[1:]):
            assert b <= a + 1e-9

    def test_coarsening_keeps_quality(self):
        intervals = clustered_workload(seed=3, count=1500)
        freq = IntervalFrequency(intervals)
        fine = optimal_histogram(freq, 20, max_segments=100_000)
        coarse = optimal_histogram(freq, 20, max_segments=300)
        e_fine = mean_squared_relative_error(fine, freq)
        e_coarse = mean_squared_relative_error(coarse, freq)
        assert e_coarse <= e_fine * 2.0 + 1e-6


class TestSSIHistogram:
    def test_report_metadata(self):
        intervals = clustered_workload(seed=4, count=800)
        report = ssi_histogram(intervals, 24)
        assert report.group_count >= 1
        assert len(report.allocations) == report.group_count
        assert all(k >= 1 for k in report.allocations)
        assert report.total_buckets >= 24 or report.total_buckets >= report.group_count

    def test_single_group_exact_representation(self):
        intervals = [Interval(0, 10), Interval(2, 8), Interval(4, 6)]
        report = ssi_histogram(intervals, 6, method="dp")
        freq = IntervalFrequency(intervals)
        for x in (0.5, 3.0, 5.0, 7.0, 9.5):
            assert report.histogram(x) == pytest.approx(freq.count(x))

    def test_methods_agree_roughly(self):
        intervals = clustered_workload(seed=5, count=1200)
        freq = IntervalFrequency(intervals)
        rng = random.Random(9)
        points = [rng.uniform(*freq.domain) for __ in range(800)]
        err_dp = average_relative_error(ssi_histogram(intervals, 30, method="dp").histogram, freq, points)
        err_lloyd = average_relative_error(ssi_histogram(intervals, 30, method="lloyd").histogram, freq, points)
        assert err_lloyd <= max(3.0 * err_dp, err_dp + 0.5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ssi_histogram([Interval(0, 1)], 0)
        with pytest.raises(ValueError):
            ssi_histogram([Interval(0, 1)], 5, method="bogus")

    def test_degenerate_point_intervals(self):
        intervals = [Interval(5.0, 5.0) for __ in range(10)]
        report = ssi_histogram(intervals, 4)
        assert report.group_count == 1
        assert report.histogram(5.0) >= 0.0  # sliver representation, no crash


class TestFigure12Ordering:
    def test_opt_beats_ssi_beats_eqw_on_clustered_workload(self):
        intervals = clustered_workload(seed=7, count=4000, cluster_count=12)
        freq = IntervalFrequency(intervals)
        rng = random.Random(3)
        lo, hi = freq.domain
        points = [rng.uniform(lo, hi) for __ in range(1500)]
        buckets = 24
        e_opt = average_relative_error(optimal_histogram(freq, buckets), freq, points)
        e_ssi = average_relative_error(ssi_histogram(intervals, buckets).histogram, freq, points)
        e_eqw = average_relative_error(equal_width_histogram(freq, buckets), freq, points)
        assert e_opt <= e_ssi * 1.05 + 1e-9
        assert e_ssi < e_eqw


class TestObjectives:
    def test_absolute_objective_tracks_peaks(self):
        # Heavy cluster spanning two decades of counts: the relative
        # objective hugs the tails, the absolute one tracks the peak.
        rng = random.Random(31)
        intervals = [
            Interval(100 - abs(rng.normalvariate(30, 20)) - 1,
                     100 + abs(rng.normalvariate(30, 20)) + 1)
            for __ in range(4000)
        ]
        freq = IntervalFrequency(intervals)
        peak = freq.count(100.0)
        relative = ssi_histogram(intervals, 6, objective="relative").histogram
        absolute = ssi_histogram(intervals, 6, objective="absolute").histogram
        assert abs(absolute(100.0) - peak) < abs(relative(100.0) - peak)
        assert absolute(100.0) > 0.5 * peak

    def test_relative_objective_wins_on_relative_error(self):
        rng = random.Random(32)
        intervals = [
            Interval(100 - abs(rng.normalvariate(30, 20)) - 1,
                     100 + abs(rng.normalvariate(30, 20)) + 1)
            for __ in range(3000)
        ]
        freq = IntervalFrequency(intervals)
        lo, hi = freq.domain
        points = [rng.uniform(lo, hi) for __ in range(1000)]
        err_rel = average_relative_error(
            ssi_histogram(intervals, 6, objective="relative").histogram, freq, points
        )
        err_abs = average_relative_error(
            ssi_histogram(intervals, 6, objective="absolute").histogram, freq, points
        )
        assert err_rel <= err_abs + 1e-9

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            ssi_histogram([Interval(0, 1)], 4, objective="bogus")


class TestAllocation:
    def test_proportional_with_minimum(self):
        alloc = _allocate_buckets([90, 5, 5], 20)
        assert alloc[0] >= 10
        assert all(k >= 1 for k in alloc)

    def test_remainders_spent(self):
        alloc = _allocate_buckets([1, 1, 1], 7)
        assert sum(alloc) == 7

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            _allocate_buckets([0, 0], 5)
