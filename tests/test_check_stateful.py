"""Hypothesis stateful test driving the tracker and both dynamic partitions
through one mixed op sequence in lockstep, checking oracle agreement after
every step.

This complements the fuzzer in ``repro.check``: hypothesis explores op
interleavings adversarially (and shrinks its own failures), while the fuzzer
covers the engine-domain targets and paper-shaped workloads.  The oracle here
is the O(n^2) piercing construction from ``repro.check.oracles`` — a different
algorithm than the sweep the structures themselves rebuild from.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from conftest import ALPHA_CHOICES, EPSILON_CHOICES
from repro.check.oracles import brute_force_tau
from repro.core.hotspot_tracker import HotspotTracker
from repro.core.intervals import Interval
from repro.core.lazy_partition import LazyStabbingPartition
from repro.core.refined_partition import RefinedStabbingPartition


class DifferentialMachine(RuleBasedStateMachine):
    """Lazy partition, refined partition and hotspot tracker vs the piercing
    oracle, under interleaved inserts, deletes and parameter changes."""

    def __init__(self):
        super().__init__()
        self.epsilon = 1.0
        self.alpha = 0.25
        self.model = []  # list of (lo, hi)
        self._rebuild(items=[])

    def _rebuild(self, items):
        """(Re)build every structure from ``items`` under current params.
        Each structure gets its own Interval objects (identity keying)."""
        self.lazy_items = [Interval(lo, hi) for lo, hi in items]
        self.refined_items = [Interval(lo, hi) for lo, hi in items]
        self.tracker_items = [Interval(lo, hi) for lo, hi in items]
        self.lazy = LazyStabbingPartition(self.lazy_items, epsilon=self.epsilon)
        self.refined = RefinedStabbingPartition(
            self.refined_items, epsilon=self.epsilon, seed=7
        )
        self.tracker = HotspotTracker(
            self.tracker_items, alpha=self.alpha, epsilon=self.epsilon
        )

    @rule(interval=st.from_type(Interval))
    def insert(self, interval):
        self.model.append((interval.lo, interval.hi))
        self.lazy_items.append(Interval(interval.lo, interval.hi))
        self.lazy.insert(self.lazy_items[-1])
        self.refined_items.append(Interval(interval.lo, interval.hi))
        self.refined.insert(self.refined_items[-1])
        self.tracker_items.append(Interval(interval.lo, interval.hi))
        self.tracker.insert(self.tracker_items[-1])

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        index = data.draw(st.integers(0, len(self.model) - 1))
        self.model.pop(index)
        self.lazy.delete(self.lazy_items.pop(index))
        self.refined.delete(self.refined_items.pop(index))
        self.tracker.delete(self.tracker_items.pop(index))

    @rule(epsilon=EPSILON_CHOICES)
    def set_epsilon(self, epsilon):
        self.epsilon = epsilon
        self._rebuild(self.model)

    @rule(alpha=ALPHA_CHOICES)
    def set_alpha(self, alpha):
        self.alpha = alpha
        self._rebuild(self.model)

    @invariant()
    def structures_agree_with_oracle(self):
        tau = brute_force_tau(self.model)
        n = len(self.model)
        slack = 1e-9

        self.lazy.validate()
        assert self.lazy.total_items() == n
        assert len(self.lazy) <= (1.0 + self.epsilon) * tau + slack

        self.refined.validate()
        assert self.refined.total_items() == n
        assert len(self.refined) <= (1.0 + self.epsilon) * tau + slack

        self.tracker.validate()
        assert len(self.tracker) == n
        total = len(self.tracker.hotspot_groups) + len(self.tracker.scattered)
        assert total <= (1.0 + self.epsilon) * tau + 2.0 / self.alpha + slack
        assert self.tracker.boundary_moves() <= 5 * max(self.tracker.update_count, 1)
        # I1 against the bare definitions: hotspot groups are all at least
        # (alpha/2)-dense (hysteresis demotes below that), so there are at
        # most 2/alpha of them.
        if n:
            assert all(
                g.size >= self.alpha / 2.0 * n - slack
                for g in self.tracker.hotspot_groups
            )
            assert len(self.tracker.hotspot_groups) <= 2.0 / self.alpha + slack


TestDifferentialMachine = DifferentialMachine.TestCase
TestDifferentialMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
