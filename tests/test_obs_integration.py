"""End-to-end observability: ``repro serve`` with tracing/snapshots through
``cli.main``, trace structure validation, and the ``repro stats`` verb
against both the JSONL stream and a live HTTP endpoint."""

import json
import urllib.request

import pytest

from repro.cli import main
from repro.obs.export import MetricsServer, latest_snapshot, render_snapshot
from repro.runtime.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One small durable serve run with every obs surface enabled."""
    root = tmp_path_factory.mktemp("obs")
    trace_path = root / "trace.json"
    snap_path = root / "snaps.jsonl"
    wal_dir = root / "wal"
    code = main([
        "serve",
        "--events", "600", "--queries", "120", "--shards", "2",
        "--batch-size", "32", "--report-every", "200", "--seed", "5",
        "--wal-dir", str(wal_dir),
        "--trace-out", str(trace_path),
        "--snapshot-out", str(snap_path),
    ])
    assert code == 0
    return {"trace": trace_path, "snaps": snap_path}


class TestServeTrace:
    def test_trace_is_valid_chrome_json(self, served):
        trace = json.loads(served["trace"].read_text())
        assert set(trace) >= {"traceEvents", "displayTimeUnit", "otherData"}
        events = trace["traceEvents"]
        assert events, "serve recorded no spans"
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["tid"], int)

    def test_span_taxonomy_present(self, served):
        events = json.loads(served["trace"].read_text())["traceEvents"]
        names = {event["name"] for event in events}
        assert names >= {"batch", "shard.apply", "wal.append", "wal.sync"}

    def test_span_tree_nesting(self, served):
        """Every shard.apply sits inside a batch window; every wal.append
        precedes or sits inside some batch (log-before-apply)."""
        events = json.loads(served["trace"].read_text())["traceEvents"]
        batches = [e for e in events if e["name"] == "batch"]
        applies = [e for e in events if e["name"] == "shard.apply"]
        assert batches and applies

        def inside(inner, outer):
            return (
                outer["ts"] <= inner["ts"]
                and inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
            )

        for apply_event in applies:
            assert any(inside(apply_event, b) for b in batches)
            assert apply_event["args"]["shard"] in (0, 1)
            assert apply_event["args"]["events"] >= 1


class TestSnapshotsAndStats:
    def test_hotspot_telemetry_exported(self, served):
        record = latest_snapshot(str(served["snaps"]))
        metrics = record["metrics"]
        counter_names = set(metrics["counters"])
        assert any(name.endswith("/promotions") for name in counter_names)
        assert any(name.endswith("/reconstructions") for name in counter_names)
        gauges = metrics["gauges"]
        for plane in ("shard/0/band", "shard/1/select"):
            assert f"obs/{plane}/tau" in gauges
            assert gauges[f"obs/{plane}/headroom"] >= 0.0
        # Reconstruction durations are a first-class histogram.
        assert any(
            name.endswith("/reconstruction_us") for name in metrics["histograms"]
        )
        assert record["spans_dropped"] == 0

    def test_stats_text_roundtrips_render_snapshot(self, served, capsys):
        assert main(["stats", "--jsonl", str(served["snaps"])]) == 0
        out = capsys.readouterr().out
        record = latest_snapshot(str(served["snaps"]))
        assert render_snapshot(record["metrics"]) in out
        assert f"seq={record['seq']}" in out

    def test_stats_prom_format(self, served, capsys):
        assert main(["stats", "--jsonl", str(served["snaps"]), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_durability_wal_fsync_total counter" in out
        assert "_total_total" not in out
        assert 'quantile="0.5"' in out

    def test_stats_json_format(self, served, capsys):
        assert main(["stats", "--jsonl", str(served["snaps"]), "--format", "json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert "counters" in parsed and "histograms" in parsed

    def test_stats_seq_selection(self, served, capsys):
        assert main(["stats", "--jsonl", str(served["snaps"]), "--seq", "0"]) == 0
        assert "seq=0" in capsys.readouterr().out
        assert main(["stats", "--jsonl", str(served["snaps"]), "--seq", "999"]) == 1
        assert "no snapshot" in capsys.readouterr().err

    def test_stats_requires_exactly_one_source(self, served, capsys):
        assert main(["stats"]) == 2
        capsys.readouterr()
        assert main([
            "stats", "--jsonl", str(served["snaps"]), "--url", "http://x",
        ]) == 2

    def test_stats_missing_file(self, capsys, tmp_path):
        assert main(["stats", "--jsonl", str(tmp_path / "absent.jsonl")]) == 1
        assert "stats:" in capsys.readouterr().err


class TestStatsLiveEndpoint:
    def test_stats_url_against_live_server(self, capsys):
        registry = MetricsRegistry()
        registry.counter("live/hits").inc(41)
        with MetricsServer(registry, port=0) as server:
            assert main(["stats", "--url", server.url]) == 0
            out = capsys.readouterr().out
            assert "live/hits" in out and "41" in out
            assert main(["stats", "--url", server.url, "--format", "prom"]) == 0
            assert "repro_live_hits_total 41" in capsys.readouterr().out

    def test_stats_url_connection_error(self, capsys):
        # A closed server: pick a port by binding then closing.
        registry = MetricsRegistry()
        server = MetricsServer(registry, port=0)
        url = server.url
        server.close()
        assert main(["stats", "--url", url]) == 1
        assert "stats:" in capsys.readouterr().err


class TestServeMetricsPort:
    def test_serve_exposes_live_endpoint(self, tmp_path, capsys):
        """--metrics-port 0 binds an ephemeral port and prints its URL;
        the endpoint serves while the run is in flight and the trace is
        still written on exit."""
        trace_path = tmp_path / "trace.json"
        code = main([
            "serve",
            "--events", "200", "--queries", "40", "--shards", "2",
            "--report-every", "100", "--seed", "5",
            "--metrics-port", "0",
            "--trace-out", str(trace_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "metrics server listening on http://127.0.0.1:" in out
        assert trace_path.exists()
        names = {
            e["name"] for e in json.loads(trace_path.read_text())["traceEvents"]
        }
        assert "batch" in names and "shard.apply" in names
