"""Tests for the ``repro top`` dashboard: record fetchers, shard
discovery, frame rendering, rate math, and the refresh loop."""

import json
import urllib.request

import pytest

from repro.obs.export import MetricsServer, SnapshotWriter
from repro.obs.top import (
    CLEAR_SCREEN,
    fetch_record_from_jsonl,
    fetch_record_from_url,
    render_dashboard,
    shard_indices,
    watch,
)
from repro.runtime.metrics import MetricsRegistry


def make_registry():
    m = MetricsRegistry()
    m.counter("pipeline/events_applied").inc(1_000)
    m.counter("pipeline/results_produced").inc(250)
    m.counter("pipeline/batches").inc(40)
    m.counter("obs/shard/0/band/promotions").inc(7)
    m.counter("obs/shard/0/band/demotions").inc(2)
    for value in (50, 120, 300, 900, 2_500):
        m.histogram("pipeline/e2e_us").observe(float(value))
    m.histogram("shard/0/e2e_us").observe(100.0)
    m.histogram("shard1/worker/e2e/ingest_to_apply_us").observe(80.0)
    m.counter("shard/0/events").inc(600)
    m.gauge("transport/ring/0/request_bytes").set(0.0)
    m.gauge("transport/ring/0/response_bytes").set(12.0)
    m.gauge("obs/shard/0/band/headroom").set(12.5)
    return m


class TestShardDiscovery:
    def test_finds_every_prefix_style(self):
        metrics = make_registry().snapshot()
        # shard/0/... (parent), shard1/... (merged worker), obs/shard/0/...
        # and transport/ring/0/... all count.
        assert shard_indices(metrics) == [0, 1]

    def test_empty_metrics(self):
        assert shard_indices({}) == []
        assert shard_indices({"counters": {"pipeline/events": 3}}) == []


class TestRenderDashboard:
    def record(self):
        return {"seq": 4, "uptime_us": 5_000_000, "metrics": make_registry().snapshot()}

    def test_headline_sections_present(self):
        frame = render_dashboard(self.record())
        assert frame.startswith("repro top")
        assert "snapshot #4" in frame
        assert "uptime 5.0s" in frame
        assert "applied 1,000" in frame
        assert "e2e latency (us): p50" in frame
        assert "7 promotions" in frame and "2 demotions" in frame

    def test_shard_table_rows(self):
        frame = render_dashboard(self.record())
        lines = frame.splitlines()
        assert any(line.strip().startswith("shard") for line in lines)
        shard_rows = [l for l in lines if l.startswith("  0") or l.startswith("  1")]
        assert len(shard_rows) == 2
        # shard 0 has parent-side data, shard 1 only merged worker lag
        assert "600" in shard_rows[0]
        assert "0/12" in shard_rows[0]
        assert "12.5/-" in shard_rows[0]

    def test_rates_need_a_previous_record(self):
        record = self.record()
        first = render_dashboard(record)
        assert "throughput: - ev/s" in first
        prev = json.loads(json.dumps(record))
        prev["uptime_us"] = record["uptime_us"] - 2_000_000
        prev["metrics"]["counters"]["pipeline/events_applied"] -= 500
        second = render_dashboard(record, prev)
        assert "throughput: 250.0 ev/s" in second

    def test_no_samples_yet(self):
        frame = render_dashboard({"metrics": {}})
        assert "(no samples yet)" in frame
        assert "throughput: - ev/s" in frame

    def test_dropped_spans_warning(self):
        record = self.record()
        record["spans_dropped"] = 12
        assert "12 tracing spans dropped" in render_dashboard(record)


class TestFetchers:
    def test_jsonl_fetcher_returns_latest(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        writer = SnapshotWriter(path)
        registry = make_registry()
        writer.write(registry)
        writer.write(registry)
        record = fetch_record_from_jsonl(path)
        assert record["seq"] == 1
        assert "pipeline/events_applied" in record["metrics"]["counters"]

    def test_url_fetcher_wraps_metrics_json(self):
        registry = make_registry()
        server = MetricsServer(registry, port=0)
        try:
            record = fetch_record_from_url(server.url)
            assert record["metrics"]["counters"]["pipeline/events_applied"] == 1_000
            # Accepts the explicit route too.
            record = fetch_record_from_url(server.url + "/metrics.json")
            assert "seq" not in record
        finally:
            server.close()


class TestWatchLoop:
    def test_renders_requested_iterations(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        SnapshotWriter(path).write(make_registry())
        frames = []
        n = watch(
            lambda: fetch_record_from_jsonl(path),
            render_dashboard,
            interval=0.0,
            iterations=3,
            out=frames.append,
            clear=False,
        )
        assert n == 3
        assert len(frames) == 3
        assert all(f.startswith("repro top") for f in frames)

    def test_clear_mode_prefixes_ansi(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        SnapshotWriter(path).write(make_registry())
        frames = []
        watch(
            lambda: fetch_record_from_jsonl(path),
            render_dashboard,
            interval=0.0,
            iterations=1,
            out=frames.append,
        )
        assert frames[0].startswith(CLEAR_SCREEN)

    def test_fetch_errors_do_not_kill_the_loop(self, tmp_path):
        missing = str(tmp_path / "never-written.jsonl")
        frames = []
        n = watch(
            lambda: fetch_record_from_jsonl(missing),
            render_dashboard,
            interval=0.0,
            iterations=2,
            out=frames.append,
        )
        assert n == 2
        assert all("waiting for metrics" in f for f in frames)

    def test_second_frame_sees_rates(self, tmp_path):
        path = str(tmp_path / "snaps.jsonl")
        writer = SnapshotWriter(path)
        registry = make_registry()
        writer.write(registry)
        frames = []

        def fetch():
            registry.counter("pipeline/events_applied").inc(100)
            writer.write(registry)
            return fetch_record_from_jsonl(path)

        watch(fetch, render_dashboard, interval=0.0, iterations=2,
              out=frames.append, clear=False)
        assert "throughput: - ev/s" in frames[0]
        assert "throughput: - ev/s" not in frames[1]


class TestCli:
    def test_top_requires_exactly_one_source(self, capsys):
        from repro.cli import main

        assert main(["top"]) == 2
        assert main(["top", "--jsonl", "a", "--url", "b"]) == 2

    def test_top_renders_from_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "snaps.jsonl")
        SnapshotWriter(path).write(make_registry())
        assert main(["top", "--jsonl", path, "--iterations", "1",
                     "--interval", "0", "--no-clear"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro top")
        assert "e2e latency (us)" in out

    def test_stats_watch_renders_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "snaps.jsonl")
        SnapshotWriter(path).write(make_registry())
        assert main(["stats", "--jsonl", path, "--watch", "0",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "snapshot seq=0" in out
        assert "pipeline/events_applied" in out

    def test_stats_watch_rejects_other_formats(self, tmp_path):
        from repro.cli import main

        assert main(["stats", "--jsonl", "x", "--watch", "1",
                     "--format", "prom"]) == 2
