"""Tests for the cost-based adaptive select-join processor."""

import random

from repro.core.intervals import Interval
from repro.engine.queries import SelectJoinQuery, brute_force_select_join
from repro.engine.table import TableR, TableS
from repro.operators.adaptive import AdaptiveSelectJoinProcessor


def norm(results):
    return {q.qid: sorted(s.sid for s in rows) for q, rows in results.items()}


def make_tables(seed, n_s=300, b_values=15):
    rng = random.Random(seed)
    table_s = TableS(order=4)
    table_r = TableR(order=4)
    for __ in range(n_s):
        table_s.add(float(rng.randrange(b_values)), rng.uniform(0, 100))
    return rng, table_s, table_r


def clustered_queries(rng, count):
    """rangeA midpoints split between a popular region and a sparse one,
    so events see very different candidate counts."""
    queries = []
    for __ in range(count):
        if rng.random() < 0.8:
            a_lo = rng.uniform(10, 25)   # popular: events at ~20 hit many
        else:
            a_lo = rng.uniform(60, 95)   # sparse
        c_lo = rng.uniform(0, 90)
        queries.append(
            SelectJoinQuery(
                Interval(a_lo, a_lo + rng.uniform(2, 8)),
                Interval(c_lo, c_lo + rng.uniform(2, 8)),
            )
        )
    return queries


class TestCorrectness:
    def test_matches_bruteforce_regardless_of_choice(self):
        rng, table_s, table_r = make_tables(601)
        processor = AdaptiveSelectJoinProcessor(table_s, table_r, rebuild_every=50)
        queries = clustered_queries(rng, 250)
        for query in queries:
            processor.add_query(query)
        for __ in range(40):
            r = table_r.new_row(rng.uniform(0, 100), float(rng.randrange(15)))
            assert norm(processor.process_r(r)) == norm(
                brute_force_select_join(queries, r, table_s)
            )

    def test_removal(self):
        rng, table_s, table_r = make_tables(602)
        processor = AdaptiveSelectJoinProcessor(table_s, table_r)
        queries = clustered_queries(rng, 100)
        for query in queries:
            processor.add_query(query)
        for query in queries[::2]:
            processor.remove_query(query)
        assert processor.query_count == 50
        r = table_r.new_row(20.0, 5.0)
        assert norm(processor.process_r(r)) == norm(
            brute_force_select_join(queries[1::2], r, table_s)
        )


class TestAdaptivity:
    def test_uses_both_strategies_across_event_mix(self):
        rng, table_s, table_r = make_tables(603)
        processor = AdaptiveSelectJoinProcessor(table_s, table_r, rebuild_every=50)
        for query in clustered_queries(rng, 400):
            processor.add_query(query)
        # Events in the popular A region (many candidates -> SJ-SSI) and in
        # the dead zone (few candidates -> SJ-S).
        for __ in range(15):
            processor.process_r(table_r.new_row(rng.uniform(12, 25), float(rng.randrange(15))))
            processor.process_r(table_r.new_row(rng.uniform(30, 55), float(rng.randrange(15))))
        assert processor.chosen["SJ-SSI"] > 0
        assert processor.chosen["SJ-S"] > 0

    def test_estimates_track_reality(self):
        rng, table_s, table_r = make_tables(604)
        processor = AdaptiveSelectJoinProcessor(table_s, table_r, histogram_buckets=48)
        queries = clustered_queries(rng, 500)
        for query in queries:
            processor.add_query(query)
        popular = 20.0
        sparse = 45.0
        true_popular = sum(1 for q in queries if q.range_a.contains(popular))
        true_sparse = sum(1 for q in queries if q.range_a.contains(sparse))
        assert true_popular > 10 * max(true_sparse, 1)
        assert processor.estimate_candidates(popular) > 3 * (
            processor.estimate_candidates(sparse) + 1
        )

    def test_empty_processor(self):
        __, table_s, table_r = make_tables(605)
        processor = AdaptiveSelectJoinProcessor(table_s, table_r)
        r = table_r.new_row(1.0, 1.0)
        assert processor.process_r(r) == {}
        assert processor.estimate_candidates(1.0) == 0.0
