"""Tests for the brute-force oracles and the ground-truth model state."""

from hypothesis import given

from repro.check import ops as op_mod
from repro.check.oracles import (
    ModelState,
    brute_force_stabbing_partition,
    brute_force_tau,
    naive_hotspots,
)
from repro.check.ops import Op
from repro.core.stabbing import canonical_stabbing_partition, stabbing_number

from conftest import interval_lists


class TestPiercingOracle:
    def test_disjoint_intervals_each_their_own_group(self):
        pairs = [(0.0, 1.0), (2.0, 3.0), (4.0, 5.0)]
        assert brute_force_tau(pairs) == 3
        assert [len(g) for g in brute_force_stabbing_partition(pairs)] == [1, 1, 1]

    def test_nested_intervals_one_group(self):
        pairs = [(0.0, 10.0), (2.0, 8.0), (4.0, 6.0)]
        groups = brute_force_stabbing_partition(pairs)
        assert len(groups) == 1
        assert sorted(groups[0]) == sorted(pairs)

    def test_empty(self):
        assert brute_force_stabbing_partition([]) == []
        assert brute_force_tau([]) == 0

    @given(interval_lists(min_size=0, max_size=50))
    def test_agrees_with_sweep_construction(self, intervals):
        """The piercing oracle and the left-endpoint sweep are different
        algorithms for the same optimum; in 1-D they coincide group-for-group."""
        pairs = [(iv.lo, iv.hi) for iv in intervals]
        sweep = canonical_stabbing_partition(intervals)
        pierce = brute_force_stabbing_partition(pairs)
        assert sweep.size == len(pierce)
        assert sorted(g.size for g in sweep.groups) == sorted(
            len(g) for g in pierce
        )
        assert brute_force_tau(pairs) == stabbing_number(intervals)

    @given(interval_lists(min_size=1, max_size=40))
    def test_naive_hotspots_bare_definition(self, intervals):
        pairs = [(iv.lo, iv.hi) for iv in intervals]
        alpha = 0.3
        hotspots = naive_hotspots(pairs, alpha)
        threshold = alpha * len(pairs)
        assert all(len(group) >= threshold for group in hotspots)
        n_large = sum(
            1
            for group in brute_force_stabbing_partition(pairs)
            if len(group) >= threshold
        )
        assert len(hotspots) == n_large


class TestModelState:
    def test_apply_and_views(self):
        model = ModelState()
        for op in [
            Op(op_mod.INSERT_INTERVAL, 0, (0.0, 10.0)),
            Op(op_mod.INSERT_INTERVAL, 1, (2.0, 8.0)),
            Op(op_mod.INSERT_INTERVAL, 2, (50.0, 60.0)),
            Op(op_mod.SET_EPSILON, 0, (0.5,)),
            Op(op_mod.SET_ALPHA, 0, (0.4,)),
        ]:
            assert model.is_legal(op)
            model.apply(op)
        assert model.tau() == 2
        assert model.interval_multiset() == [(0.0, 10.0), (2.0, 8.0), (50.0, 60.0)]
        assert model.epsilon == 0.5 and model.alpha == 0.4
        model.apply(Op(op_mod.DELETE_INTERVAL, 2))
        assert model.tau() == 1

    def test_legality_guards(self):
        model = ModelState()
        assert not model.is_legal(Op(op_mod.DELETE_INTERVAL, 0))  # not live
        assert not model.is_legal(Op(op_mod.INSERT_INTERVAL, 0, (5.0, 1.0)))  # inverted
        assert not model.is_legal(Op(op_mod.UNSUB, 0))
        assert not model.is_legal(Op(op_mod.SET_EPSILON, 0, (0.0,)))
        assert not model.is_legal(Op(op_mod.SET_ALPHA, 0, (1.5,)))
        model.apply(Op(op_mod.INSERT_R, 3, (1.0, 2.0)))
        assert not model.is_legal(Op(op_mod.INSERT_R, 3, (1.0, 2.0)))  # id reuse
        assert model.is_legal(Op(op_mod.DELETE_R, 3))

    def test_unsub_clears_either_query_namespace(self):
        model = ModelState()
        model.apply(Op(op_mod.SUB_BAND, 0, (-5.0, 5.0)))
        model.apply(Op(op_mod.SUB_SELECT, 1, (0.0, 1.0, 0.0, 1.0)))
        assert model.subscription_count() == 2
        model.apply(Op(op_mod.UNSUB, 0))
        model.apply(Op(op_mod.UNSUB, 1))
        assert model.subscription_count() == 0


class TestNestedLoopDeltas:
    def make_model(self):
        model = ModelState()
        # S rows: sid -> (b, c)
        model.apply(Op(op_mod.INSERT_S, 0, (10.0, 100.0)))
        model.apply(Op(op_mod.INSERT_S, 1, (12.0, 500.0)))
        model.apply(Op(op_mod.INSERT_S, 2, (40.0, 100.0)))
        # R rows: rid -> (a, b)
        model.apply(Op(op_mod.INSERT_R, 0, (7.0, 10.0)))
        model.apply(Op(op_mod.INSERT_R, 1, (99.0, 41.0)))
        # Band query |S.b - R.b| in [0, 3]; select query A in [0,10], C in [0,200].
        model.apply(Op(op_mod.SUB_BAND, 0, (0.0, 3.0)))
        model.apply(Op(op_mod.SUB_SELECT, 1, (0.0, 10.0, 0.0, 200.0)))
        return model

    def test_r_insert_deltas(self):
        model = self.make_model()
        # R(a=5, b=10): band matches S.b in [10, 13] -> sids 0, 1; select
        # needs S.b == 10 and S.c in [0, 200] -> sid 0.
        assert model.oracle_r_insert_deltas(5.0, 10.0) == {0: (0, 1), 1: (0,)}
        # a outside the select's A range suppresses the select delta only.
        assert model.oracle_r_insert_deltas(50.0, 10.0) == {0: (0, 1)}
        # No band or key matches at all: empty dict, no empty entries.
        assert model.oracle_r_insert_deltas(5.0, 900.0) == {}

    def test_s_insert_deltas(self):
        model = self.make_model()
        # S(b=41, c=150): band matches R.b in [38, 41] -> rid 1; select needs
        # R.b == 41 and R.a in [0, 10] -> rid 1 fails (a=99).
        assert model.oracle_s_insert_deltas(41.0, 150.0) == {0: (1,)}
        # S(b=10, c=150): band -> rid 0; select: R.b == 10, a=7 in range -> rid 0.
        assert model.oracle_s_insert_deltas(10.0, 150.0) == {0: (0,), 1: (0,)}
