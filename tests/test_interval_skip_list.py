"""Tests for the interval skip list (Hanson & Johnson): oracle equivalence
under mixed updates, mark-repair on node removal, degenerate intervals."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.dstruct.interval_skip_list import IntervalSkipList

from conftest import int_interval_strategy


class TestBasics:
    def test_stab_hits_and_misses(self):
        isl = IntervalSkipList(rng=random.Random(1))
        isl.insert(Interval(0, 10), "a")
        isl.insert(Interval(5, 15), "b")
        isl.insert(Interval(20, 30), "c")
        assert {p for __, p in isl.stab(7)} == {"a", "b"}
        assert {p for __, p in isl.stab(0)} == {"a"}
        assert isl.stab(16) == []
        assert {p for __, p in isl.stab(30)} == {"c"}

    def test_closed_endpoints(self):
        isl = IntervalSkipList()
        isl.insert(Interval(1, 2), "x")
        assert isl.stab(1) and isl.stab(2)
        assert not isl.stab(0.999) and not isl.stab(2.001)

    def test_degenerate_point_interval(self):
        isl = IntervalSkipList()
        isl.insert(Interval(5, 5), "point")
        assert [p for __, p in isl.stab(5)] == ["point"]
        assert isl.stab(5.0001) == []
        isl.remove(Interval(5, 5), "point")
        assert isl.stab(5) == []

    def test_len_iter_bool(self):
        isl = IntervalSkipList()
        assert not isl
        isl.insert(Interval(0, 1), 1)
        isl.insert(Interval(2, 3), 2)
        assert len(isl) == 2 and isl
        assert sorted(p for __, p in isl) == [1, 2]

    def test_remove_missing_raises(self):
        isl = IntervalSkipList()
        isl.insert(Interval(0, 1), "a")
        with pytest.raises(KeyError):
            isl.remove(Interval(0, 1), "zzz")
        with pytest.raises(KeyError):
            isl.remove(Interval(5, 6), "a")

    def test_duplicate_intervals_distinct_payloads(self):
        isl = IntervalSkipList()
        isl.insert(Interval(0, 10), "a")
        isl.insert(Interval(0, 10), "b")
        assert {p for __, p in isl.stab(5)} == {"a", "b"}
        isl.remove(Interval(0, 10), "a")
        assert {p for __, p in isl.stab(5)} == {"b"}

    def test_shared_endpoints_survive_removal(self):
        # Removing one interval must not drop the endpoint node (and the
        # marks routed through it) that another interval still owns.
        isl = IntervalSkipList(rng=random.Random(2))
        isl.insert(Interval(0, 10), "long")
        isl.insert(Interval(10, 20), "right")
        isl.insert(Interval(5, 10), "short")
        isl.remove(Interval(5, 10), "short")
        assert {p for __, p in isl.stab(10)} == {"long", "right"}
        assert {p for __, p in isl.stab(7)} == {"long"}

    def test_covers_repaired_after_inner_node_removal(self):
        # A long interval's mark chain routes through a short interval's
        # endpoint nodes; removing the short interval must repair the long
        # one's marks.
        isl = IntervalSkipList(rng=random.Random(3))
        isl.insert(Interval(0, 100), "long")
        isl.insert(Interval(40, 60), "short")
        isl.remove(Interval(40, 60), "short")
        for x in (0, 40, 50, 60, 99, 100):
            assert [p for __, p in isl.stab(x)] == ["long"], x


@given(
    st.lists(int_interval_strategy(-25, 25), min_size=1, max_size=40),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_matches_bruteforce_under_updates(intervals, data):
    isl = IntervalSkipList(rng=random.Random(9))
    live = {}
    for i, interval in enumerate(intervals):
        isl.insert(interval, i)
        live[i] = interval
    deletions = data.draw(st.integers(0, len(intervals)))
    for __ in range(deletions):
        i = data.draw(st.sampled_from(sorted(live)))
        isl.remove(live.pop(i), i)
    assert len(isl) == len(live)
    for x in range(-30, 31, 5):
        got = sorted(p for __, p in isl.stab(float(x)))
        want = sorted(i for i, interval in live.items() if interval.contains(float(x)))
        assert got == want, x


def test_agrees_with_interval_tree():
    from repro.dstruct.interval_tree import IntervalTree

    rng = random.Random(4)
    isl = IntervalSkipList(rng=random.Random(5))
    tree = IntervalTree(rng=random.Random(6))
    live = []
    for step in range(400):
        if live and rng.random() < 0.45:
            interval, payload = live.pop(rng.randrange(len(live)))
            isl.remove(interval, payload)
            tree.remove(interval, payload)
        else:
            lo = rng.uniform(0, 100)
            interval = Interval(lo, lo + rng.uniform(0, 20))
            payload = step
            isl.insert(interval, payload)
            tree.insert(interval, payload)
            live.append((interval, payload))
        if step % 25 == 0:
            x = rng.uniform(-5, 110)
            assert sorted(p for __, p in isl.stab(x)) == sorted(
                p for __, p in tree.stab(x)
            )
