"""Tests for the bisect-backed SortedKeyList."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dstruct.sorted_list import SortedKeyList


class TestBasics:
    def test_initial_items_sorted(self):
        sl = SortedKeyList([3, 1, 2])
        assert list(sl) == [1, 2, 3]

    def test_add_returns_index(self):
        sl = SortedKeyList([1, 3])
        assert sl.add(2) == 1
        assert list(sl) == [1, 2, 3]

    def test_key_function(self):
        sl = SortedKeyList(["bbb", "a", "cc"], key=len)
        assert list(sl) == ["a", "cc", "bbb"]

    def test_duplicates_keep_insertion_order(self):
        sl = SortedKeyList(key=lambda pair: pair[0])
        sl.add((1, "first"))
        sl.add((1, "second"))
        sl.add((0, "zero"))
        assert list(sl) == [(0, "zero"), (1, "first"), (1, "second")]

    def test_len_and_contains(self):
        sl = SortedKeyList([5, 5, 7])
        assert len(sl) == 3
        assert 5 in sl
        assert 6 not in sl

    def test_getitem(self):
        sl = SortedKeyList([4, 2, 9])
        assert sl[0] == 2
        assert sl[2] == 9


class TestRemove:
    def test_remove_one_duplicate(self):
        sl = SortedKeyList([2, 2, 3])
        sl.remove(2)
        assert list(sl) == [2, 3]

    def test_remove_missing_raises(self):
        sl = SortedKeyList([1])
        with pytest.raises(ValueError):
            sl.remove(9)

    def test_remove_by_identity_prefers_same_object(self):
        a = [1]
        b = [1]  # equal but distinct
        sl = SortedKeyList(key=lambda item: item[0])
        sl.add(a)
        sl.add(b)
        sl.remove(b)
        assert sl[0] is a

    def test_remove_equal_when_identity_absent(self):
        sl = SortedKeyList([(1, "x")], key=lambda pair: pair[0])
        sl.remove((1, "x"))
        assert len(sl) == 0


class TestSearch:
    def test_bisect_bounds(self):
        sl = SortedKeyList([1, 3, 3, 5])
        assert sl.bisect_left(3) == 1
        assert sl.bisect_right(3) == 3
        assert sl.bisect_left(0) == 0
        assert sl.bisect_right(9) == 4

    def test_irange(self):
        sl = SortedKeyList(range(10))
        assert list(sl.irange(3, 6)) == [3, 4, 5, 6]
        assert list(sl.irange(None, 2)) == [0, 1, 2]
        assert list(sl.irange(8, None)) == [8, 9]

    def test_count_in_range(self):
        sl = SortedKeyList([1, 2, 2, 2, 5])
        assert sl.count_in_range(2, 2) == 3
        assert sl.count_in_range(0, 10) == 5
        assert sl.count_in_range(3, 4) == 0


@given(st.lists(st.integers(-50, 50)), st.lists(st.integers(0, 100)))
def test_matches_sorted_list_oracle(additions, removal_picks):
    sl = SortedKeyList()
    oracle = []
    for value in additions:
        sl.add(value)
        oracle.append(value)
        oracle.sort()
        assert list(sl) == oracle
    for pick in removal_picks:
        if not oracle:
            break
        value = oracle[pick % len(oracle)]
        sl.remove(value)
        oracle.remove(value)
        assert list(sl) == oracle


@given(st.lists(st.integers(-20, 20), min_size=1), st.integers(-25, 25), st.integers(-25, 25))
def test_irange_matches_filter(values, a, b):
    lo, hi = min(a, b), max(a, b)
    sl = SortedKeyList(values)
    assert list(sl.irange(lo, hi)) == sorted(v for v in values if lo <= v <= hi)
    assert sl.count_in_range(lo, hi) == len([v for v in values if lo <= v <= hi])
