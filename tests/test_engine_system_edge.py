"""Additional edge-path tests for the engine facade and tables."""

import pytest

from repro.core.intervals import Interval
from repro.engine.queries import BandJoinQuery, SelectJoinQuery
from repro.engine.system import ContinuousQuerySystem
from repro.engine.table import TableR, TableS


class TestSystemEdgeCases:
    def test_insert_before_any_subscription(self):
        system = ContinuousQuerySystem(alpha=None)
        assert system.insert_r(1.0, 2.0) == {}
        assert system.insert_s(2.0, 3.0) == {}
        assert system.events_processed == 2

    def test_unsubscribe_stops_deltas(self):
        system = ContinuousQuerySystem(alpha=None)
        band = system.subscribe(BandJoinQuery(Interval(-1, 1)))
        system.insert_s(10.0, 0.0)
        assert band in system.insert_r(0.0, 10.0)
        system.unsubscribe(band)
        assert system.insert_r(0.0, 10.0) == {}

    def test_callback_not_called_without_matches(self):
        system = ContinuousQuerySystem(alpha=None)
        calls = []
        system.subscribe(
            SelectJoinQuery(Interval(0, 1), Interval(0, 1)),
            on_results=lambda *a: calls.append(a),
        )
        system.insert_r(50.0, 3.0)  # A selection fails
        assert calls == []

    def test_resubscribe_after_unsubscribe(self):
        system = ContinuousQuerySystem(alpha=None)
        query = BandJoinQuery(Interval(-1, 1))
        system.subscribe(query)
        system.unsubscribe(query)
        system.subscribe(query)
        system.insert_s(5.0, 0.0)
        assert query in system.insert_r(0.0, 5.5)

    def test_hotspot_config_handles_churny_subscriptions(self):
        system = ContinuousQuerySystem(alpha=0.2)
        queries = [system.subscribe(BandJoinQuery(Interval(-0.5, 0.5))) for __ in range(30)]
        for query in queries[:20]:
            system.unsubscribe(query)
        system.insert_s(10.0, 0.0)
        deltas = system.insert_r(0.0, 10.0)
        assert len(deltas) == 10


class TestTableEdgeCases:
    def test_delete_missing_row_raises(self):
        table = TableS()
        row = table.new_row(1.0, 2.0)  # never inserted
        with pytest.raises(KeyError):
            table.delete(row)

    def test_reinsert_after_delete(self):
        table = TableS()
        row = table.add(1.0, 2.0)
        table.delete(row)
        table.insert(row)
        assert table.get(row.sid) is row
        assert table.joining(1.0) == [row]

    def test_many_duplicate_join_keys(self):
        table = TableR()
        rows = [table.add(float(i), 7.0) for i in range(200)]
        assert len(table.joining(7.0)) == 200
        for row in rows[::2]:
            table.delete(row)
        assert len(table.joining(7.0)) == 100
        got = [v.a for __, v in table.by_ba.irange((7.0, 0.0), (7.0, 999.0))]
        assert got == sorted(got)
