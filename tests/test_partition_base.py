"""Tests for DynamicGroup (the mutable stabbing-group building block),
including the cached intersection extrema under adversarial removals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, common_intersection
from repro.core.partition_base import DynamicGroup
from repro.core.stabbing import identity_interval

from conftest import int_interval_strategy


def make_group(intervals=()):
    group = DynamicGroup(identity_interval)
    for interval in intervals:
        group.add(interval)
    return group


class TestMembership:
    def test_add_and_len(self):
        group = make_group([Interval(0, 10), Interval(5, 15)])
        assert len(group) == 2
        assert group.size == 2

    def test_duplicate_object_rejected(self):
        interval = Interval(0, 1)
        group = make_group([interval])
        with pytest.raises(ValueError):
            group.add(interval)

    def test_equal_but_distinct_objects_allowed(self):
        group = make_group([Interval(0, 1), Interval(0, 1)])
        assert group.size == 2

    def test_contains_by_identity(self):
        a = Interval(0, 1)
        b = Interval(0, 1)
        group = make_group([a])
        assert a in group
        assert b not in group

    def test_items_and_iter(self):
        intervals = [Interval(0, 10), Interval(5, 15)]
        group = make_group(intervals)
        assert set(map(id, group.items)) == set(map(id, intervals))
        assert sorted((iv.lo, iv.hi) for iv in group) == [(0, 10), (5, 15)]


class TestCommonIntersection:
    def test_common_tracks_adds(self):
        group = make_group()
        assert group.common is None
        group.add(Interval(0, 10))
        assert group.common == Interval(0, 10)
        group.add(Interval(5, 20))
        assert group.common == Interval(5, 10)

    def test_common_widens_on_removal(self):
        narrow = Interval(4, 6)
        group = make_group([Interval(0, 10), narrow])
        assert group.common == Interval(4, 6)
        group.remove(narrow)
        assert group.common == Interval(0, 10)

    def test_stabbing_point_is_right_endpoint(self):
        group = make_group([Interval(0, 10), Interval(5, 20)])
        assert group.stabbing_point == 10.0

    def test_stabbing_point_requires_members(self):
        with pytest.raises(AssertionError):
            make_group().stabbing_point

    def test_would_remain_stabbed(self):
        group = make_group([Interval(0, 10), Interval(5, 20)])
        assert group.would_remain_stabbed(Interval(8, 30))
        assert group.would_remain_stabbed(Interval(10, 30))  # touching
        assert not group.would_remain_stabbed(Interval(11, 30))
        assert make_group().would_remain_stabbed(Interval(0, 0))

    def test_extrema_with_duplicate_endpoints(self):
        # Two members share the max lo; removing one must keep the cache.
        a = Interval(5, 10)
        b = Interval(5, 12)
        c = Interval(0, 20)
        group = make_group([a, b, c])
        assert group.common == Interval(5, 10)
        group.remove(a)
        assert group.common == Interval(5, 12)
        group.remove(b)
        assert group.common == Interval(0, 20)

    @given(st.lists(int_interval_strategy(), min_size=1, max_size=30), st.data())
    @settings(max_examples=80)
    def test_extrema_cache_matches_recomputation(self, intervals, data):
        # Only sequences that keep a common intersection are valid groups.
        group = make_group()
        members = []
        for interval in intervals:
            if group.would_remain_stabbed(interval):
                group.add(interval)
                members.append(interval)
        removals = data.draw(st.integers(0, max(len(members) - 1, 0)))
        for __ in range(removals):
            idx = data.draw(st.integers(0, len(members) - 1))
            group.remove(members.pop(idx))
        if members:
            assert group.common == common_intersection(members)
        else:
            assert group.common is None
