"""Property tests for the histogram bucket math and the interpolated
quantile estimator (hypothesis-driven)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.export import bucket_bounds, estimate_quantile, estimate_quantiles
from repro.runtime.metrics import N_HISTOGRAM_BUCKETS, Histogram, bucket_index

values = st.floats(
    min_value=0.0, max_value=2.0**70, allow_nan=False, allow_infinity=False
)
quantiles = st.floats(min_value=0.0, max_value=1.0)


class TestBucketIndex:
    @given(values)
    def test_value_lands_inside_its_bucket(self, value):
        index = bucket_index(value)
        assert 0 <= index < N_HISTOGRAM_BUCKETS
        lo, hi = bucket_bounds(index)
        if index == N_HISTOGRAM_BUCKETS - 1:
            assert value >= lo  # saturating top bucket
        else:
            assert lo <= value < hi

    @given(values, values)
    def test_monotone(self, a, b):
        if a <= b:
            assert bucket_index(a) <= bucket_index(b)
        else:
            assert bucket_index(a) >= bucket_index(b)

    def test_boundaries_exact(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(0.999) == 0
        assert bucket_index(1.0) == 1
        assert bucket_index(2.0) == 2
        assert bucket_index(2.0**62) == 63
        assert bucket_index(2.0**100) == 63

    @given(st.integers(min_value=0, max_value=N_HISTOGRAM_BUCKETS - 1))
    def test_bounds_partition_the_axis(self, index):
        lo, hi = bucket_bounds(index)
        assert lo < hi
        if index + 1 < N_HISTOGRAM_BUCKETS:
            assert bucket_bounds(index + 1)[0] == hi  # adjacent, no gaps

    @given(st.integers(min_value=0, max_value=N_HISTOGRAM_BUCKETS - 2))
    def test_bounds_invert_index(self, index):
        lo, hi = bucket_bounds(index)
        assert bucket_index(lo) == index
        assert bucket_index(math.nextafter(hi, 0.0)) == index


class TestEstimatorProperties:
    @settings(max_examples=200)
    @given(st.lists(values, min_size=1, max_size=300), quantiles)
    def test_estimate_within_true_rank_bucket(self, observed, q):
        """The interpolated estimate lands in the [lo, hi) range of the
        bucket that actually holds the requested rank's observation."""
        h = Histogram()
        for value in observed:
            h.observe(value)
        snap = h.snapshot()
        estimate = estimate_quantile(snap["buckets"], snap["count"], q)
        rank = max(1, math.ceil(q * len(observed)))
        true_value = sorted(observed)[rank - 1]
        lo, hi = bucket_bounds(bucket_index(true_value))
        if math.isinf(hi):
            assert estimate == lo
        else:
            assert lo <= estimate < hi

    @settings(max_examples=100)
    @given(st.lists(values, min_size=1, max_size=200))
    def test_monotone_in_q(self, observed):
        h = Histogram()
        for value in observed:
            h.observe(value)
        snap = h.snapshot()
        estimates = [
            estimate_quantile(snap["buckets"], snap["count"], q)
            for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0)
        ]
        assert estimates == sorted(estimates)

    @settings(max_examples=100)
    @given(st.lists(values, min_size=1, max_size=200))
    def test_never_above_conservative_quantile(self, observed):
        """The histogram's own quantile reports the bucket's upper bound;
        interpolation stays at or below it for the same rank."""
        h = Histogram()
        for value in observed:
            h.observe(value)
        quantile_estimates = estimate_quantiles(h.snapshot())
        assert quantile_estimates["p50"] <= h.quantile(0.5)
        assert quantile_estimates["p99"] <= h.quantile(0.99)

    @settings(max_examples=100)
    @given(st.lists(values, min_size=1, max_size=200))
    def test_bounded_by_extremes_buckets(self, observed):
        """Estimates never escape the range spanned by the extreme
        observations' buckets."""
        h = Histogram()
        for value in observed:
            h.observe(value)
        snap = h.snapshot()
        lo_bound = bucket_bounds(bucket_index(min(observed)))[0]
        hi_bucket = bucket_bounds(bucket_index(max(observed)))[1]
        for q in (0.0, 0.5, 1.0):
            estimate = estimate_quantile(snap["buckets"], snap["count"], q)
            assert lo_bound <= estimate
            if not math.isinf(hi_bucket):
                assert estimate < hi_bucket
