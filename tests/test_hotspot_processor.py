"""Tests for the hotspot-based processors (Figure 9's HOTSPOT-BASED):
correctness vs brute force, hot/scattered bookkeeping, coverage behaviour."""

import random

import pytest

from repro.core.intervals import Interval
from repro.engine.queries import (
    BandJoinQuery,
    SelectJoinQuery,
    brute_force_band_join,
    brute_force_select_join,
)
from repro.engine.table import TableR, TableS
from repro.operators.hotspot_processor import (
    HotspotBandJoinProcessor,
    HotspotSelectJoinProcessor,
    TraditionalSelectJoinProcessor,
)


def norm(results):
    return {
        query.qid: sorted(row.sid if hasattr(row, "sid") else row.rid for row in rows)
        for query, rows in results.items()
    }


def clustered_select_queries(rng, count, hot_fraction=0.7):
    """Queries whose rangeC midpoints cluster on three anchors with
    ``hot_fraction`` probability, scattered uniformly otherwise."""
    anchors = [20.0, 50.0, 80.0]
    queries = []
    for __ in range(count):
        a_lo = rng.uniform(0, 80)
        range_a = Interval(a_lo, a_lo + rng.uniform(5, 25))
        if rng.random() < hot_fraction:
            anchor = rng.choice(anchors)
            range_c = Interval(anchor - rng.uniform(0, 6), anchor + rng.uniform(0, 6))
        else:
            c_lo = rng.uniform(0, 90)
            range_c = Interval(c_lo, c_lo + rng.uniform(0, 8))
        queries.append(SelectJoinQuery(range_a, range_c))
    return queries


class TestHotspotSelectJoin:
    def make(self, seed=301, n_queries=200, alpha=0.05):
        rng = random.Random(seed)
        table_s = TableS(order=4)
        table_r = TableR(order=4)
        for __ in range(200):
            table_s.add(float(rng.randrange(12)), rng.uniform(0, 100))
        processor = HotspotSelectJoinProcessor(table_s, table_r, alpha=alpha)
        queries = clustered_select_queries(rng, n_queries)
        for query in queries:
            processor.add_query(query)
        return rng, table_s, table_r, processor, queries

    def test_matches_bruteforce(self):
        rng, table_s, table_r, processor, queries = self.make()
        processor.validate()
        for __ in range(25):
            r = table_r.new_row(rng.uniform(0, 100), float(rng.randrange(12)))
            assert norm(processor.process_r(r)) == norm(
                brute_force_select_join(queries, r, table_s)
            )

    def test_clustered_workload_has_high_coverage(self):
        __, __, __, processor, __ = self.make()
        assert processor.hotspot_coverage > 0.5

    def test_matches_traditional_baseline(self):
        rng, table_s, table_r, processor, queries = self.make(seed=302)
        baseline = TraditionalSelectJoinProcessor(table_s, table_r)
        for query in queries:
            baseline.add_query(query)
        for __ in range(10):
            r = table_r.new_row(rng.uniform(0, 100), float(rng.randrange(12)))
            assert norm(processor.process_r(r)) == norm(baseline.process_r(r))

    def test_remove_queries(self):
        rng, table_s, table_r, processor, queries = self.make(seed=303)
        for query in queries[::2]:
            processor.remove_query(query)
        processor.validate()
        kept = [q for i, q in enumerate(queries) if i % 2 == 1]
        assert processor.query_count == len(kept)
        r = table_r.new_row(rng.uniform(0, 100), float(rng.randrange(12)))
        assert norm(processor.process_r(r)) == norm(
            brute_force_select_join(kept, r, table_s)
        )

    def test_bookkeeping_under_churn(self):
        rng, table_s, table_r, processor, queries = self.make(seed=304)
        live = list(queries)
        for __ in range(300):
            if live and rng.random() < 0.5:
                victim = live.pop(rng.randrange(len(live)))
                processor.remove_query(victim)
            else:
                query = clustered_select_queries(rng, 1)[0]
                live.append(query)
                processor.add_query(query)
        processor.validate()
        r = table_r.new_row(rng.uniform(0, 100), float(rng.randrange(12)))
        assert norm(processor.process_r(r)) == norm(
            brute_force_select_join(live, r, table_s)
        )

    def test_duplicate_query_rejected(self):
        __, __, __, processor, queries = self.make(seed=305, n_queries=5)
        with pytest.raises(ValueError):
            processor.add_query(queries[0])


class TestHotspotBandJoin:
    def make(self, seed=401, alpha=0.05):
        rng = random.Random(seed)
        table_s = TableS(order=4)
        table_r = TableR(order=4)
        for __ in range(200):
            table_s.add(rng.uniform(0, 100), 0.0)
        processor = HotspotBandJoinProcessor(table_s, table_r, alpha=alpha)
        queries = []
        for __ in range(150):
            if rng.random() < 0.7:
                anchor = rng.choice([-5.0, 0.0, 5.0])
                band = Interval(anchor - rng.uniform(0, 2), anchor + rng.uniform(0, 2))
            else:
                lo = rng.uniform(-10, 10)
                band = Interval(lo, lo + rng.uniform(0, 3))
            query = BandJoinQuery(band)
            queries.append(query)
            processor.add_query(query)
        return rng, table_s, table_r, processor, queries

    def test_matches_bruteforce(self):
        rng, table_s, table_r, processor, queries = self.make()
        processor.validate()
        for __ in range(25):
            r = table_r.new_row(0.0, rng.uniform(0, 100))
            assert norm(processor.process_r(r)) == norm(
                brute_force_band_join(queries, r, table_s)
            )

    def test_churn_and_validate(self):
        rng, table_s, table_r, processor, queries = self.make(seed=402)
        live = list(queries)
        for __ in range(200):
            if live and rng.random() < 0.5:
                victim = live.pop(rng.randrange(len(live)))
                processor.remove_query(victim)
            else:
                lo = rng.uniform(-10, 10)
                query = BandJoinQuery(Interval(lo, lo + rng.uniform(0, 3)))
                live.append(query)
                processor.add_query(query)
        processor.validate()
        r = table_r.new_row(0.0, rng.uniform(0, 100))
        assert norm(processor.process_r(r)) == norm(
            brute_force_band_join(live, r, table_s)
        )

    def test_coverage_reflects_clustering(self):
        __, __, __, processor, __ = self.make(seed=403)
        assert processor.hotspot_coverage > 0.5
